//! The end-to-end analysis pipeline: one call from a simulation output
//! to every figure of the paper.

use crate::figures::*;
use crate::report::{markdown_table, Comparison};
use crate::userstats::{user_stats, UserStats};
use crate::view::gpu_views;
use sc_cluster::{ClusterSpec, SimOutput};
use sc_obs::StageLog;
use sc_stats::StatsError;
use sc_telemetry::dataset::DatasetFunnel;

/// A figure stage failed on a degenerate input. Carries the stage name
/// so a pipeline over repaired (possibly thinned) data can report
/// *which* figure could not be computed instead of unwinding.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError {
    /// The pipeline stage ("fig3" … "fig17", "goodput", "timeline").
    pub stage: &'static str,
    /// The underlying statistics error.
    pub source: StatsError,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline stage {}: {}", self.stage, self.source)
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Unwraps one fan-out slot, tagging a figure error with its stage.
fn take<T>(slot: Option<Result<T, StatsError>>, stage: &'static str) -> Result<T, PipelineError> {
    slot.expect("fan-out task ran").map_err(|source| PipelineError { stage, source })
}

/// Every figure of the paper, computed from one simulation run.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Table I rows.
    pub table1: Vec<(String, String)>,
    /// Dataset funnel (Sec. II).
    pub funnel: DatasetFunnel,
    /// Fig. 3 — run times and queue waits.
    pub fig3: Fig3,
    /// Fig. 4 — utilization CDFs.
    pub fig4: Fig4,
    /// Fig. 5 — utilization by interface.
    pub fig5: Fig5,
    /// Fig. 6 — active/idle phases.
    pub fig6: Fig6,
    /// Fig. 7 — variability and bottleneck radar.
    pub fig7: Fig7,
    /// Fig. 8 — bottleneck combinations.
    pub fig8: Fig8,
    /// Fig. 9 — power.
    pub fig9: Fig9,
    /// Fig. 10 — per-user averages.
    pub fig10: Fig10,
    /// Fig. 11 — per-user variability.
    pub fig11: Fig11,
    /// Fig. 12 — activity correlations.
    pub fig12: Fig12,
    /// Fig. 13 — multi-GPU sizes.
    pub fig13: Fig13,
    /// Fig. 14 — cross-GPU balance.
    pub fig14: Fig14,
    /// Fig. 15 — lifecycle mix.
    pub fig15: Fig15,
    /// Fig. 16 — utilization by class.
    pub fig16: Fig16,
    /// Fig. 17 — per-user lifecycle structure.
    pub fig17: Fig17,
    /// Goodput and failure attribution (reliability extension; not a
    /// paper figure).
    pub goodput: GoodputFig,
    /// Cluster state over the run (observability extension; not a
    /// paper figure).
    pub timeline: ClusterTimelineFig,
    /// The per-user statistics the user-level figures were computed
    /// from.
    pub users: Vec<UserStats>,
}

impl AnalysisReport {
    /// Computes every figure from a simulation output.
    ///
    /// # Panics
    ///
    /// Panics if the output lacks the populations a figure needs (e.g.
    /// no multi-GPU jobs, no detailed subset) — run a large enough
    /// trace.
    pub fn from_sim(out: &SimOutput) -> Self {
        Self::from_sim_logged(out, &StageLog::new())
    }

    /// Like [`AnalysisReport::from_sim`] but returning a typed error
    /// when a figure's population is missing.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage as a [`PipelineError`].
    pub fn try_from_sim(out: &SimOutput) -> Result<Self, PipelineError> {
        Self::try_from_sim_logged(out, &StageLog::new())
    }

    /// Like [`AnalysisReport::from_sim`], recording a wall-clock span
    /// per pipeline stage (view building, user stats, each figure)
    /// into `log` — the substrate of the Chrome trace export. The
    /// report itself is identical to `from_sim`'s.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`AnalysisReport::from_sim`].
    pub fn from_sim_logged(out: &SimOutput, log: &StageLog) -> Self {
        match Self::try_from_sim_logged(out, log) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// The `Result`-based core of the pipeline: computes every figure,
    /// recording one span per stage, and surfaces the first degenerate
    /// input as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage as a [`PipelineError`].
    pub fn try_from_sim_logged(out: &SimOutput, log: &StageLog) -> Result<Self, PipelineError> {
        let views = log.time("gpu_views", || gpu_views(&out.dataset));
        let users = log.time("user_stats", || user_stats(&views));
        // The figure computations are independent of each other; fan
        // them out over the sc-par thread budget. Each task writes its
        // own slot, so no figure depends on task scheduling order.
        let mut fig3 = None;
        let mut fig4 = None;
        let mut fig5 = None;
        let mut fig6 = None;
        let mut fig7 = None;
        let mut fig8 = None;
        let mut fig9 = None;
        let mut fig10 = None;
        let mut fig11 = None;
        let mut fig12 = None;
        let mut fig13 = None;
        let mut fig14 = None;
        let mut fig15 = None;
        let mut fig16 = None;
        let mut fig17 = None;
        let mut goodput = None;
        let mut timeline = None;
        {
            let (views, users, detailed) = (&views, &users, &out.detailed);
            sc_par::run_tasks(vec![
                Box::new(|| fig3 = Some(log.time("fig03", || Fig3::try_compute(&out.dataset)))),
                Box::new(|| fig4 = Some(log.time("fig04", || Fig4::try_compute(views)))),
                Box::new(|| fig5 = Some(log.time("fig05", || Fig5::try_compute(views)))),
                Box::new(|| fig6 = Some(log.time("fig06", || Fig6::try_compute(detailed)))),
                Box::new(|| fig7 = Some(log.time("fig07", || Fig7::try_compute(detailed, views)))),
                Box::new(|| fig8 = Some(log.time("fig08", || Fig8::try_compute(views)))),
                Box::new(|| fig9 = Some(log.time("fig09", || Fig9::try_compute(views)))),
                Box::new(|| fig10 = Some(log.time("fig10", || Fig10::try_compute(users)))),
                Box::new(|| fig11 = Some(log.time("fig11", || Fig11::try_compute(users)))),
                Box::new(|| fig12 = Some(log.time("fig12", || Fig12::try_compute(users)))),
                Box::new(|| fig13 = Some(log.time("fig13", || Fig13::try_compute(views, users)))),
                Box::new(|| fig14 = Some(log.time("fig14", || Fig14::try_compute(views)))),
                Box::new(|| fig15 = Some(log.time("fig15", || Fig15::try_compute(views)))),
                Box::new(|| fig16 = Some(log.time("fig16", || Fig16::try_compute(views)))),
                Box::new(|| fig17 = Some(log.time("fig17", || Fig17::try_compute(users)))),
                Box::new(|| goodput = Some(log.time("goodput", || GoodputFig::try_compute(out)))),
                Box::new(|| {
                    timeline = Some(log.time("timeline", || ClusterTimelineFig::try_compute(out)))
                }),
            ]);
        }
        Ok(AnalysisReport {
            table1: ClusterSpec::supercloud().table1(),
            funnel: out.dataset.funnel(),
            fig3: take(fig3, "fig3")?,
            fig4: take(fig4, "fig4")?,
            fig5: take(fig5, "fig5")?,
            fig6: take(fig6, "fig6")?,
            fig7: take(fig7, "fig7")?,
            fig8: take(fig8, "fig8")?,
            fig9: take(fig9, "fig9")?,
            fig10: take(fig10, "fig10")?,
            fig11: take(fig11, "fig11")?,
            fig12: take(fig12, "fig12")?,
            fig13: take(fig13, "fig13")?,
            fig14: take(fig14, "fig14")?,
            fig15: take(fig15, "fig15")?,
            fig16: take(fig16, "fig16")?,
            fig17: take(fig17, "fig17")?,
            goodput: take(goodput, "goodput")?,
            timeline: take(timeline, "timeline")?,
            users,
        })
    }

    /// All paper-vs-measured comparisons, grouped by figure.
    pub fn all_comparisons(&self) -> Vec<(&'static str, Vec<Comparison>)> {
        vec![
            ("Fig. 3 — run times and queue waits", self.fig3.comparisons()),
            ("Fig. 4 — GPU resource utilization", self.fig4.comparisons()),
            ("Fig. 5 — job-type mix", self.fig5.comparisons()),
            ("Fig. 6 — active/idle phases", self.fig6.comparisons()),
            ("Fig. 7 — variability and bottlenecks", self.fig7.comparisons()),
            ("Fig. 8 — bottleneck combinations", self.fig8.comparisons()),
            ("Fig. 9 — power and power capping", self.fig9.comparisons()),
            ("Fig. 10 — per-user averages", self.fig10.comparisons()),
            ("Fig. 11 — per-user variability", self.fig11.comparisons()),
            ("Fig. 12 — expert-user correlations", self.fig12.comparisons()),
            ("Fig. 13 — multi-GPU jobs", self.fig13.comparisons()),
            ("Fig. 14 — cross-GPU balance", self.fig14.comparisons()),
            ("Fig. 15 — lifecycle mix", self.fig15.comparisons()),
            ("Fig. 16 — utilization by class", self.fig16.comparisons()),
            ("Fig. 17 — per-user lifecycle structure", self.fig17.comparisons()),
            ("Goodput — failure attribution", self.goodput.comparisons()),
        ]
    }

    /// Renders every figure's series as plain text (what the repro
    /// harness prints).
    pub fn render_text(&self) -> String {
        let mut s = String::from("Table I — system specification:\n");
        for (k, v) in &self.table1 {
            s.push_str(&format!("  {k}: {v}\n"));
        }
        s.push_str(&format!(
            "Dataset funnel: {} total jobs, {} CPU jobs, {} GPU jobs analyzed ({} filtered \
             <30 s), {} users\n\n",
            self.funnel.total_jobs,
            self.funnel.cpu_jobs,
            self.funnel.gpu_jobs,
            self.funnel.gpu_jobs_filtered_out,
            self.funnel.unique_users
        ));
        for part in [
            self.fig3.render(),
            self.fig4.render(),
            self.fig5.render(),
            self.fig6.render(),
            self.fig7.render(),
            self.fig8.render(),
            self.fig9.render(),
            self.fig10.render(),
            self.fig11.render(),
            self.fig12.render(),
            self.fig13.render(),
            self.fig14.render(),
            self.fig15.render(),
            self.fig16.render(),
            self.fig17.render(),
            self.goodput.render(),
            self.timeline.render(),
        ] {
            s.push_str(&part);
            s.push('\n');
        }
        s
    }

    /// Renders the paper-vs-measured comparison as Markdown (the body
    /// of `EXPERIMENTS.md`).
    pub fn experiments_markdown(&self) -> String {
        let mut s = String::from(
            "# EXPERIMENTS — paper vs. measured\n\n\
             Every table and figure of the HPCA 2022 Supercloud characterization,\n\
             regenerated from the synthetic reproduction. Absolute agreement is not\n\
             expected (the substrate is a calibrated simulator, not the production\n\
             cluster); the *shape* — orderings, who dominates, where the mass sits —\n\
             is the reproduction target. Ratios near 1.00× indicate close agreement.\n\n",
        );
        s.push_str(&format!(
            "## Table I / dataset funnel\n\n\
             | Metric | Paper | Measured |\n|---|---|---|\n\
             | total jobs | 74820 | {} |\n\
             | analyzed GPU jobs | 47120 | {} |\n\
             | unique users | 191 | {} |\n\
             | detailed-series jobs | 2149 | {} |\n\n",
            self.funnel.total_jobs,
            self.funnel.gpu_jobs,
            self.funnel.unique_users,
            "(see harness output)"
        ));
        for (title, rows) in self.all_comparisons() {
            s.push_str(&markdown_table(title, &rows));
            s.push('\n');
        }
        s
    }
}

/// The figures computable from a joined dataset alone — what a consumer
/// of the *published* dataset (the paper's dcc.mit.edu release, our
/// [`sc_telemetry::Dataset::to_json`] export) can regenerate without the
/// 100 ms time-series subset (Figs. 6–7 need that subset and are
/// excluded here).
#[derive(Debug, Clone)]
pub struct DatasetReport {
    /// Fig. 3 — run times and queue waits.
    pub fig3: Fig3,
    /// Fig. 4 — utilization CDFs.
    pub fig4: Fig4,
    /// Fig. 5 — utilization by interface.
    pub fig5: Fig5,
    /// Fig. 8 — bottleneck combinations (from max aggregates).
    pub fig8: Fig8,
    /// Fig. 9 — power.
    pub fig9: Fig9,
    /// Fig. 10 — per-user averages.
    pub fig10: Fig10,
    /// Fig. 11 — per-user variability.
    pub fig11: Fig11,
    /// Fig. 12 — activity correlations.
    pub fig12: Fig12,
    /// Fig. 13 — multi-GPU sizes.
    pub fig13: Fig13,
    /// Fig. 14 — cross-GPU balance.
    pub fig14: Fig14,
    /// Fig. 15 — lifecycle mix.
    pub fig15: Fig15,
    /// Fig. 16 — utilization by class.
    pub fig16: Fig16,
    /// Fig. 17 — per-user lifecycle structure.
    pub fig17: Fig17,
}

impl DatasetReport {
    /// Computes every dataset-only figure.
    ///
    /// # Panics
    ///
    /// Panics if the dataset lacks a population some figure needs
    /// (e.g. no multi-GPU jobs).
    pub fn from_dataset(dataset: &sc_telemetry::Dataset) -> Self {
        match Self::try_from_dataset(dataset) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Computes every dataset-only figure, returning a typed error when
    /// a figure's population is missing — the entry point for datasets
    /// that went through [`mod@crate::ingest`] repair and may be thinner
    /// than a clean simulation output.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage as a [`PipelineError`].
    pub fn try_from_dataset(dataset: &sc_telemetry::Dataset) -> Result<Self, PipelineError> {
        let views = gpu_views(dataset);
        let users = user_stats(&views);
        // Same fan-out as `AnalysisReport::from_sim`, minus the two
        // figures that need the detailed time-series subset.
        let mut fig3 = None;
        let mut fig4 = None;
        let mut fig5 = None;
        let mut fig8 = None;
        let mut fig9 = None;
        let mut fig10 = None;
        let mut fig11 = None;
        let mut fig12 = None;
        let mut fig13 = None;
        let mut fig14 = None;
        let mut fig15 = None;
        let mut fig16 = None;
        let mut fig17 = None;
        {
            let (views, users) = (&views, &users);
            sc_par::run_tasks(vec![
                Box::new(|| fig3 = Some(Fig3::try_compute(dataset))),
                Box::new(|| fig4 = Some(Fig4::try_compute(views))),
                Box::new(|| fig5 = Some(Fig5::try_compute(views))),
                Box::new(|| fig8 = Some(Fig8::try_compute(views))),
                Box::new(|| fig9 = Some(Fig9::try_compute(views))),
                Box::new(|| fig10 = Some(Fig10::try_compute(users))),
                Box::new(|| fig11 = Some(Fig11::try_compute(users))),
                Box::new(|| fig12 = Some(Fig12::try_compute(users))),
                Box::new(|| fig13 = Some(Fig13::try_compute(views, users))),
                Box::new(|| fig14 = Some(Fig14::try_compute(views))),
                Box::new(|| fig15 = Some(Fig15::try_compute(views))),
                Box::new(|| fig16 = Some(Fig16::try_compute(views))),
                Box::new(|| fig17 = Some(Fig17::try_compute(users))),
            ]);
        }
        Ok(DatasetReport {
            fig3: take(fig3, "fig3")?,
            fig4: take(fig4, "fig4")?,
            fig5: take(fig5, "fig5")?,
            fig8: take(fig8, "fig8")?,
            fig9: take(fig9, "fig9")?,
            fig10: take(fig10, "fig10")?,
            fig11: take(fig11, "fig11")?,
            fig12: take(fig12, "fig12")?,
            fig13: take(fig13, "fig13")?,
            fig14: take(fig14, "fig14")?,
            fig15: take(fig15, "fig15")?,
            fig16: take(fig16, "fig16")?,
            fig17: take(fig17, "fig17")?,
        })
    }

    /// Renders every figure's series as text.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for part in [
            self.fig3.render(),
            self.fig4.render(),
            self.fig5.render(),
            self.fig8.render(),
            self.fig9.render(),
            self.fig10.render(),
            self.fig11.render(),
            self.fig12.render(),
            self.fig13.render(),
            self.fig14.render(),
            self.fig15.render(),
            self.fig16.render(),
            self.fig17.render(),
        ] {
            s.push_str(&part);
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn dataset_report_roundtrips_through_json() {
        // The "published dataset" workflow: export the joined dataset,
        // reload it, and regenerate the dataset-only figures.
        let json = small_sim().dataset.to_json().expect("serializable");
        let dataset = sc_telemetry::Dataset::from_json(&json).expect("parseable");
        let report = DatasetReport::from_dataset(&dataset);
        let direct = DatasetReport::from_dataset(&small_sim().dataset);
        assert_eq!(report.fig4.sm.median(), direct.fig4.sm.median());
        assert!(report.render_text().contains("Fig. 15"));
    }

    #[test]
    fn full_pipeline_runs_on_small_trace() {
        let report = AnalysisReport::from_sim(small_sim());
        assert!(!report.users.is_empty());
        assert_eq!(report.all_comparisons().len(), 16);
        let text = report.render_text();
        for marker in ["Table I", "Fig. 3(a)", "Fig. 9(b)", "Fig. 17(b)", "ClusterTimeline"] {
            assert!(text.contains(marker), "missing {marker}");
        }
        let md = report.experiments_markdown();
        assert!(md.contains("# EXPERIMENTS"));
        assert!(md.contains("| Metric | Paper | Measured | Ratio |"));
    }

    #[test]
    fn logged_pipeline_records_a_span_per_stage() {
        let log = StageLog::new();
        let report = AnalysisReport::from_sim_logged(small_sim(), &log);
        assert!(!report.users.is_empty());
        let spans = log.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        for stage in ["gpu_views", "user_stats", "fig03", "fig17", "goodput", "timeline"] {
            assert!(names.contains(&stage), "missing stage {stage} in {names:?}");
        }
        // Views and user stats run before any figure span opens.
        assert_eq!(names[0], "gpu_views");
        assert_eq!(names[1], "user_stats");
        // The spans render to a loadable Chrome trace document.
        let doc = sc_obs::chrome_trace_json(&spans);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"gpu_views\""));
    }
}
