//! The reliability-at-scale study driver.
//!
//! Orchestrates the event loop across the grids the reliability figure
//! family needs: one baseline run for the per-size table, one run per
//! MTBF setting for the goodput frontier, one run per checkpoint
//! interval for the Young/Daly sweep, and one run per fleet scale for
//! the cluster-growth study. Every run replays the *same* trace with
//! `detailed_series_jobs: 0`, so the study stays inside the streaming
//! engine's O(aggregate state) memory envelope at any fleet size.
//!
//! Everything a figure renders is deterministic (pure function of
//! trace + config); wall-clock timings are returned separately in
//! [`GrowthTiming`] for the bench JSON and never enter figure text.

use crate::figures::reliability::{
    CheckpointSweepFig, FrontierRow, GoodputFrontierFig, GrowthRow, GrowthStudyFig,
    ReliabilitySizeFig, SweepClassVerdict, SweepRow,
};
use sc_cluster::{CheckpointPolicy, FailureModel, SimConfig, SimOutput, Simulation};
use sc_workload::Trace;

/// Knobs of the reliability study; `Default` matches the
/// `repro_figures --reliability` defaults and the `[reliability]`
/// scenario section's fallbacks.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityConfig {
    /// MTBF scale factors for the goodput frontier (1.0 = the model as
    /// given; smaller = less reliable fleet).
    pub mtbf_factors: Vec<f64>,
    /// Number of checkpoint intervals in the Young/Daly sweep grid.
    pub sweep_points: usize,
    /// Geometric half-span of the sweep grid: intervals run from
    /// `min analytic optimum / span` to `max analytic optimum * span`.
    pub sweep_span: f64,
    /// Fleet scale factors for the cluster-growth study; empty skips it.
    pub growth_factors: Vec<f64>,
    /// Checkpoint write cost used by the sweep, seconds.
    pub write_secs: f64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            mtbf_factors: vec![1.0, 0.2, 0.05],
            sweep_points: 5,
            sweep_span: 4.0,
            growth_factors: Vec::new(),
            write_secs: 30.0,
        }
    }
}

/// Wall-clock timings of one growth-study run — bench-JSON material,
/// deliberately kept out of the deterministic figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthTiming {
    /// Fleet scale factor.
    pub factor: f64,
    /// Jobs replayed.
    pub jobs: usize,
    /// Event-loop wall-clock, seconds.
    pub event_loop_secs: f64,
    /// Telemetry-stage wall-clock, seconds.
    pub telemetry_secs: f64,
}

impl GrowthTiming {
    /// Event-loop throughput, jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.event_loop_secs <= 0.0 {
            0.0
        } else {
            self.jobs as f64 / self.event_loop_secs
        }
    }
}

/// Everything the reliability study produces.
#[derive(Debug, Clone)]
pub struct ReliabilityReport {
    /// Per-size-class reliability table from the baseline run.
    pub size_fig: ReliabilitySizeFig,
    /// Goodput fraction vs job size at several MTBF settings.
    pub frontier: GoodputFrontierFig,
    /// Checkpoint-interval sweep with the Young/Daly overlay.
    pub sweep: CheckpointSweepFig,
    /// Cluster-growth study; `None` when no growth factors were asked.
    pub growth: Option<GrowthStudyFig>,
    /// Wall-clock timings of the growth runs (bench material only).
    pub growth_timings: Vec<GrowthTiming>,
}

impl ReliabilityReport {
    /// Concatenated figure renders — deterministic text, byte-identical
    /// across `SC_PAR_THREADS` budgets (timings are excluded).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.size_fig.render());
        s.push('\n');
        s.push_str(&self.frontier.render());
        s.push('\n');
        s.push_str(&self.sweep.render());
        if let Some(g) = &self.growth {
            s.push('\n');
            s.push_str(&g.render());
        }
        s
    }
}

/// Young/Daly optimal checkpoint interval: `sqrt(2 * write * MTTI)`.
pub fn young_daly_secs(write_secs: f64, mtti_secs: f64) -> f64 {
    (2.0 * write_secs * mtti_secs).sqrt()
}

/// The study's base configuration: the caller's config with failures
/// set, checkpointing as given, and the detailed subset disabled (the
/// study only reads aggregate ledgers).
fn study_config(
    base: &SimConfig,
    model: &FailureModel,
    checkpoint: Option<CheckpointPolicy>,
) -> SimConfig {
    SimConfig { detailed_series_jobs: 0, failures: Some(model.clone()), checkpoint, ..base.clone() }
}

/// Representative GPU count per size class: the class's upper edge
/// (double the last edge for the open-ended class), used for the
/// frontier x-axis and the per-class analytic MTTI footprint.
fn class_gpus(edges: &[u32]) -> Vec<u32> {
    if edges.is_empty() {
        return vec![8];
    }
    let mut reps: Vec<u32> = edges.iter().map(|&e| e.max(1)).collect();
    reps.push(edges[edges.len() - 1].saturating_mul(2).max(1));
    reps
}

/// Nodes a job with `gpus` GPUs spans on this cluster (dense packing).
fn nodes_for_gpus(base: &SimConfig, gpus: u32) -> u32 {
    let per_node = base.cluster.node.gpus.max(1);
    gpus.div_ceil(per_node).max(1)
}

/// Per-class goodput fractions of one run, in bucket order.
fn class_goodput(out: &SimOutput) -> Vec<Option<f64>> {
    out.reliability.buckets.iter().map(|b| b.goodput_fraction()).collect()
}

/// The baseline per-size-class reliability figure: one event-loop run
/// with the model as given and no checkpointing.
pub fn reliability_size_fig(
    trace: &Trace,
    base: &SimConfig,
    model: &FailureModel,
) -> ReliabilitySizeFig {
    let out = Simulation::new(study_config(base, model, None)).run(trace);
    ReliabilitySizeFig::compute(&out)
}

/// The goodput frontier: one run per MTBF scale factor.
pub fn goodput_frontier(
    trace: &Trace,
    base: &SimConfig,
    model: &FailureModel,
    factors: &[f64],
) -> GoodputFrontierFig {
    let mut rows = Vec::with_capacity(factors.len());
    let mut labels = Vec::new();
    for &f in factors {
        let scaled = model.scaled_mtbf(f);
        let out = Simulation::new(study_config(base, &scaled, None)).run(trace);
        if labels.is_empty() {
            labels = (0..out.reliability.buckets.len()).map(|i| out.reliability.label(i)).collect();
        }
        rows.push(FrontierRow {
            mtbf_factor: f,
            goodput_by_class: class_goodput(&out),
            overall: out.goodput.goodput_fraction(),
        });
    }
    let gpus = class_gpus(&base.size_bucket_edges);
    GoodputFrontierFig::try_new(labels, gpus, rows).expect("at least one MTBF factor")
}

/// The checkpoint-interval sweep: a geometric grid spanning the
/// per-class Young/Daly optima, one event-loop run per interval, and
/// the per-class simulated argmax overlaid on the analytic prediction.
pub fn checkpoint_sweep(
    trace: &Trace,
    base: &SimConfig,
    model: &FailureModel,
    cfg: &ReliabilityConfig,
) -> CheckpointSweepFig {
    let reps = class_gpus(&base.size_bucket_edges);
    let analytic: Vec<f64> = reps
        .iter()
        .map(|&g| young_daly_secs(cfg.write_secs, model.job_mtti_secs(nodes_for_gpus(base, g), g)))
        .collect();
    let finite: Vec<f64> = analytic.iter().copied().filter(|t| t.is_finite() && *t > 0.0).collect();
    // Fallback grid center for a degenerate model (no classes): 1 hour.
    let (tau_min, tau_max) = if finite.is_empty() {
        (3600.0, 3600.0)
    } else {
        (
            finite.iter().cloned().fold(f64::INFINITY, f64::min),
            finite.iter().cloned().fold(0.0, f64::max),
        )
    };
    let points = cfg.sweep_points.max(2);
    let span = cfg.sweep_span.max(1.0 + 1e-9);
    let lo = (tau_min / span).max(1.0);
    let hi = (tau_max * span).max(lo * (1.0 + 1e-9));
    let step = (hi / lo).powf(1.0 / (points - 1) as f64);
    let mut rows = Vec::with_capacity(points);
    for i in 0..points {
        let interval = lo * step.powi(i as i32);
        let cp = CheckpointPolicy { interval_secs: interval, write_secs: cfg.write_secs };
        let out = Simulation::new(study_config(base, model, Some(cp))).run(trace);
        rows.push(SweepRow {
            interval_secs: interval,
            overall_goodput: out.goodput.goodput_fraction(),
            goodput_by_class: class_goodput(&out),
            lost_gpu_hours: out.goodput.lost_gpu_secs / 3600.0,
            write_gpu_hours: out.goodput.checkpoint_write_gpu_secs / 3600.0,
        });
    }
    let n_classes = rows.first().map_or(0, |r| r.goodput_by_class.len());
    let labels: Vec<String> = {
        let rel = sc_cluster::ReliabilityStats::new(&base.size_bucket_edges);
        (0..n_classes).map(|i| rel.label(i)).collect()
    };
    let classes = (0..n_classes)
        .map(|c| {
            // Simulated optimum: grid argmax of the class's goodput,
            // smallest interval on ties (strict > keeps the first max).
            let mut best: Option<(f64, f64)> = None;
            for r in &rows {
                if let Some(g) = r.goodput_by_class[c] {
                    if best.is_none_or(|(_, bg)| g > bg) {
                        best = Some((r.interval_secs, g));
                    }
                }
            }
            SweepClassVerdict {
                label: labels[c].clone(),
                gpus: reps.get(c).copied().unwrap_or(0),
                analytic_secs: analytic.get(c).copied().unwrap_or(f64::INFINITY),
                simulated_secs: best.map(|(t, _)| t),
            }
        })
        .collect();
    CheckpointSweepFig::try_new(rows, classes).expect("at least two grid points")
}

/// The cluster-growth study: replay the same trace on a fleet scaled
/// by each factor (GPU and CPU-only nodes alike), reporting queue
/// wait, goodput, and makespan per scale — plus wall-clock timings for
/// the bench JSON.
pub fn growth_study(
    trace: &Trace,
    base: &SimConfig,
    model: &FailureModel,
    factors: &[f64],
) -> (Option<GrowthStudyFig>, Vec<GrowthTiming>) {
    let mut rows = Vec::with_capacity(factors.len());
    let mut timings = Vec::with_capacity(factors.len());
    for &k in factors {
        let mut cfg = study_config(base, model, None);
        cfg.cluster.nodes = ((cfg.cluster.nodes as f64) * k).round().max(1.0) as u32;
        cfg.cluster.cpu_only_nodes = ((cfg.cluster.cpu_only_nodes as f64) * k).round() as u32;
        let (out, t) = Simulation::new(cfg.clone()).run_timed(trace);
        let mut waits: Vec<f64> =
            out.dataset.records().iter().map(|r| r.sched.queue_wait()).collect();
        waits.sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
        let median = if waits.is_empty() { 0.0 } else { waits[waits.len() / 2] };
        let mean =
            if waits.is_empty() { 0.0 } else { waits.iter().sum::<f64>() / waits.len() as f64 };
        rows.push(GrowthRow {
            factor: k,
            nodes: cfg.cluster.total_nodes(),
            gpus: cfg.cluster.total_gpus(),
            median_wait_secs: median,
            mean_wait_secs: mean,
            goodput_fraction: out.goodput.goodput_fraction(),
            makespan_days: out.stats.makespan_secs / 86_400.0,
            events: out.stats.events,
        });
        timings.push(GrowthTiming {
            factor: k,
            jobs: trace.jobs().len(),
            event_loop_secs: t.event_loop_secs,
            telemetry_secs: t.telemetry_secs,
        });
    }
    (GrowthStudyFig::try_new(rows).ok(), timings)
}

/// Runs the full reliability study: baseline size table, goodput
/// frontier, Young/Daly checkpoint sweep, and (when factors are given)
/// the cluster-growth study.
pub fn run_reliability_study(
    trace: &Trace,
    base: &SimConfig,
    model: &FailureModel,
    cfg: &ReliabilityConfig,
) -> ReliabilityReport {
    let size_fig = reliability_size_fig(trace, base, model);
    let frontier = goodput_frontier(trace, base, model, &cfg.mtbf_factors);
    let sweep = checkpoint_sweep(trace, base, model, cfg);
    let (growth, growth_timings) = if cfg.growth_factors.is_empty() {
        (None, Vec::new())
    } else {
        growth_study(trace, base, model, &cfg.growth_factors)
    };
    ReliabilityReport { size_fig, frontier, sweep, growth, growth_timings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cluster::FailureModel;
    use sc_workload::{Trace, WorkloadSpec};

    fn stress_setup() -> (Trace, SimConfig, FailureModel) {
        let spec = WorkloadSpec::supercloud().scaled(0.004);
        let trace = Trace::generate(&spec, 5);
        let base = SimConfig { detailed_series_jobs: 0, ..Default::default() };
        let model = FailureModel::supercloud(5).scaled_mtbf(0.02);
        (trace, base, model)
    }

    #[test]
    fn young_daly_matches_closed_form() {
        assert!(
            (young_daly_secs(30.0, 86_400.0) - (2.0 * 30.0 * 86_400.0_f64).sqrt()).abs() < 1e-9
        );
    }

    #[test]
    fn study_produces_all_figures_and_is_deterministic() {
        let (trace, base, model) = stress_setup();
        let cfg = ReliabilityConfig {
            mtbf_factors: vec![1.0, 0.2],
            sweep_points: 3,
            growth_factors: vec![2.0],
            ..Default::default()
        };
        let a = run_reliability_study(&trace, &base, &model, &cfg);
        assert_eq!(a.frontier.rows.len(), 2);
        assert_eq!(a.sweep.rows.len(), 3);
        assert!(a.growth.is_some());
        assert_eq!(a.growth_timings.len(), 1);
        assert!(a.growth_timings[0].jobs_per_sec() > 0.0);
        // Grid intervals ascend; the sweep found a simulated optimum
        // for at least one class with failures.
        for w in a.sweep.rows.windows(2) {
            assert!(w[0].interval_secs < w[1].interval_secs);
        }
        assert!(a.sweep.worst_ratio().is_some(), "no class produced a verdict");
        let b = run_reliability_study(&trace, &base, &model, &cfg);
        assert_eq!(a.render(), b.render(), "study text must be deterministic");
    }

    #[test]
    fn frontier_degrades_with_mtbf() {
        let (trace, base, model) = stress_setup();
        let fig = goodput_frontier(&trace, &base, &model, &[1.0, 0.05]);
        // Scaling MTBF down by 20x must not improve overall goodput.
        assert!(
            fig.rows[1].overall <= fig.rows[0].overall + 1e-9,
            "goodput rose as the fleet degraded: {} -> {}",
            fig.rows[0].overall,
            fig.rows[1].overall
        );
    }

    #[test]
    fn growth_scales_the_fleet_and_drains_the_queue_faster() {
        let (trace, base, _) = stress_setup();
        // Baseline failure rates: waits are capacity-driven, so a
        // bigger fleet can only shorten them. (Under a stress model the
        // extra fleet-wide faults inflate requeue waits instead.)
        let model = FailureModel::supercloud(5);
        let (fig, timings) = growth_study(&trace, &base, &model, &[1.0, 8.0]);
        let fig = fig.unwrap();
        assert_eq!(fig.rows.len(), 2);
        assert_eq!(fig.rows[1].gpus, fig.rows[0].gpus * 8);
        // More capacity can only shorten queues (same workload).
        assert!(fig.rows[1].mean_wait_secs <= fig.rows[0].mean_wait_secs + 1e-6);
        assert!(fig.rows[1].median_wait_secs <= fig.rows[0].median_wait_secs + 1e-6);
        assert_eq!(timings.len(), 2);
    }
}
