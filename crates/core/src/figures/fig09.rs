//! Fig. 9 — GPU power consumption and power-capping impact.

use crate::paper::fig9 as paper;
use crate::report::{format_cdf_points, Comparison};
use crate::view::GpuJobView;
use sc_stats::{Ecdf, StatsError};

/// Impact of one cap level (Fig. 9b bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapImpact {
    /// The cap, watts.
    pub cap_w: f64,
    /// Fraction of jobs whose maximum draw stays under the cap
    /// (completely unimpacted).
    pub unimpacted: f64,
    /// Fraction whose maximum draw exceeds the cap (impacted at peak).
    pub impacted_by_max: f64,
    /// Fraction whose *average* draw exceeds the cap (impacted
    /// throughout).
    pub impacted_by_avg: f64,
}

/// Fig. 9(a): ECDFs of job-average and job-maximum power; Fig. 9(b):
/// cap impact at 150/200/250 W.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Job-average GPU power, watts.
    pub avg_power: Ecdf,
    /// Job-maximum GPU power, watts.
    pub max_power: Ecdf,
    /// Cap impacts in [`crate::paper::fig9::CAP_LEVELS_W`] order.
    pub caps: Vec<CapImpact>,
}

impl Fig9 {
    /// Computes the figure from the job views' power aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig9: {e}"),
        }
    }

    /// Computes the figure, returning a typed error for an empty view
    /// set instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `views` is empty and
    /// propagates non-finite sample errors.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        let avg: Vec<f64> = views.iter().map(|v| v.agg.power_w.mean).collect();
        let max: Vec<f64> = views.iter().map(|v| v.agg.power_w.max).collect();
        let avg_power = Ecdf::new(avg)?;
        let max_power = Ecdf::new(max)?;
        let caps = paper::CAP_LEVELS_W
            .iter()
            .map(|&cap_w| CapImpact {
                cap_w,
                unimpacted: max_power.fraction_at_most(cap_w),
                impacted_by_max: max_power.fraction_above(cap_w),
                impacted_by_avg: avg_power.fraction_above(cap_w),
            })
            .collect();
        Ok(Fig9 { avg_power, max_power, caps })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let cap150 = self.caps[0];
        vec![
            Comparison::new(
                "median job-average power",
                paper::AVG_POWER_MEDIAN_W,
                self.avg_power.median(),
                "W",
            ),
            Comparison::new(
                "median job-maximum power",
                paper::MAX_POWER_MEDIAN_W,
                self.max_power.median(),
                "W",
            ),
            Comparison::new(
                "jobs unimpacted at 150 W cap",
                paper::UNIMPACTED_AT_150W,
                cap150.unimpacted,
                "frac",
            ),
            Comparison::new(
                "jobs avg-impacted at 150 W cap",
                paper::AVG_IMPACTED_AT_150W,
                cap150.impacted_by_avg,
                "frac",
            ),
        ]
    }

    /// Renders both panels as text.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 9(a) power ECDFs (W):\n  avg: {}\n  max: {}\n",
            format_cdf_points(&self.avg_power.curve(20), 20),
            format_cdf_points(&self.max_power.curve(20), 20)
        );
        s.push_str("Fig. 9(b) power-cap impact:\n");
        for c in &self.caps {
            s.push_str(&format!(
                "  cap {:>3} W: unimpacted {:.1}%, impacted-by-max {:.1}%, impacted-by-avg {:.1}%\n",
                c.cap_w,
                c.unimpacted * 100.0,
                c.impacted_by_max * 100.0,
                c.impacted_by_avg * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn power_is_far_below_tdp() {
        let views = small_views();
        let fig = Fig9::compute(&views);
        // "most jobs consume less than half or even a third of the
        // available power on average."
        assert!(fig.avg_power.median() < 100.0, "avg median {}", fig.avg_power.median());
        assert!(fig.max_power.median() < 150.0, "max median {}", fig.max_power.median());
        assert!(fig.max_power.max() <= 300.0 + 1e-9);
    }

    #[test]
    fn capping_at_150w_leaves_majority_unimpacted() {
        let views = small_views();
        let fig = Fig9::compute(&views);
        let cap150 = fig.caps[0];
        assert!(cap150.unimpacted > 0.5, "unimpacted {}", cap150.unimpacted);
        assert!(cap150.impacted_by_avg < 0.15, "avg impacted {}", cap150.impacted_by_avg);
        // Monotonicity across cap levels.
        assert!(fig.caps[1].unimpacted >= fig.caps[0].unimpacted);
        assert!(fig.caps[2].unimpacted >= fig.caps[1].unimpacted);
    }

    #[test]
    fn max_dominates_avg_pointwise() {
        let views = small_views();
        for v in &views {
            assert!(v.agg.power_w.max >= v.agg.power_w.mean - 1e-9);
        }
    }

    #[test]
    fn render_mentions_all_caps() {
        let views = small_views();
        let text = Fig9::compute(&views).render();
        for cap in ["150", "200", "250"] {
            assert!(text.contains(cap));
        }
    }
}
