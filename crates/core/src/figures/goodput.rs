//! Goodput and failure attribution — the reliability extension.
//!
//! Not a figure of the HPCA 2022 paper: the Supercloud window saw
//! hardware behind under 0.5% of job deaths (Sec. II), so the paper
//! stops at that number. This figure carries the analysis the
//! reliability literature runs on larger fleets — where did every
//! allocated GPU-hour go, and which failure class destroyed the lost
//! ones — computed from the simulator's goodput ledger.

use crate::paper::operations as paper;
use crate::report::Comparison;
use sc_cluster::SimOutput;
use sc_stats::StatsError;
use sc_telemetry::record::{ExitStatus, FailureCause};

/// One taxonomy class's toll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CauseRow {
    /// The failure class.
    pub cause: FailureCause,
    /// Job attempts it killed.
    pub deaths: u64,
    /// Active GPU-hours it destroyed.
    pub lost_gpu_hours: f64,
}

/// The goodput breakdown over all attempts of every job.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputFig {
    /// Total allocated GPU-hours (all attempts).
    pub allocated_gpu_hours: f64,
    /// Active GPU-hours whose work survived.
    pub useful_gpu_hours: f64,
    /// Active GPU-hours destroyed by failures.
    pub lost_gpu_hours: f64,
    /// Allocated GPU-hours the GPUs sat idle.
    pub idle_gpu_hours: f64,
    /// GPU-hours spent writing checkpoints (a subset of useful).
    pub checkpoint_write_gpu_hours: f64,
    /// `useful / allocated`.
    pub goodput_fraction: f64,
    /// Per-cause attribution, in [`FailureCause::ALL`] order.
    pub by_cause: Vec<CauseRow>,
    /// Jobs whose final accounting record shows a hardware death, as a
    /// fraction of all jobs — the paper's <0.5% operations claim.
    pub hardware_death_fraction: f64,
    /// Jobs that needed more than one attempt.
    pub jobs_retried: usize,
    /// Jobs that needed more than one attempt and still ended in
    /// something other than a node failure — recovery worked.
    pub jobs_recovered: usize,
}

impl GoodputFig {
    /// Computes the breakdown from a simulation output.
    ///
    /// # Panics
    ///
    /// Panics if the output has no job fates (an empty trace).
    pub fn compute(out: &SimOutput) -> Self {
        match Self::try_compute(out) {
            Ok(fig) => fig,
            Err(e) => panic!("goodput: {e}"),
        }
    }

    /// Computes the breakdown, returning a typed error for an empty
    /// trace instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when the output has no job
    /// fates.
    pub fn try_compute(out: &SimOutput) -> Result<Self, StatsError> {
        if out.fates.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let g = &out.goodput;
        let by_cause = FailureCause::ALL
            .iter()
            .map(|&cause| CauseRow {
                cause,
                deaths: g.deaths_by_cause[cause.index()],
                lost_gpu_hours: g.lost_by_cause_gpu_secs[cause.index()] / 3600.0,
            })
            .collect();
        let hardware_deaths =
            out.fates.iter().filter(|f| f.exit == ExitStatus::NodeFailure).count();
        let jobs_retried = out.fates.iter().filter(|f| f.attempts > 1).count();
        let jobs_recovered = out
            .fates
            .iter()
            .filter(|f| f.attempts > 1 && f.exit != ExitStatus::NodeFailure)
            .count();
        Ok(GoodputFig {
            allocated_gpu_hours: g.allocated_gpu_secs / 3600.0,
            useful_gpu_hours: g.useful_gpu_secs / 3600.0,
            lost_gpu_hours: g.lost_gpu_secs / 3600.0,
            idle_gpu_hours: g.idle_gpu_secs / 3600.0,
            checkpoint_write_gpu_hours: g.checkpoint_write_gpu_secs / 3600.0,
            goodput_fraction: g.goodput_fraction(),
            by_cause,
            hardware_death_fraction: hardware_deaths as f64 / out.fates.len() as f64,
            jobs_retried,
            jobs_recovered,
        })
    }

    /// Fraction of allocated GPU time destroyed by failures.
    pub fn lost_fraction(&self) -> f64 {
        if self.allocated_gpu_hours <= 0.0 {
            0.0
        } else {
            self.lost_gpu_hours / self.allocated_gpu_hours
        }
    }

    /// Paper-vs-measured rows. Only the hardware-death fraction has a
    /// paper value; the rest of the breakdown is the extension.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![Comparison::new(
            "hardware-failure job fraction",
            paper::HARDWARE_FAILURE_FRACTION,
            self.hardware_death_fraction,
            "frac",
        )]
    }

    /// Renders the ledger and the attribution table as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Goodput and failure attribution (all attempts):\n");
        s.push_str(&format!(
            "  allocated {:.1} GPU-h = useful {:.1} + lost {:.1} + idle {:.1}  \
             (goodput {:.1}%)\n",
            self.allocated_gpu_hours,
            self.useful_gpu_hours,
            self.lost_gpu_hours,
            self.idle_gpu_hours,
            self.goodput_fraction * 100.0
        ));
        s.push_str(&format!(
            "  checkpoint writes: {:.1} GPU-h; hardware deaths: {:.2}% of jobs; \
             retried jobs: {} ({} recovered)\n",
            self.checkpoint_write_gpu_hours,
            self.hardware_death_fraction * 100.0,
            self.jobs_retried,
            self.jobs_recovered
        ));
        s.push_str("  cause             deaths   lost GPU-h\n");
        for row in &self.by_cause {
            s.push_str(&format!(
                "  {:<16} {:>7}  {:>10.1}\n",
                row.cause.to_string(),
                row.deaths,
                row.lost_gpu_hours
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;
    use sc_cluster::{FailureModel, SimConfig, Simulation};
    use sc_workload::{Trace, WorkloadSpec};

    #[test]
    fn ledger_balances_without_injection() {
        let fig = GoodputFig::compute(small_sim());
        let total = fig.useful_gpu_hours + fig.lost_gpu_hours + fig.idle_gpu_hours;
        assert!(
            (fig.allocated_gpu_hours - total).abs() <= 1e-6 * fig.allocated_gpu_hours,
            "imbalance: {fig:?}"
        );
        assert!(fig.goodput_fraction > 0.0 && fig.goodput_fraction <= 1.0);
        // Without injection, hardware deaths are the trace victims —
        // the same order as the paper's <0.5%.
        assert!(fig.hardware_death_fraction < 0.02);
        assert_eq!(fig.jobs_retried, 0);
        assert_eq!(fig.comparisons().len(), 1);
        assert!(fig.render().contains("Goodput"));
    }

    #[test]
    fn injection_shifts_hours_into_lost_buckets() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 13);
        let out = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: Some(FailureModel::supercloud(2).scaled_mtbf(0.05)),
            ..Default::default()
        })
        .run(&trace);
        let fig = GoodputFig::compute(&out);
        assert!(fig.lost_gpu_hours > 0.0);
        assert!(fig.jobs_retried > 0);
        assert!(fig.jobs_recovered > 0, "some retried job should survive");
        let attributed: f64 = fig.by_cause.iter().map(|r| r.lost_gpu_hours).sum();
        assert!(
            (attributed - fig.lost_gpu_hours).abs() <= 1e-6 * fig.lost_gpu_hours.max(1.0),
            "per-cause rows must cover all losses"
        );
    }
}
