//! Fig. 16 — utilization box plots by lifecycle class.

use crate::paper::fig16 as paper;
use crate::report::Comparison;
use crate::view::GpuJobView;
use sc_stats::{BoxStats, StatsError};
use sc_workload::LifecycleClass;

/// One class's utilization boxes.
#[derive(Debug, Clone)]
pub struct ClassBoxes {
    /// The class.
    pub class: LifecycleClass,
    /// SM utilization box (Fig. 16a).
    pub sm: BoxStats,
    /// Memory utilization box (Fig. 16b).
    pub mem: BoxStats,
    /// Memory-size utilization box (Fig. 16c).
    pub mem_size: BoxStats,
}

/// The per-class utilization comparison.
#[derive(Debug, Clone)]
pub struct Fig16 {
    /// Rows in [`LifecycleClass::ALL`] order.
    pub rows: Vec<ClassBoxes>,
}

impl Fig16 {
    /// Computes the boxes.
    ///
    /// # Panics
    ///
    /// Panics if any class has no jobs.
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig16: {e}"),
        }
    }

    /// Computes the boxes, returning a typed error when a class has no
    /// jobs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when any class is
    /// unpopulated.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        let mut rows = Vec::with_capacity(LifecycleClass::ALL.len());
        for &class in LifecycleClass::ALL.iter() {
            let sm: Vec<f64> =
                views.iter().filter(|v| v.class == class).map(|v| v.agg.sm_util.mean).collect();
            let mem: Vec<f64> =
                views.iter().filter(|v| v.class == class).map(|v| v.agg.mem_util.mean).collect();
            let msz: Vec<f64> = views
                .iter()
                .filter(|v| v.class == class)
                .map(|v| v.agg.mem_size_util.mean)
                .collect();
            rows.push(ClassBoxes {
                class,
                sm: BoxStats::from_sample(&sm)?,
                mem: BoxStats::from_sample(&mem)?,
                mem_size: BoxStats::from_sample(&msz)?,
            });
        }
        Ok(Fig16 { rows })
    }

    /// The row for one class.
    ///
    /// # Panics
    ///
    /// Panics if the class is missing (cannot happen).
    pub fn row(&self, class: LifecycleClass) -> &ClassBoxes {
        self.rows.iter().find(|r| r.class == class).expect("all classes present")
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        use LifecycleClass::*;
        vec![
            Comparison::new(
                "mature median SM",
                paper::MATURE_SM_MEDIAN,
                self.row(Mature).sm.median,
                "%",
            ),
            Comparison::new(
                "exploratory median SM",
                paper::EXPLORATORY_SM_MEDIAN,
                self.row(Exploratory).sm.median,
                "%",
            ),
            Comparison::new(
                "development median SM",
                paper::DEVELOPMENT_SM_MEDIAN,
                self.row(Development).sm.median,
                "%",
            ),
            Comparison::new("IDE median SM", paper::IDE_SM_MEDIAN, self.row(Ide).sm.median, "%"),
            Comparison::new("IDE p75 SM", paper::IDE_SM_P75, self.row(Ide).sm.q3, "%"),
        ]
    }

    /// Renders all three panels as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 16 utilization by lifecycle class:\n");
        for (panel, pick) in [("(a) SM", 0usize), ("(b) memory", 1), ("(c) memory size", 2)] {
            s.push_str(&format!("  {panel}:\n"));
            for r in &self.rows {
                let b = match pick {
                    0 => &r.sm,
                    1 => &r.mem,
                    _ => &r.mem_size,
                };
                s.push_str(&format!("    {:<12} {}\n", r.class.to_string(), b.render()));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;
    use LifecycleClass::*;

    #[test]
    fn development_and_ide_sit_idle() {
        let views = small_views();
        let fig = Fig16::compute(&views);
        // "the median SM utilization of mature jobs, exploratory jobs,
        // development jobs, and IDE jobs is 21%, 15%, 0%, and 0%."
        assert!(
            fig.row(Development).sm.median < 4.0,
            "dev median {}",
            fig.row(Development).sm.median
        );
        assert!(fig.row(Ide).sm.median < 3.0, "IDE median {}", fig.row(Ide).sm.median);
        assert!(fig.row(Mature).sm.median > 8.0, "mature median {}", fig.row(Mature).sm.median);
    }

    #[test]
    fn mature_leads_exploratory_leads_development() {
        let views = small_views();
        let fig = Fig16::compute(&views);
        assert!(fig.row(Mature).sm.median >= fig.row(Exploratory).sm.median * 0.7);
        assert!(fig.row(Exploratory).sm.median > fig.row(Development).sm.median);
    }

    #[test]
    fn ide_p75_is_near_zero() {
        let views = small_views();
        let fig = Fig16::compute(&views);
        // "even the 75th percentile SM utilization of IDE jobs is 0%."
        assert!(fig.row(Ide).sm.q3 < 5.0, "IDE p75 {}", fig.row(Ide).sm.q3);
        assert!(fig.render().contains("(c) memory size"));
        assert_eq!(fig.comparisons().len(), 5);
    }
}
