//! Fig. 13 / Sec. V — multi-GPU job sizes, GPU-hour footprint, per-size
//! queue waits, and the Philly cross-system comparison.

use crate::paper::fig13 as paper;
use crate::report::Comparison;
use crate::userstats::UserStats;
use crate::view::GpuJobView;
use sc_stats::{Ecdf, StatsError};

/// Job-size buckets in the paper's presentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeBucket {
    /// Exactly one GPU.
    One,
    /// Exactly two GPUs.
    Two,
    /// Three to eight GPUs.
    ThreeToEight,
    /// Nine or more GPUs.
    NinePlus,
}

impl SizeBucket {
    /// All buckets in order.
    pub const ALL: [SizeBucket; 4] =
        [SizeBucket::One, SizeBucket::Two, SizeBucket::ThreeToEight, SizeBucket::NinePlus];

    /// The bucket for a GPU count.
    pub fn of(gpus: u32) -> SizeBucket {
        match gpus {
            0 | 1 => SizeBucket::One,
            2 => SizeBucket::Two,
            3..=8 => SizeBucket::ThreeToEight,
            _ => SizeBucket::NinePlus,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBucket::One => "1 GPU",
            SizeBucket::Two => "2 GPUs",
            SizeBucket::ThreeToEight => "3-8 GPUs",
            SizeBucket::NinePlus => ">8 GPUs",
        }
    }
}

/// One bucket's statistics.
#[derive(Debug, Clone)]
pub struct SizeRow {
    /// The bucket.
    pub bucket: SizeBucket,
    /// Fraction of jobs (Fig. 13a).
    pub job_share: f64,
    /// Fraction of total GPU hours (Fig. 13b).
    pub hours_share: f64,
    /// Median queue wait, seconds (Sec. V's unplotted table).
    pub median_wait_secs: f64,
}

/// The full multi-GPU characterization.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// Per-bucket rows.
    pub rows: Vec<SizeRow>,
    /// Share of GPU hours from multi-GPU jobs.
    pub multi_gpu_hours_share: f64,
    /// Fraction of users who ran at least one multi-GPU job.
    pub users_with_multi_gpu: f64,
    /// Fraction of users who ran jobs of three or more GPUs.
    pub users_with_3_gpus: f64,
    /// Fraction of users who ran jobs of nine or more GPUs.
    pub users_with_9_gpus: f64,
}

impl Fig13 {
    /// Computes the figure.
    ///
    /// # Panics
    ///
    /// Panics if `views` or `stats` is empty.
    pub fn compute(views: &[GpuJobView<'_>], stats: &[UserStats]) -> Self {
        match Self::try_compute(views, stats) {
            Ok(fig) => fig,
            Err(e) => panic!("fig13: {e}"),
        }
    }

    /// Computes the figure, returning a typed error on degenerate
    /// inputs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `views` or `stats` is
    /// empty.
    pub fn try_compute(views: &[GpuJobView<'_>], stats: &[UserStats]) -> Result<Self, StatsError> {
        if views.is_empty() || stats.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let total_jobs = views.len() as f64;
        let total_hours: f64 = views.iter().map(|v| v.gpu_hours()).sum();
        let mut rows = Vec::with_capacity(SizeBucket::ALL.len());
        for &bucket in SizeBucket::ALL.iter() {
            let in_bucket: Vec<&GpuJobView> =
                views.iter().filter(|v| SizeBucket::of(v.sched.gpus_requested) == bucket).collect();
            let hours: f64 = in_bucket.iter().map(|v| v.gpu_hours()).sum();
            let median_wait = if in_bucket.is_empty() {
                0.0
            } else {
                Ecdf::new(in_bucket.iter().map(|v| v.sched.queue_wait()).collect())?.median()
            };
            rows.push(SizeRow {
                bucket,
                job_share: in_bucket.len() as f64 / total_jobs,
                hours_share: if total_hours > 0.0 { hours / total_hours } else { 0.0 },
                median_wait_secs: median_wait,
            });
        }
        let multi_hours: f64 =
            views.iter().filter(|v| v.sched.gpus_requested > 1).map(|v| v.gpu_hours()).sum();
        let users = stats.len() as f64;
        Ok(Fig13 {
            rows,
            multi_gpu_hours_share: if total_hours > 0.0 { multi_hours / total_hours } else { 0.0 },
            users_with_multi_gpu: stats.iter().filter(|s| s.max_gpus > 1).count() as f64 / users,
            users_with_3_gpus: stats.iter().filter(|s| s.max_gpus >= 3).count() as f64 / users,
            users_with_9_gpus: stats.iter().filter(|s| s.max_gpus >= 9).count() as f64 / users,
        })
    }

    /// The row for one bucket.
    ///
    /// # Panics
    ///
    /// Panics if the bucket is missing (cannot happen).
    pub fn row(&self, bucket: SizeBucket) -> &SizeRow {
        self.rows.iter().find(|r| r.bucket == bucket).expect("all buckets present")
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let above_two =
            self.row(SizeBucket::ThreeToEight).job_share + self.row(SizeBucket::NinePlus).job_share;
        vec![
            Comparison::new(
                "single-GPU job share",
                paper::SINGLE_GPU_FRACTION,
                self.row(SizeBucket::One).job_share,
                "frac",
            ),
            Comparison::new(">2-GPU job share", paper::ABOVE_2_GPU_FRACTION, above_two, "frac"),
            Comparison::new(
                "multi-GPU share of GPU hours",
                paper::MULTI_GPU_HOURS_SHARE,
                self.multi_gpu_hours_share,
                "frac",
            ),
            Comparison::new(
                "users with a multi-GPU job",
                paper::USERS_WITH_MULTI_GPU,
                self.users_with_multi_gpu,
                "frac",
            ),
            Comparison::new(
                "users with a ≥3-GPU job",
                paper::USERS_WITH_3_GPU,
                self.users_with_3_gpus,
                "frac",
            ),
            Comparison::new(
                "users with a ≥9-GPU job",
                paper::USERS_WITH_9_GPU,
                self.users_with_9_gpus,
                "frac",
            ),
            Comparison::new(
                "median wait, 1-GPU jobs",
                paper::WAIT_1GPU_MEDIAN_S,
                self.row(SizeBucket::One).median_wait_secs,
                "s",
            ),
        ]
    }

    /// Renders the panels as text.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Fig. 13 job sizes:\n  bucket      jobs%   GPU-hours%   median wait (s)\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "  {:<10} {:>6.2}  {:>10.2}  {:>8.1}\n",
                r.bucket.label(),
                r.job_share * 100.0,
                r.hours_share * 100.0,
                r.median_wait_secs
            ));
        }
        s.push_str(&format!(
            "  multi-GPU GPU-hour share: {:.1}%\n  users with multi-GPU job: {:.1}%; ≥3 GPUs: \
             {:.1}%; ≥9 GPUs: {:.1}%\n",
            self.multi_gpu_hours_share * 100.0,
            self.users_with_multi_gpu * 100.0,
            self.users_with_3_gpus * 100.0,
            self.users_with_9_gpus * 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{small_user_stats, small_views};

    #[test]
    fn buckets_partition_jobs_and_hours() {
        let views = small_views();
        let stats = small_user_stats();
        let fig = Fig13::compute(&views, &stats);
        let jobs: f64 = fig.rows.iter().map(|r| r.job_share).sum();
        let hours: f64 = fig.rows.iter().map(|r| r.hours_share).sum();
        assert!((jobs - 1.0).abs() < 1e-9);
        assert!((hours - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_gpu_dominates_jobs_but_not_hours() {
        let views = small_views();
        let stats = small_user_stats();
        let fig = Fig13::compute(&views, &stats);
        let single = fig.row(SizeBucket::One);
        assert!((single.job_share - 0.84).abs() < 0.06, "single share {}", single.job_share);
        // Multi-GPU jobs consume a disproportionate share of hours.
        assert!(
            fig.multi_gpu_hours_share > 1.5 * (1.0 - single.job_share),
            "multi hours {} vs multi jobs {}",
            fig.multi_gpu_hours_share,
            1.0 - single.job_share
        );
    }

    #[test]
    fn majority_of_users_touch_multi_gpu() {
        let views = small_views();
        let stats = small_user_stats();
        let fig = Fig13::compute(&views, &stats);
        assert!(fig.users_with_multi_gpu > 0.25, "{}", fig.users_with_multi_gpu);
        assert!(fig.users_with_9_gpus < fig.users_with_3_gpus);
        assert!(fig.users_with_3_gpus < fig.users_with_multi_gpu);
    }

    #[test]
    fn waits_do_not_grow_with_size() {
        let views = small_views();
        let stats = small_user_stats();
        let fig = Fig13::compute(&views, &stats);
        // "multi-GPU jobs … do not experience an increase in wait times
        // in proportion to their sizes" — all medians are tiny.
        for r in &fig.rows {
            assert!(r.median_wait_secs < 120.0, "{} wait {}", r.bucket.label(), r.median_wait_secs);
        }
        assert!(fig.render().contains("Fig. 13"));
        assert_eq!(fig.comparisons().len(), 7);
    }

    #[test]
    fn bucket_mapping() {
        assert_eq!(SizeBucket::of(1), SizeBucket::One);
        assert_eq!(SizeBucket::of(2), SizeBucket::Two);
        assert_eq!(SizeBucket::of(3), SizeBucket::ThreeToEight);
        assert_eq!(SizeBucket::of(8), SizeBucket::ThreeToEight);
        assert_eq!(SizeBucket::of(9), SizeBucket::NinePlus);
        assert_eq!(SizeBucket::of(32), SizeBucket::NinePlus);
    }
}
