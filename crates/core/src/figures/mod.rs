//! One module per figure of the paper's evaluation.
//!
//! Every module exposes a `FigXX` struct with a `compute` constructor
//! (pure function of the simulation output), a `render` method printing
//! the same rows/series the paper plots, and a `comparisons` method
//! returning paper-vs-measured rows for `EXPERIMENTS.md`.

pub mod classifier;
pub mod data_quality;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod goodput;
pub mod policy_ab;
pub mod reliability;
pub mod streaming;
pub mod timeline;

pub use classifier::ClassifierFig;
pub use data_quality::{DataQualityFig, DeltaRow};
pub use fig03::Fig3;
pub use fig04::Fig4;
pub use fig05::Fig5;
pub use fig06::Fig6;
pub use fig07::Fig7;
pub use fig08::Fig8;
pub use fig09::Fig9;
pub use fig10::Fig10;
pub use fig11::Fig11;
pub use fig12::Fig12;
pub use fig13::Fig13;
pub use fig14::Fig14;
pub use fig15::Fig15;
pub use fig16::Fig16;
pub use fig17::Fig17;
pub use goodput::GoodputFig;
pub use policy_ab::{PolicyAbFig, PolicyArm};
pub use reliability::{CheckpointSweepFig, GoodputFrontierFig, GrowthStudyFig, ReliabilitySizeFig};
pub use streaming::{StreamCheck, StreamingTelemetryFig};
pub use timeline::ClusterTimelineFig;
