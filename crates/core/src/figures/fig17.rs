//! Fig. 17 — per-user lifecycle structure: stacked job-mix and
//! GPU-hour-mix distributions.

use crate::paper::fig17 as paper;
use crate::report::Comparison;
use crate::userstats::UserStats;
use sc_stats::StatsError;

/// Per-user stacked mixes, sorted for the paper's presentation.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// Per-user job mixes `[mature, exploratory, development, IDE]`
    /// sorted ascending by mature share (Fig. 17a's x-axis).
    pub job_mixes: Vec<[f64; 4]>,
    /// Per-user GPU-hour mixes, sorted ascending by mature share
    /// (Fig. 17b).
    pub hour_mixes: Vec<[f64; 4]>,
    /// Fraction of users whose mature job share is below 40%.
    pub users_mature_below_40: f64,
    /// Fraction of users for whom non-mature jobs consume over 60% of
    /// their GPU hours.
    pub users_nonmature_hours_above_60: f64,
}

impl Fig17 {
    /// Computes the figure from per-user statistics.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    pub fn compute(stats: &[UserStats]) -> Self {
        match Self::try_compute(stats) {
            Ok(fig) => fig,
            Err(e) => panic!("fig17: {e}"),
        }
    }

    /// Computes the figure, returning a typed error when `stats` is
    /// empty instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `stats` is empty.
    pub fn try_compute(stats: &[UserStats]) -> Result<Self, StatsError> {
        if stats.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut job_mixes: Vec<[f64; 4]> = stats.iter().map(|s| s.class_job_mix).collect();
        let mut hour_mixes: Vec<[f64; 4]> = stats.iter().map(|s| s.class_hours_mix).collect();
        job_mixes.sort_by(|a, b| a[0].total_cmp(&b[0]));
        hour_mixes.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let n = stats.len() as f64;
        let below_40 = job_mixes.iter().filter(|m| m[0] < 0.40).count() as f64 / n;
        let nonmature_60 = hour_mixes.iter().filter(|m| (1.0 - m[0]) > 0.60).count() as f64 / n;
        Ok(Fig17 {
            job_mixes,
            hour_mixes,
            users_mature_below_40: below_40,
            users_nonmature_hours_above_60: nonmature_60,
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "users with <40% mature jobs",
                paper::USERS_MATURE_BELOW_40PCT,
                self.users_mature_below_40,
                "frac",
            ),
            Comparison::new(
                "users with >60% non-mature GPU hours",
                paper::USERS_NONMATURE_HOURS_ABOVE_60PCT,
                self.users_nonmature_hours_above_60,
                "frac",
            ),
        ]
    }

    /// Renders deciles of the stacked distributions as text.
    pub fn render(&self) -> String {
        let decile = |mixes: &[[f64; 4]], q: f64| -> [f64; 4] {
            let idx = ((mixes.len() - 1) as f64 * q) as usize;
            mixes[idx]
        };
        let fmt = |m: [f64; 4]| {
            format!(
                "mature {:>4.1}% expl {:>4.1}% dev {:>4.1}% IDE {:>4.1}%",
                m[0] * 100.0,
                m[1] * 100.0,
                m[2] * 100.0,
                m[3] * 100.0
            )
        };
        let mut s = String::from("Fig. 17(a) per-user job mix (users sorted by mature share):\n");
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            s.push_str(&format!("  p{:>2.0}: {}\n", q * 100.0, fmt(decile(&self.job_mixes, q))));
        }
        s.push_str("Fig. 17(b) per-user GPU-hour mix:\n");
        for q in [0.1, 0.3, 0.5, 0.7, 0.9] {
            s.push_str(&format!("  p{:>2.0}: {}\n", q * 100.0, fmt(decile(&self.hour_mixes, q))));
        }
        s.push_str(&format!(
            "  users with <40% mature jobs: {:.1}%; users with >60% non-mature GPU hours: {:.1}%\n",
            self.users_mature_below_40 * 100.0,
            self.users_nonmature_hours_above_60 * 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_user_stats;

    #[test]
    fn mixes_sorted_and_normalized() {
        let stats = small_user_stats();
        let fig = Fig17::compute(&stats);
        for w in fig.job_mixes.windows(2) {
            assert!(w[0][0] <= w[1][0] + 1e-12);
        }
        for m in &fig.job_mixes {
            let total: f64 = m.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn many_users_are_mostly_non_mature() {
        let stats = small_user_stats();
        let fig = Fig17::compute(&stats);
        // Paper: >50% of users below 40% mature; we require a clear
        // plurality under small-sample noise.
        assert!(fig.users_mature_below_40 > 0.30, "{}", fig.users_mature_below_40);
        assert!(
            fig.users_nonmature_hours_above_60 > 0.20,
            "{}",
            fig.users_nonmature_hours_above_60
        );
    }

    #[test]
    fn render_shows_both_panels() {
        let stats = small_user_stats();
        let text = Fig17::compute(&stats).render();
        assert!(text.contains("Fig. 17(a)"));
        assert!(text.contains("Fig. 17(b)"));
    }
}
