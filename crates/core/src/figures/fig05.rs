//! Fig. 5 — SM and memory utilization by submission interface
//! (map-reduce, batch, interactive, other).

use crate::paper::interfaces as paper;
use crate::report::Comparison;
use crate::view::GpuJobView;
use sc_stats::{BoxStats, StatsError};
use sc_telemetry::record::SubmissionInterface;

/// Per-interface utilization box plots plus the interface job mix.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// `(interface, SM box, memory box, job share)` rows in Fig. 5 order.
    pub rows: Vec<InterfaceRow>,
}

/// One interface's statistics.
#[derive(Debug, Clone)]
pub struct InterfaceRow {
    /// The interface.
    pub interface: SubmissionInterface,
    /// Share of all GPU jobs submitted via this interface.
    pub job_share: f64,
    /// SM-utilization box plot (Fig. 5a).
    pub sm: BoxStats,
    /// Memory-utilization box plot (Fig. 5b).
    pub mem: BoxStats,
}

impl Fig5 {
    /// Computes the figure from GPU-job views.
    ///
    /// # Panics
    ///
    /// Panics if any interface has no jobs at all (the calibrated trace
    /// always populates all four).
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig5: {e}"),
        }
    }

    /// Computes the figure, returning a typed error when an interface
    /// has no jobs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when any interface has no
    /// jobs at all.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        let total = views.len().max(1) as f64;
        let mut rows = Vec::with_capacity(SubmissionInterface::ALL.len());
        for &interface in SubmissionInterface::ALL.iter() {
            let sm: Vec<f64> = views
                .iter()
                .filter(|v| v.sched.interface == interface)
                .map(|v| v.agg.sm_util.mean)
                .collect();
            let mem: Vec<f64> = views
                .iter()
                .filter(|v| v.sched.interface == interface)
                .map(|v| v.agg.mem_util.mean)
                .collect();
            rows.push(InterfaceRow {
                interface,
                job_share: sm.len() as f64 / total,
                sm: BoxStats::from_sample(&sm)?,
                mem: BoxStats::from_sample(&mem)?,
            });
        }
        Ok(Fig5 { rows })
    }

    /// The row for one interface.
    ///
    /// # Panics
    ///
    /// Panics if the interface is missing (cannot happen after
    /// construction).
    pub fn row(&self, interface: SubmissionInterface) -> &InterfaceRow {
        self.rows.iter().find(|r| r.interface == interface).expect("all interfaces present")
    }

    /// Paper-vs-measured rows (interface mix from Sec. III).
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "map-reduce job share",
                paper::MAP_REDUCE,
                self.row(SubmissionInterface::MapReduce).job_share,
                "frac",
            ),
            Comparison::new(
                "batch job share",
                paper::BATCH,
                self.row(SubmissionInterface::Batch).job_share,
                "frac",
            ),
            Comparison::new(
                "interactive job share",
                paper::INTERACTIVE,
                self.row(SubmissionInterface::Interactive).job_share,
                "frac",
            ),
            Comparison::new(
                "other job share",
                paper::OTHER,
                self.row(SubmissionInterface::Other).job_share,
                "frac",
            ),
        ]
    }

    /// Renders both panels as text box plots.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 5(a) SM utilization by interface:\n");
        for r in &self.rows {
            s.push_str(&format!("  {:<12} {}\n", r.interface.to_string(), r.sm.render()));
        }
        s.push_str("Fig. 5(b) memory utilization by interface:\n");
        for r in &self.rows {
            s.push_str(&format!("  {:<12} {}\n", r.interface.to_string(), r.mem.render()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn other_jobs_have_highest_utilization() {
        let views = small_views();
        let fig = Fig5::compute(&views);
        // "these 'other' jobs have the highest SM and memory utilization
        // … map-reduce and interactive jobs tend to have low SM and
        // memory utilization."
        let other = fig.row(SubmissionInterface::Other);
        let mr = fig.row(SubmissionInterface::MapReduce);
        let inter = fig.row(SubmissionInterface::Interactive);
        // Map-reduce is ~1% of jobs, so its small-sample median is noisy;
        // require the ordering with slack there and strictly elsewhere.
        assert!(
            other.sm.median >= 0.5 * mr.sm.median,
            "other {} vs mr {}",
            other.sm.median,
            mr.sm.median
        );
        assert!(other.sm.median >= inter.sm.median);
    }

    #[test]
    fn interface_mix_matches_sec3() {
        let views = small_views();
        let fig = Fig5::compute(&views);
        let other = fig.row(SubmissionInterface::Other).job_share;
        assert!((other - 0.65).abs() < 0.12, "other share {other}");
        let shares: f64 = fig.rows.iter().map(|r| r.job_share).sum();
        assert!((shares - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_lists_all_interfaces() {
        let views = small_views();
        let text = Fig5::compute(&views).render();
        for label in ["map-reduce", "batch", "interactive", "other"] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
