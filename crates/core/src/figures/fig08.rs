//! Fig. 8 — single- and two-resource bottleneck fractions.

use crate::paper::fig8 as paper;
use crate::report::Comparison;
use crate::view::GpuJobView;
use sc_stats::StatsError;
use sc_telemetry::metrics::GpuResource;
use sc_telemetry::phases::is_bottlenecked;

/// Fig. 8(a): fraction of jobs hitting each resource's ceiling;
/// Fig. 8(b): fractions for every resource pair.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// `(resource, fraction)` single-resource bars.
    pub singles: Vec<(GpuResource, f64)>,
    /// `(resource A, resource B, fraction)` pair bars (A < B in
    /// [`GpuResource::UTILIZATION`] order).
    pub pairs: Vec<(GpuResource, GpuResource, f64)>,
}

impl Fig8 {
    /// Computes both panels from the job views' max aggregates.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig8: {e}"),
        }
    }

    /// Computes both panels, returning a typed error for an empty view
    /// set instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `views` is empty.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        if views.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = views.len() as f64;
        let hit = |v: &GpuJobView, r: GpuResource| is_bottlenecked(v.agg.resource(r).max, r);
        let singles = GpuResource::UTILIZATION
            .iter()
            .map(|&r| (r, views.iter().filter(|v| hit(v, r)).count() as f64 / n))
            .collect();
        let mut pairs = Vec::new();
        let rs = GpuResource::UTILIZATION;
        for i in 0..rs.len() {
            for j in i + 1..rs.len() {
                let f = views.iter().filter(|v| hit(v, rs[i]) && hit(v, rs[j])).count() as f64 / n;
                pairs.push((rs[i], rs[j], f));
            }
        }
        Ok(Fig8 { singles, pairs })
    }

    /// The fraction for one pair, order-insensitive.
    pub fn pair(&self, a: GpuResource, b: GpuResource) -> f64 {
        self.pairs
            .iter()
            .find(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|(_, _, f)| *f)
            .unwrap_or(0.0)
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        let max_pair = self.pairs.iter().map(|(_, _, f)| *f).fold(0.0, f64::max);
        vec![
            Comparison::new(
                "PCIe-Rx ∧ SM bottleneck",
                paper::RX_AND_SM_FRACTION,
                self.pair(GpuResource::PcieRx, GpuResource::Sm),
                "frac",
            ),
            Comparison::new(
                "largest two-resource bottleneck",
                paper::ANY_PAIR_MAX_FRACTION,
                max_pair,
                "frac",
            ),
        ]
    }

    /// Renders both panels as text bars.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 8(a) single-resource bottleneck fractions:\n");
        for (r, f) in &self.singles {
            s.push_str(&format!("  {:<8} {:.1}%\n", r.to_string(), f * 100.0));
        }
        s.push_str("Fig. 8(b) two-resource bottleneck fractions:\n");
        for (a, b, f) in &self.pairs {
            s.push_str(&format!(
                "  {:<8} ∧ {:<8} {:.2}%\n",
                a.to_string(),
                b.to_string(),
                f * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn pairs_never_exceed_their_singles() {
        let views = small_views();
        let fig = Fig8::compute(&views);
        for (a, b, f) in &fig.pairs {
            let fa = fig.singles.iter().find(|(r, _)| r == a).unwrap().1;
            let fb = fig.singles.iter().find(|(r, _)| r == b).unwrap().1;
            assert!(*f <= fa + 1e-12 && *f <= fb + 1e-12);
        }
    }

    #[test]
    fn every_pair_is_a_minority() {
        let views = small_views();
        let fig = Fig8::compute(&views);
        // "jobs experiencing any two or more resource bottlenecks during
        // the same run are less than 10%" (with slack for small samples).
        for (_, _, f) in &fig.pairs {
            assert!(*f < 0.2, "pair fraction {f}");
        }
    }

    #[test]
    fn rx_sm_pair_is_the_largest_involving_sm() {
        let views = small_views();
        let fig = Fig8::compute(&views);
        let rx_sm = fig.pair(GpuResource::PcieRx, GpuResource::Sm);
        let mem_sm = fig.pair(GpuResource::Memory, GpuResource::Sm);
        assert!(rx_sm >= mem_sm, "rx∧sm {rx_sm} vs mem∧sm {mem_sm}");
    }

    #[test]
    fn render_has_ten_pairs() {
        let views = small_views();
        let fig = Fig8::compute(&views);
        assert_eq!(fig.pairs.len(), 10);
        assert_eq!(fig.singles.len(), 5);
        assert!(fig.render().contains("∧"));
    }
}
