//! Reliability at scale — the job-size-aware figure family.
//!
//! Not figures of the HPCA 2022 paper: the Supercloud window saw too
//! few hardware deaths to resolve a size dependence. These carry the
//! analysis of "Revisiting Reliability in Large-Scale ML Research
//! Clusters" (arXiv 2410.21680) onto the simulated fleet: failure
//! rates and recovery cost by job-size class, the goodput frontier as
//! jobs grow, and a checkpoint-interval sweep against the Young/Daly
//! analytic optimum.
//!
//! The per-run figure ([`ReliabilitySizeFig`]) computes from one
//! [`SimOutput`]; the frontier, sweep, and growth figures are built by
//! the [`crate::reliability`] study driver, which runs the event loop
//! once per grid point and hands the assembled rows here.

use sc_cluster::SimOutput;
use sc_stats::StatsError;

/// Reliability metrics for one job-size class.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRow {
    /// Class label (e.g. `"3-8 GPU"`).
    pub label: String,
    /// Distinct jobs in the class.
    pub jobs: u64,
    /// Attempts started.
    pub attempts: u64,
    /// Attempts killed by an injected failure.
    pub failures: u64,
    /// Failure rate per 1000 GPU-days of exposure.
    pub failures_per_1k_gpu_days: f64,
    /// Mean wall-clock hours between failures; `None` without failures.
    pub ettf_hours: Option<f64>,
    /// Mean kill-to-restart minutes; `None` without recoveries.
    pub ettr_minutes: Option<f64>,
    /// Mean GPU-hours discarded per failure; `None` without failures.
    pub restart_overhead_gpu_hours: Option<f64>,
    /// Useful / exposed GPU time; `None` without GPU exposure.
    pub goodput_fraction: Option<f64>,
}

/// Reliability-vs-job-size curves: the per-class ETTF/ETTR, failure
/// rate, and restart overhead of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilitySizeFig {
    /// One row per size class, smallest first.
    pub rows: Vec<SizeRow>,
}

impl ReliabilitySizeFig {
    /// Computes the figure from a simulation output.
    ///
    /// # Panics
    ///
    /// Panics if the output has no job fates (an empty trace).
    pub fn compute(out: &SimOutput) -> Self {
        Self::try_compute(out).expect("non-empty simulation output")
    }

    /// Fallible form of [`ReliabilitySizeFig::compute`].
    pub fn try_compute(out: &SimOutput) -> Result<Self, StatsError> {
        if out.fates.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let rel = &out.reliability;
        let rows = rel
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| SizeRow {
                label: rel.label(i),
                jobs: b.jobs,
                attempts: b.attempts,
                failures: b.failures,
                failures_per_1k_gpu_days: b.failures_per_1k_gpu_days(),
                ettf_hours: b.ettf_secs().map(|s| s / 3600.0),
                ettr_minutes: b.ettr_secs().map(|s| s / 60.0),
                restart_overhead_gpu_hours: b.restart_overhead_gpu_secs().map(|s| s / 3600.0),
                goodput_fraction: b.goodput_fraction(),
            })
            .collect();
        Ok(ReliabilitySizeFig { rows })
    }

    /// Text rendering of the per-class table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Reliability vs job size (per size class)\n");
        s.push_str(
            "  class      jobs  attempts  failures  per-1k-gpu-days   ettf-h  ettr-min  lost/fail-gpu-h  goodput\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "  {:<9} {:>5} {:>9} {:>9} {:>16.3} {} {} {} {}\n",
                r.label,
                r.jobs,
                r.attempts,
                r.failures,
                r.failures_per_1k_gpu_days,
                opt(r.ettf_hours, 8, 2),
                opt(r.ettr_minutes, 9, 2),
                opt(r.restart_overhead_gpu_hours, 16, 3),
                opt(r.goodput_fraction, 8, 4),
            ));
        }
        s
    }
}

/// Goodput at one MTBF setting, across the size classes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRow {
    /// MTBF scale factor applied to the failure model (1.0 = baseline;
    /// smaller = less reliable fleet).
    pub mtbf_factor: f64,
    /// Per-class goodput fraction; `None` for classes with no GPU
    /// exposure in the trace.
    pub goodput_by_class: Vec<Option<f64>>,
    /// Whole-fleet goodput fraction at this setting.
    pub overall: f64,
}

/// The goodput frontier: goodput fraction vs job GPU-count at several
/// MTBF settings — how fast large jobs fall off the cliff as the fleet
/// degrades.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputFrontierFig {
    /// Size-class labels, smallest first.
    pub class_labels: Vec<String>,
    /// Representative GPU count per class (the x-axis of the frontier).
    pub class_gpus: Vec<u32>,
    /// One row per MTBF setting, in sweep order.
    pub rows: Vec<FrontierRow>,
}

impl GoodputFrontierFig {
    /// Assembles the frontier from study-driver rows.
    pub fn try_new(
        class_labels: Vec<String>,
        class_gpus: Vec<u32>,
        rows: Vec<FrontierRow>,
    ) -> Result<Self, StatsError> {
        if rows.is_empty() || class_labels.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        Ok(GoodputFrontierFig { class_labels, class_gpus, rows })
    }

    /// Largest increase in goodput from one size class to the next
    /// larger one, across all MTBF settings. The frontier should be
    /// non-increasing in job size (bigger jobs expose more hardware),
    /// so this is ~0 up to sampling noise; the bench gate puts a
    /// ceiling on it.
    pub fn monotone_violation(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for row in &self.rows {
            let populated: Vec<f64> = row.goodput_by_class.iter().filter_map(|g| *g).collect();
            for w in populated.windows(2) {
                worst = worst.max(w[1] - w[0]);
            }
        }
        worst
    }

    /// Text rendering: one line per MTBF setting, one column per class.
    pub fn render(&self) -> String {
        let headers: Vec<String> = self
            .class_labels
            .iter()
            .zip(&self.class_gpus)
            .map(|(l, g)| format!("{l}(~{g}g)"))
            .collect();
        let mut s = String::new();
        s.push_str("Goodput frontier (goodput fraction vs job size, per MTBF setting)\n");
        s.push_str("  mtbf-factor");
        for h in &headers {
            s.push_str("  ");
            s.push_str(h);
        }
        s.push_str("  overall\n");
        for row in &self.rows {
            s.push_str(&format!("  {:>11.3}", row.mtbf_factor));
            for (g, h) in row.goodput_by_class.iter().zip(&headers) {
                let width = h.len();
                match g {
                    Some(v) => s.push_str(&format!("  {v:>width$.4}")),
                    None => s.push_str(&format!("  {:>width$}", "-")),
                }
            }
            s.push_str(&format!("  {:>7.4}\n", row.overall));
        }
        s
    }
}

/// Goodput at one checkpoint interval of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Checkpoint interval, seconds.
    pub interval_secs: f64,
    /// Whole-fleet goodput fraction at this interval.
    pub overall_goodput: f64,
    /// Per-class goodput fraction; `None` for unexposed classes.
    pub goodput_by_class: Vec<Option<f64>>,
    /// GPU-hours lost to failures at this interval.
    pub lost_gpu_hours: f64,
    /// GPU-hours spent writing checkpoints at this interval.
    pub write_gpu_hours: f64,
}

/// Simulated-vs-analytic verdict for one size class.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepClassVerdict {
    /// Class label.
    pub label: String,
    /// Representative GPU count the analytic optimum was computed for.
    pub gpus: u32,
    /// Young/Daly analytic optimum `sqrt(2 * write * MTTI)`, seconds,
    /// using the class's footprint-scaled MTTI.
    pub analytic_secs: f64,
    /// Grid interval that maximized the class's simulated goodput
    /// (smallest on ties); `None` when the class never registered GPU
    /// exposure.
    pub simulated_secs: Option<f64>,
}

impl SweepClassVerdict {
    /// `simulated / analytic`, when both exist and are positive.
    pub fn ratio(&self) -> Option<f64> {
        match self.simulated_secs {
            Some(sim) if self.analytic_secs > 0.0 => Some(sim / self.analytic_secs),
            _ => None,
        }
    }
}

/// The checkpoint-interval sweep: the event loop run at a grid of
/// intervals around the Young/Daly optimum, with the per-size-class
/// simulated optimum overlaid on the analytic prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSweepFig {
    /// One row per grid interval, ascending.
    pub rows: Vec<SweepRow>,
    /// Per-class verdicts, smallest class first.
    pub classes: Vec<SweepClassVerdict>,
}

impl CheckpointSweepFig {
    /// Assembles the sweep from study-driver rows.
    pub fn try_new(
        rows: Vec<SweepRow>,
        classes: Vec<SweepClassVerdict>,
    ) -> Result<Self, StatsError> {
        if rows.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        Ok(CheckpointSweepFig { rows, classes })
    }

    /// Worst simulated/analytic disagreement across classes with a
    /// verdict: `max(ratio, 1/ratio)`. `None` when no class produced
    /// both numbers. The bench gate bounds this by the grid span — the
    /// simulated optimum must land within the decade the analytic
    /// formula predicts.
    pub fn worst_ratio(&self) -> Option<f64> {
        self.classes
            .iter()
            .filter_map(|c| c.ratio())
            .map(|r| r.max(1.0 / r))
            .fold(None, |acc: Option<f64>, r| Some(acc.map_or(r, |a| a.max(r))))
    }

    /// Text rendering: the grid table, then per-class verdicts.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Checkpoint-interval sweep (Young/Daly overlay)\n");
        s.push_str("  interval-s  goodput  lost-gpu-h  write-gpu-h\n");
        for r in &self.rows {
            s.push_str(&format!(
                "  {:>10.0} {:>8.4} {:>11.1} {:>12.1}\n",
                r.interval_secs, r.overall_goodput, r.lost_gpu_hours, r.write_gpu_hours
            ));
        }
        s.push_str("  per size class: simulated optimum vs Young/Daly analytic\n");
        for c in &self.classes {
            let sim = match c.simulated_secs {
                Some(v) => format!("{v:.0}s"),
                None => "-".to_string(),
            };
            let ratio = match c.ratio() {
                Some(r) => format!("{r:.2}x"),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "    {:<9} analytic {:>7.0}s  simulated {:>8}  ratio {:>6}\n",
                c.label, c.analytic_secs, sim, ratio
            ));
        }
        s
    }
}

/// One cluster-growth study point: the same workload replayed on a
/// scaled-up fleet. Only deterministic metrics — wall-clock throughput
/// lives in the bench JSON, not the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthRow {
    /// Fleet scale factor relative to the Table I cluster.
    pub factor: f64,
    /// GPU nodes at this scale.
    pub nodes: u32,
    /// GPUs at this scale.
    pub gpus: u32,
    /// Median queue wait across all jobs, seconds.
    pub median_wait_secs: f64,
    /// Mean queue wait across all jobs, seconds.
    pub mean_wait_secs: f64,
    /// Whole-fleet goodput fraction.
    pub goodput_fraction: f64,
    /// Simulated makespan, days.
    pub makespan_days: f64,
    /// Events the loop processed (scale proxy for work done).
    pub events: u64,
}

/// The cluster-growth study: queue wait, goodput, and event-loop load
/// as the same workload replays on 2x/8x/32x the Table I fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthStudyFig {
    /// One row per growth factor, ascending.
    pub rows: Vec<GrowthRow>,
}

impl GrowthStudyFig {
    /// Assembles the study from driver rows.
    pub fn try_new(rows: Vec<GrowthRow>) -> Result<Self, StatsError> {
        if rows.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        Ok(GrowthStudyFig { rows })
    }

    /// Text rendering of the growth table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Cluster-growth study (same workload, scaled fleet)\n");
        s.push_str(
            "  factor  nodes   gpus  median-wait-s  mean-wait-s  goodput  makespan-d    events\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "  {:>6.1} {:>6} {:>6} {:>14.1} {:>12.1} {:>8.4} {:>11.2} {:>9}\n",
                r.factor,
                r.nodes,
                r.gpus,
                r.median_wait_secs,
                r.mean_wait_secs,
                r.goodput_fraction,
                r.makespan_days,
                r.events
            ));
        }
        s
    }
}

fn opt(v: Option<f64>, width: usize, prec: usize) -> String {
    match v {
        Some(v) => format!("{v:>width$.prec$}"),
        None => format!("{:>width$}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;
    use sc_cluster::{FailureModel, SimConfig, Simulation};
    use sc_workload::{Trace, WorkloadSpec};

    #[test]
    fn size_fig_computes_on_failure_free_runs() {
        let out = small_sim();
        let fig = ReliabilitySizeFig::compute(out);
        assert!(!fig.rows.is_empty());
        let text = fig.render();
        assert!(text.contains("Reliability vs job size"));
        // Failure-free run: trace hardware victims are the only deaths.
        let total_jobs: u64 = fig.rows.iter().map(|r| r.jobs).sum();
        assert_eq!(total_jobs as usize, out.fates.len());
    }

    #[test]
    fn size_fig_shows_rate_growth_under_injection() {
        let spec = WorkloadSpec::supercloud().scaled(0.01);
        let trace = Trace::generate(&spec, 2);
        let out = Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: Some(FailureModel::supercloud(2).scaled_mtbf(0.05)),
            ..Default::default()
        })
        .run(&trace);
        let fig = ReliabilitySizeFig::compute(&out);
        assert!(fig.rows.iter().any(|r| r.failures > 0), "stress run must fail jobs");
        assert!(fig.render().contains("per-1k-gpu-days"));
    }

    #[test]
    fn frontier_detects_monotone_violations() {
        let mk = |g: Vec<Option<f64>>, f: f64| FrontierRow {
            mtbf_factor: f,
            goodput_by_class: g,
            overall: 0.9,
        };
        let fig = GoodputFrontierFig::try_new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![1, 2, 8],
            vec![
                mk(vec![Some(0.99), Some(0.97), Some(0.90)], 1.0),
                mk(vec![Some(0.95), None, Some(0.97)], 0.1),
            ],
        )
        .unwrap();
        // Second row skips the unexposed class: 0.95 -> 0.97 violates.
        assert!((fig.monotone_violation() - 0.02).abs() < 1e-9);
        assert!(fig.render().contains("mtbf-factor"));
        assert!(GoodputFrontierFig::try_new(vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn sweep_worst_ratio_is_symmetric() {
        let rows = vec![SweepRow {
            interval_secs: 600.0,
            overall_goodput: 0.9,
            goodput_by_class: vec![Some(0.9)],
            lost_gpu_hours: 1.0,
            write_gpu_hours: 0.5,
        }];
        let classes = vec![
            SweepClassVerdict {
                label: "small".into(),
                gpus: 1,
                analytic_secs: 1200.0,
                simulated_secs: Some(600.0),
            },
            SweepClassVerdict {
                label: "big".into(),
                gpus: 16,
                analytic_secs: 200.0,
                simulated_secs: Some(600.0),
            },
            SweepClassVerdict {
                label: "empty".into(),
                gpus: 2,
                analytic_secs: 900.0,
                simulated_secs: None,
            },
        ];
        let fig = CheckpointSweepFig::try_new(rows, classes).unwrap();
        // Ratios 0.5 and 3.0 -> symmetric worst is 3.0.
        assert!((fig.worst_ratio().unwrap() - 3.0).abs() < 1e-9);
        let text = fig.render();
        assert!(text.contains("Young/Daly"));
        assert!(text.contains("ratio"));
        assert!(CheckpointSweepFig::try_new(vec![], vec![]).is_err());
    }

    #[test]
    fn growth_fig_renders_rows() {
        let fig = GrowthStudyFig::try_new(vec![GrowthRow {
            factor: 2.0,
            nodes: 448,
            gpus: 896,
            median_wait_secs: 3.0,
            mean_wait_secs: 40.0,
            goodput_fraction: 0.98,
            makespan_days: 125.0,
            events: 123_456,
        }])
        .unwrap();
        let text = fig.render();
        assert!(text.contains("Cluster-growth study"));
        assert!(text.contains("896"));
        assert!(GrowthStudyFig::try_new(vec![]).is_err());
    }
}
