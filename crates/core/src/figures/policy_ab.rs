//! Policy A/B what-if deltas — the closed-loop extension.
//!
//! Not a figure of the HPCA 2022 paper: the paper's opportunity
//! analyses (power capping, GPU sharing, tiering) are offline
//! what-ifs over the measured dataset. This figure reports the
//! *closed-loop* counterpart: the same trace replayed twice through
//! the simulator — once as the production baseline, once with a
//! scheduling policy riding in the event loop — and the deltas the
//! policy actually produced in queue waits, goodput, energy, and
//! throughput.

use sc_cluster::SimOutput;
use sc_stats::StatsError;
use sc_telemetry::gpu_power::gpu_energy_kwh;
use sc_telemetry::record::ExitStatus;

/// One arm's scalar outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyArm {
    /// Arm label ("baseline" or the policy's label).
    pub label: String,
    /// Mean queue wait over all jobs, seconds.
    pub mean_queue_wait_secs: f64,
    /// 95th-percentile queue wait, seconds.
    pub p95_queue_wait_secs: f64,
    /// Goodput fraction of the ledger (`useful / allocated`).
    pub goodput_fraction: f64,
    /// Useful GPU-hours delivered (all attempts).
    pub useful_gpu_hours: f64,
    /// Integrated GPU board energy over every analyzed job, kWh. With
    /// a power-cap policy the capped telemetry makes this drop even
    /// though runs stretch.
    pub energy_kwh: f64,
    /// Completed (successful) jobs per simulated day.
    pub jobs_per_day: f64,
    /// Jobs that completed successfully.
    pub completed_jobs: usize,
    /// Jobs reaped at their wall-clock limit.
    pub timeout_jobs: usize,
    /// Peak concurrent GPUs in use.
    pub peak_gpus: u32,
    /// Jobs placed on the slow tier.
    pub slow_tier_jobs: usize,
    /// Policy cap-throttle decisions.
    pub cap_throttles: u64,
    /// Policy co-share placements.
    pub coshares: u64,
    /// Policy tier-route decisions.
    pub tier_routes: u64,
}

impl PolicyArm {
    /// Computes one arm's scalars from a simulation output.
    ///
    /// # Panics
    ///
    /// Panics if the output has no records (an empty trace).
    pub fn compute(label: &str, out: &SimOutput) -> Self {
        match Self::try_compute(label, out) {
            Ok(arm) => arm,
            Err(e) => panic!("policy arm: {e}"),
        }
    }

    /// Computes one arm's scalars, returning a typed error for an
    /// empty trace instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when the output has no
    /// records.
    pub fn try_compute(label: &str, out: &SimOutput) -> Result<Self, StatsError> {
        let records = out.dataset.records();
        if records.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut waits: Vec<f64> = records.iter().map(|r| r.sched.queue_wait()).collect();
        waits.sort_by(|a, b| a.total_cmp(b));
        let mean_wait = waits.iter().sum::<f64>() / waits.len() as f64;
        let p95 = waits[((waits.len() - 1) as f64 * 0.95) as usize];
        let energy_kwh = records
            .iter()
            .filter_map(|r| r.gpu.as_ref().map(|g| gpu_energy_kwh(&g.per_gpu, r.sched.run_time())))
            .sum();
        let completed = records.iter().filter(|r| r.sched.exit == ExitStatus::Completed).count();
        let timeouts = records.iter().filter(|r| r.sched.exit == ExitStatus::Timeout).count();
        let days = (out.stats.makespan_secs / 86_400.0).max(1e-9);
        Ok(PolicyArm {
            label: label.to_string(),
            mean_queue_wait_secs: mean_wait,
            p95_queue_wait_secs: p95,
            goodput_fraction: out.goodput.goodput_fraction(),
            useful_gpu_hours: out.goodput.useful_gpu_secs / 3600.0,
            energy_kwh,
            jobs_per_day: completed as f64 / days,
            completed_jobs: completed,
            timeout_jobs: timeouts,
            peak_gpus: out.stats.peak_gpus_in_use,
            slow_tier_jobs: out.stats.slow_tier_jobs,
            cap_throttles: out.stats.policy_cap_throttles,
            coshares: out.stats.policy_coshares,
            tier_routes: out.stats.policy_tier_routes,
        })
    }
}

/// The A/B comparison: one trace, two arms.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyAbFig {
    /// The policy label (e.g. `powercap:250`).
    pub policy_name: String,
    /// The no-policy arm.
    pub baseline: PolicyArm,
    /// The policy arm.
    pub policy: PolicyArm,
}

/// Percent change of `b` over `a` (0 when `a` is ~zero).
fn pct_delta(a: f64, b: f64) -> f64 {
    if a.abs() < 1e-12 {
        0.0
    } else {
        (b - a) / a * 100.0
    }
}

impl PolicyAbFig {
    /// Computes the deltas from two runs of the same trace.
    pub fn compute(policy_name: &str, baseline: &SimOutput, policy: &SimOutput) -> Self {
        PolicyAbFig {
            policy_name: policy_name.to_string(),
            baseline: PolicyArm::compute("baseline", baseline),
            policy: PolicyArm::compute(policy_name, policy),
        }
    }

    /// `(metric, baseline, policy, delta%)` rows for the scalar metrics.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64, f64)> {
        let (a, b) = (&self.baseline, &self.policy);
        vec![
            (
                "mean queue wait (s)",
                a.mean_queue_wait_secs,
                b.mean_queue_wait_secs,
                pct_delta(a.mean_queue_wait_secs, b.mean_queue_wait_secs),
            ),
            (
                "p95 queue wait (s)",
                a.p95_queue_wait_secs,
                b.p95_queue_wait_secs,
                pct_delta(a.p95_queue_wait_secs, b.p95_queue_wait_secs),
            ),
            (
                "goodput fraction",
                a.goodput_fraction,
                b.goodput_fraction,
                pct_delta(a.goodput_fraction, b.goodput_fraction),
            ),
            (
                "useful GPU-hours",
                a.useful_gpu_hours,
                b.useful_gpu_hours,
                pct_delta(a.useful_gpu_hours, b.useful_gpu_hours),
            ),
            ("GPU energy (kWh)", a.energy_kwh, b.energy_kwh, pct_delta(a.energy_kwh, b.energy_kwh)),
            (
                "completed jobs/day",
                a.jobs_per_day,
                b.jobs_per_day,
                pct_delta(a.jobs_per_day, b.jobs_per_day),
            ),
            (
                "peak GPUs in use",
                a.peak_gpus as f64,
                b.peak_gpus as f64,
                pct_delta(a.peak_gpus as f64, b.peak_gpus as f64),
            ),
        ]
    }

    /// Renders the delta table as text.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Policy A/B — baseline vs {} (same trace, same seed):\n  \
             metric               baseline      policy     delta\n",
            self.policy_name
        );
        for (name, a, b, d) in self.rows() {
            s.push_str(&format!("  {name:<20} {a:>9.2}  {b:>9.2}  {d:>+7.1}%\n"));
        }
        s.push_str(&format!(
            "  completed/timeout jobs: {}/{} -> {}/{}; slow-tier jobs: {} -> {}\n",
            self.baseline.completed_jobs,
            self.baseline.timeout_jobs,
            self.policy.completed_jobs,
            self.policy.timeout_jobs,
            self.baseline.slow_tier_jobs,
            self.policy.slow_tier_jobs,
        ));
        s.push_str(&format!(
            "  policy decisions: cap_throttle={} coshare_place={} tier_route={}\n",
            self.policy.cap_throttles, self.policy.coshares, self.policy.tier_routes
        ));
        s
    }

    /// The delta bar chart as an SVG document.
    pub fn to_svg(&self) -> String {
        let bars: Vec<(String, f64)> =
            self.rows().iter().map(|(name, _, _, d)| (name.to_string(), *d)).collect();
        crate::svg::bar_chart(
            &format!("Policy A/B deltas: {} vs baseline", self.policy_name),
            "delta vs baseline (%)",
            &bars,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn identical_arms_have_zero_deltas() {
        let out = small_sim();
        let fig = PolicyAbFig::compute("off", out, out);
        for (name, _, _, d) in fig.rows() {
            assert_eq!(d, 0.0, "{name} delta must be zero for identical arms");
        }
        let text = fig.render();
        assert!(text.contains("baseline vs off"));
        assert!(text.contains("mean queue wait"));
        assert!(fig.to_svg().contains("<svg"));
    }

    #[test]
    fn arm_scalars_are_sane() {
        let arm = PolicyArm::compute("baseline", small_sim());
        assert!(arm.mean_queue_wait_secs >= 0.0);
        assert!(arm.p95_queue_wait_secs >= arm.mean_queue_wait_secs * 0.0);
        assert!(arm.goodput_fraction > 0.0 && arm.goodput_fraction <= 1.0);
        assert!(arm.energy_kwh > 0.0, "GPU jobs must integrate energy");
        assert!(arm.completed_jobs > 0);
        assert!(arm.jobs_per_day > 0.0);
        assert_eq!(arm.cap_throttles, 0, "no policy ran");
    }

    #[test]
    fn pct_delta_handles_zero_base() {
        assert_eq!(pct_delta(0.0, 5.0), 0.0);
        assert!((pct_delta(100.0, 110.0) - 10.0).abs() < 1e-12);
    }
}
