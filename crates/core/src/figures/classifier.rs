//! Workload-classification report — the `sc-learn` extension.
//!
//! Not a figure of the HPCA 2022 paper: the paper observes (Sec. VII)
//! that rich per-job telemetry enables workload *characterization*; the
//! follow-up challenge it poses is recognizing what a job *is* from
//! what it *does*. This figure reports a classifier evaluated against
//! the synthesizer's hidden ground-truth archetypes: a confusion
//! matrix over the held-out split, overall accuracy for the decision
//! forest and the nearest-centroid baseline, and per-class
//! precision/recall.
//!
//! The struct is plain data so `sc-learn` (which depends on this
//! crate) can fill it in; rendering stays next to the other figures.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Confusion-matrix report for one trained classifier, over the
/// held-out evaluation split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierFig {
    /// Class labels, in class-index order (rows and columns).
    pub labels: Vec<String>,
    /// `confusion[truth][predicted]` job counts over the test split.
    pub confusion: Vec<Vec<u64>>,
    /// Decision-forest accuracy on the test split.
    pub accuracy: f64,
    /// Nearest-centroid baseline accuracy on the same split.
    pub centroid_accuracy: f64,
    /// Per-class precision (diagonal over predicted-column sum).
    pub precision: Vec<f64>,
    /// Per-class recall (diagonal over truth-row sum).
    pub recall: Vec<f64>,
    /// Jobs in the training split.
    pub train_count: usize,
    /// Jobs in the evaluation split.
    pub test_count: usize,
}

impl ClassifierFig {
    /// Renders the confusion matrix and summary scores as text.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Workload classification — forest accuracy {:.3} \
             (centroid baseline {:.3}), {} train / {} test jobs:\n",
            self.accuracy, self.centroid_accuracy, self.train_count, self.test_count
        );
        let _ = write!(s, "  {:<22}", "truth \\ predicted");
        for l in &self.labels {
            let _ = write!(s, " {l:>19}");
        }
        s.push('\n');
        for (i, row) in self.confusion.iter().enumerate() {
            let _ = write!(s, "  {:<22}", self.labels[i]);
            for v in row {
                let _ = write!(s, " {v:>19}");
            }
            s.push('\n');
        }
        s.push_str("  class                    precision   recall\n");
        for (i, l) in self.labels.iter().enumerate() {
            let _ = writeln!(s, "  {l:<22} {:>11.3} {:>8.3}", self.precision[i], self.recall[i]);
        }
        s
    }

    /// The confusion matrix as an SVG heatmap (row-normalized shading,
    /// absolute counts printed per cell).
    pub fn to_svg(&self) -> String {
        let n = self.labels.len().max(1);
        let cell = 86.0;
        let ml = 150.0;
        let mt = 76.0;
        let w = ml + cell * n as f64 + 20.0;
        let h = mt + cell * n as f64 + 30.0;
        let mut s = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n\
             <rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n\
             <text x=\"{:.1}\" y=\"22\" font-size=\"14\" text-anchor=\"middle\" \
             font-weight=\"bold\">Workload classification — confusion matrix \
             (accuracy {:.3})</text>\n",
            w / 2.0,
            self.accuracy
        );
        for (j, l) in self.labels.iter().enumerate() {
            let x = ml + (j as f64 + 0.5) * cell;
            let _ = writeln!(
                s,
                r##"<text x="{x:.1}" y="{:.1}" font-size="11" text-anchor="middle">{l}</text>"##,
                mt - 10.0
            );
        }
        for (i, row) in self.confusion.iter().enumerate() {
            let y = mt + i as f64 * cell;
            let row_total: u64 = row.iter().sum();
            let _ = writeln!(
                s,
                r##"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"##,
                ml - 8.0,
                y + cell / 2.0 + 4.0,
                self.labels[i]
            );
            for (j, v) in row.iter().enumerate() {
                let x = ml + j as f64 * cell;
                let frac = if row_total == 0 { 0.0 } else { *v as f64 / row_total as f64 };
                // White (0) to the line-chart blue (1), linear ramp.
                let (r, g, b) = (
                    255.0 - frac * (255.0 - 27.0),
                    255.0 - frac * (255.0 - 108.0),
                    255.0 - frac * (255.0 - 168.0),
                );
                let fill = format!("rgb({r:.0},{g:.0},{b:.0})");
                let text_fill = if frac > 0.55 { "white" } else { "#333" };
                let _ = writeln!(
                    s,
                    r##"<rect x="{x:.1}" y="{y:.1}" width="{cell}" height="{cell}" fill="{fill}" stroke="#999"/><text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle" fill="{text_fill}">{v}</text>"##,
                    x + cell / 2.0,
                    y + cell / 2.0 + 4.0
                );
            }
        }
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="middle">predicted →   (rows: ground truth; {} test jobs)</text>"##,
            ml + cell * n as f64 / 2.0,
            mt + cell * n as f64 + 18.0,
            self.test_count,
        );
        s.push_str("</svg>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fig() -> ClassifierFig {
        ClassifierFig {
            labels: vec!["a".into(), "b".into()],
            confusion: vec![vec![8, 2], vec![1, 9]],
            accuracy: 0.85,
            centroid_accuracy: 0.75,
            precision: vec![8.0 / 9.0, 9.0 / 11.0],
            recall: vec![0.8, 0.9],
            train_count: 40,
            test_count: 20,
        }
    }

    #[test]
    fn render_shows_matrix_and_scores() {
        let text = sample_fig().render();
        assert!(text.contains("accuracy 0.850"));
        assert!(text.contains("centroid baseline 0.750"));
        assert!(text.contains("precision"));
        assert!(text.contains("40 train / 20 test"));
    }

    #[test]
    fn svg_has_one_cell_per_matrix_entry() {
        let svg = sample_fig().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Background rect + 4 cells.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains("accuracy 0.850"));
    }

    #[test]
    fn empty_rows_shade_as_zero() {
        let mut fig = sample_fig();
        fig.confusion = vec![vec![0, 0], vec![0, 0]];
        let svg = fig.to_svg();
        assert!(svg.contains("rgb(255,255,255)"), "zero rows stay white");
    }
}
