//! Fig. 15 — the development-life-cycle mix by job count and GPU hours.

use crate::paper::fig15 as paper;
use crate::report::Comparison;
use crate::view::GpuJobView;
use sc_stats::{Ecdf, StatsError};
use sc_workload::LifecycleClass;

/// One class's share of jobs and GPU hours, with median run time.
#[derive(Debug, Clone, Copy)]
pub struct ClassShare {
    /// The class.
    pub class: LifecycleClass,
    /// Share of jobs (Fig. 15a).
    pub job_share: f64,
    /// Share of GPU hours (Fig. 15b).
    pub hours_share: f64,
    /// Median run time, minutes (Sec. VI prose).
    pub median_runtime_min: f64,
}

/// The lifecycle mix.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// Per-class rows in [`LifecycleClass::ALL`] order.
    pub shares: Vec<ClassShare>,
}

impl Fig15 {
    /// Computes the mix over the analyzed GPU jobs.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty or some class is entirely absent.
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig15: {e}"),
        }
    }

    /// Computes the mix, returning a typed error when `views` is empty
    /// or a class is entirely absent instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] in both degenerate cases.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        if views.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let total_jobs = views.len() as f64;
        let total_hours: f64 = views.iter().map(|v| v.gpu_hours()).sum();
        let mut shares = Vec::with_capacity(LifecycleClass::ALL.len());
        for &class in LifecycleClass::ALL.iter() {
            let in_class: Vec<&GpuJobView> = views.iter().filter(|v| v.class == class).collect();
            let hours: f64 = in_class.iter().map(|v| v.gpu_hours()).sum();
            let runtimes: Vec<f64> = in_class.iter().map(|v| v.run_minutes()).collect();
            shares.push(ClassShare {
                class,
                job_share: in_class.len() as f64 / total_jobs,
                hours_share: if total_hours > 0.0 { hours / total_hours } else { 0.0 },
                median_runtime_min: Ecdf::new(runtimes)?.median(),
            });
        }
        Ok(Fig15 { shares })
    }

    /// The row for one class.
    ///
    /// # Panics
    ///
    /// Panics if the class is missing (cannot happen).
    pub fn share(&self, class: LifecycleClass) -> &ClassShare {
        self.shares.iter().find(|s| s.class == class).expect("all classes present")
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        use LifecycleClass::*;
        let dev_ide_hours = self.share(Development).hours_share + self.share(Ide).hours_share;
        vec![
            Comparison::new(
                "mature job share",
                paper::MATURE_JOB_SHARE,
                self.share(Mature).job_share,
                "frac",
            ),
            Comparison::new(
                "exploratory job share",
                paper::EXPLORATORY_JOB_SHARE,
                self.share(Exploratory).job_share,
                "frac",
            ),
            Comparison::new(
                "development job share",
                paper::DEVELOPMENT_JOB_SHARE,
                self.share(Development).job_share,
                "frac",
            ),
            Comparison::new(
                "IDE job share",
                paper::IDE_JOB_SHARE,
                self.share(Ide).job_share,
                "frac",
            ),
            Comparison::new(
                "mature GPU-hour share",
                paper::MATURE_HOURS_SHARE,
                self.share(Mature).hours_share,
                "frac",
            ),
            Comparison::new(
                "exploratory GPU-hour share",
                paper::EXPLORATORY_HOURS_SHARE,
                self.share(Exploratory).hours_share,
                "frac",
            ),
            Comparison::new(
                "dev+IDE GPU-hour share",
                paper::DEV_IDE_HOURS_SHARE,
                dev_ide_hours,
                "frac",
            ),
            Comparison::new(
                "IDE GPU-hour share",
                paper::IDE_HOURS_SHARE,
                self.share(Ide).hours_share,
                "frac",
            ),
            Comparison::new(
                "median mature run time",
                paper::MATURE_RUNTIME_MEDIAN_MIN,
                self.share(Mature).median_runtime_min,
                "min",
            ),
            Comparison::new(
                "median exploratory run time",
                paper::EXPLORATORY_RUNTIME_MEDIAN_MIN,
                self.share(Exploratory).median_runtime_min,
                "min",
            ),
        ]
    }

    /// Renders both panels as text.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Fig. 15 lifecycle mix:\n  class        jobs%   GPU-hours%   median run (min)\n",
        );
        for c in &self.shares {
            s.push_str(&format!(
                "  {:<12} {:>5.1}  {:>10.1}  {:>10.1}\n",
                c.class.to_string(),
                c.job_share * 100.0,
                c.hours_share * 100.0,
                c.median_runtime_min
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;
    use LifecycleClass::*;

    #[test]
    fn shares_are_distributions() {
        let views = small_views();
        let fig = Fig15::compute(&views);
        let jobs: f64 = fig.shares.iter().map(|s| s.job_share).sum();
        let hours: f64 = fig.shares.iter().map(|s| s.hours_share).sum();
        assert!((jobs - 1.0).abs() < 1e-9);
        assert!((hours - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_mature_work_dominates_gpu_hours() {
        let views = small_views();
        let fig = Fig15::compute(&views);
        // "only 39% of the GPU hours are consumed by mature jobs, while
        // 61% … by other types" — mature hours ≪ mature job share.
        let mature = fig.share(Mature);
        assert!(mature.job_share > 0.45, "mature jobs {}", mature.job_share);
        assert!(
            mature.hours_share < mature.job_share,
            "hours {} vs jobs {}",
            mature.hours_share,
            mature.job_share
        );
    }

    #[test]
    fn ide_jobs_consume_disproportionate_hours() {
        let views = small_views();
        let fig = Fig15::compute(&views);
        let ide = fig.share(Ide);
        // 3.5% of jobs, 18% of hours: at least a 2.5× amplification.
        assert!(
            ide.hours_share > 2.5 * ide.job_share,
            "IDE hours {} vs jobs {}",
            ide.hours_share,
            ide.job_share
        );
    }

    #[test]
    fn exploratory_jobs_run_longer_than_mature() {
        let views = small_views();
        let fig = Fig15::compute(&views);
        assert!(
            fig.share(Exploratory).median_runtime_min > fig.share(Mature).median_runtime_min * 0.8,
            "exploratory {} vs mature {}",
            fig.share(Exploratory).median_runtime_min,
            fig.share(Mature).median_runtime_min
        );
        assert!(fig.render().contains("lifecycle"));
        assert_eq!(fig.comparisons().len(), 10);
    }
}
