//! Fig. 11 — within-user variability: ECDFs of per-user CoVs of run
//! time and utilization.

use crate::paper::fig11 as paper;
use crate::report::{format_cdf_points, Comparison};
use crate::userstats::UserStats;
use sc_stats::{Ecdf, StatsError};

/// Per-user CoV ECDFs (users with at least two jobs).
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// CoV (%) of job run times within a user.
    pub cov_runtime: Ecdf,
    /// CoV (%) of SM utilization within a user.
    pub cov_sm: Ecdf,
    /// CoV (%) of memory utilization within a user.
    pub cov_mem: Ecdf,
    /// CoV (%) of memory-size utilization within a user.
    pub cov_mem_size: Ecdf,
}

impl Fig11 {
    /// Computes the figure from per-user statistics.
    ///
    /// # Panics
    ///
    /// Panics if no user has two or more jobs.
    pub fn compute(stats: &[UserStats]) -> Self {
        match Self::try_compute(stats) {
            Ok(fig) => fig,
            Err(e) => panic!("fig11: {e}"),
        }
    }

    /// Computes the figure, returning a typed error when no user has
    /// two or more jobs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when no multi-job users
    /// exist.
    pub fn try_compute(stats: &[UserStats]) -> Result<Self, StatsError> {
        let pick =
            |f: fn(&UserStats) -> Option<f64>| Ecdf::new(stats.iter().filter_map(f).collect());
        Ok(Fig11 {
            cov_runtime: pick(|s| s.cov_runtime)?,
            cov_sm: pick(|s| s.cov_sm)?,
            cov_mem: pick(|s| s.cov_mem)?,
            cov_mem_size: pick(|s| s.cov_mem_size)?,
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "median per-user run-time CoV",
                paper::USER_RUNTIME_COV_MEDIAN,
                self.cov_runtime.median(),
                "%",
            ),
            Comparison::new(
                "p25 per-user run-time CoV",
                paper::USER_RUNTIME_COV_P25,
                self.cov_runtime.quantile(0.25),
                "%",
            ),
            Comparison::new(
                "p75 per-user run-time CoV",
                paper::USER_RUNTIME_COV_P75,
                self.cov_runtime.quantile(0.75),
                "%",
            ),
            Comparison::new(
                "median per-user SM CoV",
                paper::USER_SM_COV_MEDIAN,
                self.cov_sm.median(),
                "%",
            ),
            Comparison::new(
                "median per-user memory CoV",
                paper::USER_MEM_COV_MEDIAN,
                self.cov_mem.median(),
                "%",
            ),
            Comparison::new(
                "median per-user memory-size CoV",
                paper::USER_MEM_SIZE_COV_MEDIAN,
                self.cov_mem_size.median(),
                "%",
            ),
        ]
    }

    /// Renders the panels as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 11 per-user CoV ECDFs (%):\n");
        for (name, cdf) in [
            ("run time", &self.cov_runtime),
            ("SM", &self.cov_sm),
            ("memory", &self.cov_mem),
            ("memory size", &self.cov_mem_size),
        ] {
            s.push_str(&format!("  {name}: {}\n", format_cdf_points(&cdf.curve(16), 16)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_user_stats;

    #[test]
    fn users_are_internally_heterogeneous() {
        let stats = small_user_stats();
        let fig = Fig11::compute(&stats);
        // "the behavior of different jobs submitted by a user varies
        // greatly" — median CoV of run time is far above 50%.
        assert!(fig.cov_runtime.median() > 80.0, "runtime CoV median {}", fig.cov_runtime.median());
        assert!(fig.cov_sm.median() > 40.0, "SM CoV median {}", fig.cov_sm.median());
    }

    #[test]
    fn some_users_exceed_1000_percent() {
        let stats = small_user_stats();
        let fig = Fig11::compute(&stats);
        // "some users have a job run time CoV of over 1000%" — the tail
        // must be long. At the test fixture's scale (~60 users) the
        // extreme order statistic is noisy, so require the max to sit
        // well above the median rather than pinning an absolute value;
        // the full-scale tail is recorded in EXPERIMENTS.md.
        assert!(
            fig.cov_runtime.max() > 1.5 * fig.cov_runtime.median(),
            "max runtime CoV {} vs median {}",
            fig.cov_runtime.max(),
            fig.cov_runtime.median()
        );
    }

    #[test]
    fn render_and_rows() {
        let stats = small_user_stats();
        let fig = Fig11::compute(&stats);
        assert!(fig.render().contains("Fig. 11"));
        assert_eq!(fig.comparisons().len(), 6);
    }
}
