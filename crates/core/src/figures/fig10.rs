//! Fig. 10 — per-user average run time and utilization ECDFs, plus the
//! Sec. IV user-concentration statistics.

use crate::paper::{concentration, fig10 as paper};
use crate::report::{format_cdf_points, Comparison};
use crate::userstats::UserStats;
use sc_stats::{Ecdf, Lorenz, StatsError};

/// Fig. 10 panels plus the Pareto concentration numbers of Sec. IV.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per-user average job run time, minutes.
    pub avg_runtime_min: Ecdf,
    /// Per-user average SM utilization, %.
    pub avg_sm: Ecdf,
    /// Per-user average memory utilization, %.
    pub avg_mem: Ecdf,
    /// Per-user average memory-size utilization, %.
    pub avg_mem_size: Ecdf,
    /// Median jobs per user.
    pub median_jobs_per_user: f64,
    /// Share of jobs submitted by the top 5% of users.
    pub top5_job_share: f64,
    /// Share of jobs submitted by the top 20% of users.
    pub top20_job_share: f64,
}

impl Fig10 {
    /// Computes the figure from per-user statistics.
    ///
    /// # Panics
    ///
    /// Panics if `stats` is empty.
    pub fn compute(stats: &[UserStats]) -> Self {
        match Self::try_compute(stats) {
            Ok(fig) => fig,
            Err(e) => panic!("fig10: {e}"),
        }
    }

    /// Computes the figure, returning a typed error on degenerate user
    /// statistics instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when `stats` is empty and
    /// propagates Lorenz-curve domain errors.
    pub fn try_compute(stats: &[UserStats]) -> Result<Self, StatsError> {
        let jobs: Vec<f64> = stats.iter().map(|s| s.jobs as f64).collect();
        let lorenz = Lorenz::new(jobs.clone())?;
        let jobs_cdf = Ecdf::new(jobs)?;
        Ok(Fig10 {
            avg_runtime_min: Ecdf::new(stats.iter().map(|s| s.avg_runtime_min).collect())?,
            avg_sm: Ecdf::new(stats.iter().map(|s| s.avg_sm).collect())?,
            avg_mem: Ecdf::new(stats.iter().map(|s| s.avg_mem).collect())?,
            avg_mem_size: Ecdf::new(stats.iter().map(|s| s.avg_mem_size).collect())?,
            median_jobs_per_user: jobs_cdf.median(),
            top5_job_share: lorenz.top_share(0.05),
            top20_job_share: lorenz.top_share(0.20),
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "median per-user avg run time",
                paper::USER_AVG_RUNTIME_MEDIAN_MIN,
                self.avg_runtime_min.median(),
                "min",
            ),
            Comparison::new(
                "p25 per-user avg run time",
                paper::USER_AVG_RUNTIME_P25_MIN,
                self.avg_runtime_min.quantile(0.25),
                "min",
            ),
            Comparison::new(
                "p75 per-user avg run time",
                paper::USER_AVG_RUNTIME_P75_MIN,
                self.avg_runtime_min.quantile(0.75),
                "min",
            ),
            Comparison::new(
                "median per-user avg SM",
                paper::USER_AVG_SM_MEDIAN,
                self.avg_sm.median(),
                "%",
            ),
            Comparison::new(
                "median per-user avg memory",
                paper::USER_AVG_MEM_MEDIAN,
                self.avg_mem.median(),
                "%",
            ),
            Comparison::new(
                "median per-user avg memory size",
                paper::USER_AVG_MEM_SIZE_MEDIAN,
                self.avg_mem_size.median(),
                "%",
            ),
            Comparison::new(
                "users with avg SM > 20%",
                paper::USER_SM_ABOVE_20_FRACTION,
                self.avg_sm.fraction_above(20.0),
                "frac",
            ),
            Comparison::new(
                "median jobs per user",
                concentration::MEDIAN_JOBS_PER_USER,
                self.median_jobs_per_user,
                "jobs",
            ),
            Comparison::new(
                "top-5% users' job share",
                concentration::TOP5_JOB_SHARE,
                self.top5_job_share,
                "frac",
            ),
            Comparison::new(
                "top-20% users' job share",
                concentration::TOP20_JOB_SHARE,
                self.top20_job_share,
                "frac",
            ),
        ]
    }

    /// Renders the panels as text.
    pub fn render(&self) -> String {
        format!(
            "Fig. 10 per-user average ECDFs:\n  run time (min, log grid): {}\n  SM (%): {}\n  \
             memory (%): {}\n  memory size (%): {}\nSec. IV concentration: median jobs/user \
             {:.0}, top-5% share {:.1}%, top-20% share {:.1}%\n",
            format_cdf_points(&self.avg_runtime_min.log_curve(16, 0.5), 16),
            format_cdf_points(&self.avg_sm.curve(16), 16),
            format_cdf_points(&self.avg_mem.curve(16), 16),
            format_cdf_points(&self.avg_mem_size.curve(16), 16),
            self.median_jobs_per_user,
            self.top5_job_share * 100.0,
            self.top20_job_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_user_stats;

    #[test]
    fn user_averages_exceed_job_median() {
        let stats = small_user_stats();
        let fig = Fig10::compute(&stats);
        // The lognormal means pull per-user averages far above the
        // 30-minute job median — the paper's 392-minute effect.
        assert!(
            fig.avg_runtime_min.median() > 60.0,
            "per-user avg runtime median {}",
            fig.avg_runtime_min.median()
        );
    }

    #[test]
    fn activity_is_concentrated() {
        let stats = small_user_stats();
        let fig = Fig10::compute(&stats);
        assert!(fig.top20_job_share > 0.5, "top-20% share {}", fig.top20_job_share);
        assert!(fig.top5_job_share < fig.top20_job_share);
        assert!(fig.median_jobs_per_user < stats.iter().map(|s| s.jobs).max().unwrap() as f64);
    }

    #[test]
    fn most_users_have_low_utilization() {
        let stats = small_user_stats();
        let fig = Fig10::compute(&stats);
        // "Only 32% and 5% of the users have an average SM and memory
        // utilization of > 20%" — directionally, minorities.
        assert!(fig.avg_sm.fraction_above(20.0) < 0.6);
        assert!(fig.avg_mem.fraction_above(20.0) < 0.25);
    }

    #[test]
    fn render_and_rows() {
        let stats = small_user_stats();
        let fig = Fig10::compute(&stats);
        assert!(fig.render().contains("Fig. 10"));
        assert_eq!(fig.comparisons().len(), 10);
    }
}
