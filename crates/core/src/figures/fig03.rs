//! Fig. 3 — run times and queue waits of GPU vs CPU jobs.

use crate::paper::fig3 as paper;
use crate::report::{format_cdf_points, Comparison};
use sc_stats::{Ecdf, StatsError};
use sc_telemetry::dataset::Dataset;

/// Fig. 3(a): ECDFs of run times (minutes); Fig. 3(b): ECDFs of queue
/// wait as a percentage of service time.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// GPU-job run times, minutes.
    pub gpu_runtime_min: Ecdf,
    /// CPU-job run times, minutes.
    pub cpu_runtime_min: Ecdf,
    /// GPU-job queue wait as % of service time.
    pub gpu_wait_pct: Ecdf,
    /// CPU-job queue wait as % of service time.
    pub cpu_wait_pct: Ecdf,
    /// GPU-job absolute queue waits, seconds (for the "<1 minute" claim).
    pub gpu_wait_secs: Ecdf,
    /// CPU-job absolute queue waits, seconds.
    pub cpu_wait_secs: Ecdf,
}

impl Fig3 {
    /// Computes the figure from the joined dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no GPU or no CPU jobs.
    pub fn compute(dataset: &Dataset) -> Self {
        match Self::try_compute(dataset) {
            Ok(fig) => fig,
            Err(e) => panic!("fig3: {e}"),
        }
    }

    /// Computes the figure, returning a typed error on a degenerate
    /// dataset instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when the dataset has no GPU
    /// or no CPU jobs, and propagates non-finite sample errors.
    pub fn try_compute(dataset: &Dataset) -> Result<Self, StatsError> {
        let gpu: Vec<&_> = dataset.records().iter().filter(|r| r.sched.is_gpu_job()).collect();
        let cpu: Vec<&_> = dataset.cpu_jobs().collect();
        if gpu.is_empty() || cpu.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let runtimes = |v: &[&sc_telemetry::record::JobRecord]| {
            v.iter().map(|r| r.sched.run_time() / 60.0).collect::<Vec<_>>()
        };
        let wait_pct = |v: &[&sc_telemetry::record::JobRecord]| {
            v.iter().map(|r| r.sched.queue_wait_percent()).collect::<Vec<_>>()
        };
        let wait_secs = |v: &[&sc_telemetry::record::JobRecord]| {
            v.iter().map(|r| r.sched.queue_wait()).collect::<Vec<_>>()
        };
        Ok(Fig3 {
            gpu_runtime_min: Ecdf::new(runtimes(&gpu))?,
            cpu_runtime_min: Ecdf::new(runtimes(&cpu))?,
            gpu_wait_pct: Ecdf::new(wait_pct(&gpu))?,
            cpu_wait_pct: Ecdf::new(wait_pct(&cpu))?,
            gpu_wait_secs: Ecdf::new(wait_secs(&gpu))?,
            cpu_wait_secs: Ecdf::new(wait_secs(&cpu))?,
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "median GPU-job run time",
                paper::GPU_RUNTIME_MEDIAN_MIN,
                self.gpu_runtime_min.median(),
                "min",
            ),
            Comparison::new(
                "p25 GPU-job run time",
                paper::GPU_RUNTIME_P25_MIN,
                self.gpu_runtime_min.quantile(0.25),
                "min",
            ),
            Comparison::new(
                "p75 GPU-job run time",
                paper::GPU_RUNTIME_P75_MIN,
                self.gpu_runtime_min.quantile(0.75),
                "min",
            ),
            Comparison::new(
                "median CPU-job run time",
                paper::CPU_RUNTIME_MEDIAN_MIN,
                self.cpu_runtime_min.median(),
                "min",
            ),
            Comparison::new(
                "GPU jobs with wait <2% of service",
                paper::GPU_WAIT_UNDER_2PCT_FRACTION,
                self.gpu_wait_pct.fraction_at_most(2.0),
                "frac",
            ),
            Comparison::new(
                "GPU jobs queued under 1 min",
                paper::GPU_WAIT_UNDER_1MIN_FRACTION,
                self.gpu_wait_secs.fraction_at_most(60.0),
                "frac",
            ),
            Comparison::new(
                "CPU jobs queued over 1 min",
                paper::CPU_WAIT_OVER_1MIN_FRACTION,
                self.cpu_wait_secs.fraction_above(60.0),
                "frac",
            ),
        ]
    }

    /// Renders the figure series as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 3(a) run-time ECDFs (log grid, minutes):\n");
        s.push_str(&format!(
            "  GPU: {}\n",
            format_cdf_points(&self.gpu_runtime_min.log_curve(24, 0.1), 24)
        ));
        s.push_str(&format!(
            "  CPU: {}\n",
            format_cdf_points(&self.cpu_runtime_min.log_curve(24, 0.1), 24)
        ));
        s.push_str("Fig. 3(b) queue wait as % of service time:\n");
        s.push_str(&format!("  GPU: {}\n", format_cdf_points(&self.gpu_wait_pct.curve(20), 20)));
        s.push_str(&format!("  CPU: {}\n", format_cdf_points(&self.cpu_wait_pct.curve(20), 20)));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn gpu_jobs_run_longer_than_cpu_jobs() {
        let fig = Fig3::compute(&small_sim().dataset);
        assert!(
            fig.gpu_runtime_min.median() > 2.0 * fig.cpu_runtime_min.median(),
            "gpu median {} vs cpu {}",
            fig.gpu_runtime_min.median(),
            fig.cpu_runtime_min.median()
        );
    }

    #[test]
    fn gpu_jobs_wait_less_than_cpu_jobs() {
        let fig = Fig3::compute(&small_sim().dataset);
        // The paper's headline: GPU jobs clear the queue almost
        // instantly, CPU jobs do not.
        assert!(fig.gpu_wait_secs.fraction_at_most(60.0) > 0.9);
        assert!(fig.cpu_wait_secs.fraction_above(60.0) > fig.gpu_wait_secs.fraction_above(60.0));
    }

    #[test]
    fn render_includes_both_panels() {
        let fig = Fig3::compute(&small_sim().dataset);
        let text = fig.render();
        assert!(text.contains("Fig. 3(a)"));
        assert!(text.contains("Fig. 3(b)"));
        assert_eq!(fig.comparisons().len(), 7);
    }
}
