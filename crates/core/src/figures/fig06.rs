//! Fig. 6 — active/idle phase structure from the 100 ms time-series
//! subset.

use crate::paper::fig6 as paper;
use crate::report::{format_cdf_points, Comparison};
use sc_cluster::DetailedJobStats;
use sc_stats::{Ecdf, StatsError};

/// Fig. 6(a): ECDF of time spent active (% of run time); Fig. 6(b):
/// ECDFs of the CoV of idle and active interval lengths.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Active time as % of run time, one point per detailed job.
    pub active_pct: Ecdf,
    /// CoV (%) of idle-interval lengths (jobs with ≥2 idle intervals).
    pub idle_cov: Ecdf,
    /// CoV (%) of active-interval lengths (jobs with ≥2 active
    /// intervals).
    pub active_cov: Ecdf,
}

impl Fig6 {
    /// Computes the figure from the detailed-subset statistics.
    ///
    /// # Panics
    ///
    /// Panics if the subset is empty or no job alternates phases.
    pub fn compute(detailed: &[DetailedJobStats]) -> Self {
        match Self::try_compute(detailed) {
            Ok(fig) => fig,
            Err(e) => panic!("fig6: {e}"),
        }
    }

    /// Computes the figure, returning a typed error on a degenerate
    /// subset instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when the subset is empty or no
    /// job alternates phases.
    pub fn try_compute(detailed: &[DetailedJobStats]) -> Result<Self, StatsError> {
        let active_pct: Vec<f64> =
            detailed.iter().map(|d| d.phases.active_fraction * 100.0).collect();
        let idle_cov: Vec<f64> =
            detailed.iter().filter_map(|d| d.phases.idle_interval_cov).collect();
        let active_cov: Vec<f64> =
            detailed.iter().filter_map(|d| d.phases.active_interval_cov).collect();
        Ok(Fig6 {
            active_pct: Ecdf::new(active_pct)?,
            idle_cov: Ecdf::new(idle_cov)?,
            active_cov: Ecdf::new(active_cov)?,
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "median active time share",
                paper::ACTIVE_FRACTION_MEDIAN * 100.0,
                self.active_pct.median(),
                "%",
            ),
            Comparison::new(
                "p25 active time share",
                paper::ACTIVE_FRACTION_P25 * 100.0,
                self.active_pct.quantile(0.25),
                "%",
            ),
            Comparison::new(
                "p75 active time share",
                paper::ACTIVE_FRACTION_P75 * 100.0,
                self.active_pct.quantile(0.75),
                "%",
            ),
            Comparison::new(
                "median idle-interval CoV",
                paper::IDLE_INTERVAL_COV_MEDIAN,
                self.idle_cov.median(),
                "%",
            ),
            Comparison::new(
                "median active-interval CoV",
                paper::ACTIVE_INTERVAL_COV_MEDIAN,
                self.active_cov.median(),
                "%",
            ),
        ]
    }

    /// Renders both panels as text.
    pub fn render(&self) -> String {
        format!(
            "Fig. 6(a) active time as % of run time:\n  {}\n\
             Fig. 6(b) interval-length CoV ECDFs (%):\n  idle:   {}\n  active: {}\n",
            format_cdf_points(&self.active_pct.curve(20), 20),
            format_cdf_points(&self.idle_cov.curve(20), 20),
            format_cdf_points(&self.active_cov.curve(20), 20),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn phases_are_irregular() {
        let out = small_sim();
        let fig = Fig6::compute(&out.detailed);
        // "both idle (median 126%) and active (median 169%) phases have
        // a high CoV" — phases must not look periodic.
        assert!(fig.idle_cov.median() > 50.0, "idle CoV {}", fig.idle_cov.median());
        assert!(fig.active_cov.median() > 50.0, "active CoV {}", fig.active_cov.median());
    }

    #[test]
    fn active_share_is_bimodal_with_high_median() {
        let out = small_sim();
        let fig = Fig6::compute(&out.detailed);
        // Median job mostly active; a quarter of jobs mostly idle.
        assert!(fig.active_pct.median() > 50.0);
        assert!(fig.active_pct.quantile(0.25) < fig.active_pct.median());
    }

    #[test]
    fn render_and_comparisons() {
        let out = small_sim();
        let fig = Fig6::compute(&out.detailed);
        assert!(fig.render().contains("Fig. 6(b)"));
        assert_eq!(fig.comparisons().len(), 5);
    }
}
