//! Fig. 4 — GPU resource-utilization CDFs (SM, memory BW, memory size,
//! PCIe Tx/Rx).

use crate::paper::fig4 as paper;
use crate::report::{format_cdf_points, Comparison};
use crate::view::GpuJobView;
use sc_stats::{Ecdf, StatsError};

/// Fig. 4(a): job-mean utilization ECDFs; Fig. 4(b): PCIe bandwidth
/// utilization ECDFs.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Job-mean SM utilization, %.
    pub sm: Ecdf,
    /// Job-mean memory-bandwidth utilization, %.
    pub mem: Ecdf,
    /// Job-mean memory-size utilization, %.
    pub mem_size: Ecdf,
    /// Job-mean PCIe Tx utilization, %.
    pub pcie_tx: Ecdf,
    /// Job-mean PCIe Rx utilization, %.
    pub pcie_rx: Ecdf,
}

impl Fig4 {
    /// Computes the figure from GPU-job views.
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig4: {e}"),
        }
    }

    /// Computes the figure, returning a typed error when `views` is
    /// empty (or holds non-finite aggregates) instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] for an empty view set.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        let pick = |f: fn(&GpuJobView) -> f64| Ecdf::new(views.iter().map(f).collect::<Vec<_>>());
        Ok(Fig4 {
            sm: pick(|v| v.agg.sm_util.mean)?,
            mem: pick(|v| v.agg.mem_util.mean)?,
            mem_size: pick(|v| v.agg.mem_size_util.mean)?,
            pcie_tx: pick(|v| v.agg.pcie_tx.mean)?,
            pcie_rx: pick(|v| v.agg.pcie_rx.mean)?,
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new("median SM utilization", paper::SM_MEDIAN, self.sm.median(), "%"),
            Comparison::new("median memory utilization", paper::MEM_MEDIAN, self.mem.median(), "%"),
            Comparison::new(
                "median memory-size utilization",
                paper::MEM_SIZE_MEDIAN,
                self.mem_size.median(),
                "%",
            ),
            Comparison::new(
                "jobs above 50% SM",
                paper::SM_ABOVE_50_FRACTION,
                self.sm.fraction_above(50.0),
                "frac",
            ),
            Comparison::new(
                "jobs above 50% memory",
                paper::MEM_ABOVE_50_FRACTION,
                self.mem.fraction_above(50.0),
                "frac",
            ),
            Comparison::new(
                "jobs above 50% memory size",
                paper::MEM_SIZE_ABOVE_50_FRACTION,
                self.mem_size.fraction_above(50.0),
                "frac",
            ),
        ]
    }

    /// Renders the figure series as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 4(a) utilization ECDFs (%):\n");
        for (name, cdf) in [("SM", &self.sm), ("Memory", &self.mem), ("MemSize", &self.mem_size)] {
            s.push_str(&format!("  {name}: {}\n", format_cdf_points(&cdf.curve(20), 20)));
        }
        s.push_str("Fig. 4(b) PCIe bandwidth utilization ECDFs (%):\n");
        for (name, cdf) in [("Tx", &self.pcie_tx), ("Rx", &self.pcie_rx)] {
            s.push_str(&format!("  {name}: {}\n", format_cdf_points(&cdf.curve(20), 20)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn sm_dominates_memory_bandwidth() {
        let views = small_views();
        let fig = Fig4::compute(&views);
        // "SM is more heavily utilized than memory bandwidth."
        assert!(fig.sm.median() > fig.mem.median());
        assert!(fig.mem.median() < 8.0, "mem median {}", fig.mem.median());
    }

    #[test]
    fn most_jobs_underutilize_everything() {
        let views = small_views();
        let fig = Fig4::compute(&views);
        // "only 20% of the jobs have more than 50% SM utilization" —
        // directionally: a minority exceeds 50% on each resource.
        assert!(fig.sm.fraction_above(50.0) < 0.45);
        assert!(fig.mem.fraction_above(50.0) < 0.15);
        assert!(fig.mem_size.fraction_above(50.0) < 0.40);
    }

    #[test]
    fn pcie_distribution_is_spread_out() {
        let views = small_views();
        let fig = Fig4::compute(&views);
        // Fig. 4b's "linearly increasing CDF": mass is not clumped —
        // interquartile range is a large slice of the support.
        let iqr = fig.pcie_rx.quantile(0.75) - fig.pcie_rx.quantile(0.25);
        assert!(iqr > 10.0, "PCIe Rx IQR {iqr}");
    }

    #[test]
    fn render_and_compare() {
        let views = small_views();
        let fig = Fig4::compute(&views);
        assert!(fig.render().contains("Fig. 4(b)"));
        assert_eq!(fig.comparisons().len(), 6);
    }
}
