//! Fig. 12 — Spearman correlation of user activity (job count, GPU
//! hours) with average behaviour and its variability.

use crate::report::Comparison;
use crate::userstats::UserStats;
use sc_stats::{spearman, SpearmanResult, StatsError};

/// The behavioural metrics correlated against activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorMetric {
    /// Average job run time.
    AvgRuntime,
    /// Average SM utilization.
    AvgSm,
    /// Average memory utilization.
    AvgMem,
    /// CoV of run times.
    CovRuntime,
    /// CoV of SM utilization.
    CovSm,
    /// CoV of memory utilization.
    CovMem,
}

impl BehaviorMetric {
    /// All metrics in the paper's Fig. 12 order.
    pub const ALL: [BehaviorMetric; 6] = [
        BehaviorMetric::AvgRuntime,
        BehaviorMetric::AvgSm,
        BehaviorMetric::AvgMem,
        BehaviorMetric::CovRuntime,
        BehaviorMetric::CovSm,
        BehaviorMetric::CovMem,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BehaviorMetric::AvgRuntime => "avg run time",
            BehaviorMetric::AvgSm => "avg SM util",
            BehaviorMetric::AvgMem => "avg mem util",
            BehaviorMetric::CovRuntime => "CoV run time",
            BehaviorMetric::CovSm => "CoV SM util",
            BehaviorMetric::CovMem => "CoV mem util",
        }
    }
}

/// One correlation cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationCell {
    /// The behavioural metric.
    pub metric: BehaviorMetric,
    /// Correlation with the user's job count.
    pub vs_jobs: SpearmanResult,
    /// Correlation with the user's total GPU hours.
    pub vs_gpu_hours: SpearmanResult,
}

/// The full Fig. 12 correlation table.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// One row per behavioural metric.
    pub cells: Vec<CorrelationCell>,
}

impl Fig12 {
    /// Computes the correlations over users with at least two jobs
    /// (CoV metrics are undefined otherwise).
    ///
    /// # Panics
    ///
    /// Panics if fewer than three multi-job users exist.
    pub fn compute(stats: &[UserStats]) -> Self {
        match Self::try_compute(stats) {
            Ok(fig) => fig,
            Err(e) => panic!("fig12: {e}"),
        }
    }

    /// Computes the correlations, returning a typed error when too few
    /// multi-job users exist instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] (via [`spearman`]) when
    /// fewer than three multi-job users exist.
    pub fn try_compute(stats: &[UserStats]) -> Result<Self, StatsError> {
        let multi: Vec<&UserStats> = stats.iter().filter(|s| s.jobs >= 2).collect();
        let jobs: Vec<f64> = multi.iter().map(|s| s.jobs as f64).collect();
        let hours: Vec<f64> = multi.iter().map(|s| s.gpu_hours).collect();
        let value = |s: &UserStats, m: BehaviorMetric| -> f64 {
            match m {
                BehaviorMetric::AvgRuntime => s.avg_runtime_min,
                BehaviorMetric::AvgSm => s.avg_sm,
                BehaviorMetric::AvgMem => s.avg_mem,
                BehaviorMetric::CovRuntime => s.cov_runtime.unwrap_or(0.0),
                BehaviorMetric::CovSm => s.cov_sm.unwrap_or(0.0),
                BehaviorMetric::CovMem => s.cov_mem.unwrap_or(0.0),
            }
        };
        let mut cells = Vec::with_capacity(BehaviorMetric::ALL.len());
        for &metric in BehaviorMetric::ALL.iter() {
            let ys: Vec<f64> = multi.iter().map(|s| value(s, metric)).collect();
            cells.push(CorrelationCell {
                metric,
                vs_jobs: spearman(&jobs, &ys)?,
                vs_gpu_hours: spearman(&hours, &ys)?,
            });
        }
        Ok(Fig12 { cells })
    }

    /// The cell for one metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric is missing (cannot happen after
    /// construction).
    pub fn cell(&self, metric: BehaviorMetric) -> &CorrelationCell {
        self.cells.iter().find(|c| c.metric == metric).expect("all metrics computed")
    }

    /// Paper-vs-measured rows. The paper reports the qualitative
    /// structure (high positive for averages, below 0.5 for CoVs); we
    /// encode its two headline thresholds.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "rho(GPU hours, avg SM) — experts use GPUs better",
                0.5,
                self.cell(BehaviorMetric::AvgSm).vs_gpu_hours.rho,
                "rho",
            ),
            Comparison::new(
                "rho(jobs, CoV SM) — experts not more predictable",
                0.3,
                self.cell(BehaviorMetric::CovSm).vs_jobs.rho,
                "rho",
            ),
        ]
    }

    /// Renders the correlation table.
    pub fn render(&self) -> String {
        let mut s =
            String::from("Fig. 12 Spearman correlations (rho, p):\n  metric           vs #jobs        vs GPU hours\n");
        for c in &self.cells {
            s.push_str(&format!(
                "  {:<15} {:+.2} (p={:.3})  {:+.2} (p={:.3})\n",
                c.metric.label(),
                c.vs_jobs.rho,
                c.vs_jobs.p_value,
                c.vs_gpu_hours.rho,
                c.vs_gpu_hours.p_value
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_user_stats;

    #[test]
    fn expert_users_have_higher_average_utilization() {
        let stats = small_user_stats();
        let fig = Fig12::compute(&stats);
        // "a high positive correlation exists between the number of
        // jobs / GPU hours of a user and the average SM/memory
        // utilization across jobs."
        // At the ~60-user fixture scale Spearman has a standard error of
        // ~0.13, so only the sign structure is asserted here; the
        // full-scale magnitude (≈0.4) is checked in the calibration
        // acceptance test and recorded in EXPERIMENTS.md.
        let sm = fig.cell(BehaviorMetric::AvgSm);
        assert!(sm.vs_jobs.rho > -0.15, "rho(jobs, avg SM) = {}", sm.vs_jobs.rho);
        assert!(sm.vs_gpu_hours.rho > -0.15, "rho(hours, avg SM) = {}", sm.vs_gpu_hours.rho);
    }

    #[test]
    fn variability_is_not_explained_by_activity() {
        let stats = small_user_stats();
        let fig = Fig12::compute(&stats);
        // "the correlation … and the CoV of SM/memory utilization across
        // jobs is quite low (< 0.5)."
        let cov_sm = fig.cell(BehaviorMetric::CovSm);
        assert!(cov_sm.vs_jobs.rho < 0.6, "rho(jobs, CoV SM) = {}", cov_sm.vs_jobs.rho);
        assert!(cov_sm.vs_jobs.rho > -0.6, "rho(jobs, CoV SM) = {}", cov_sm.vs_jobs.rho);
    }

    #[test]
    fn all_rhos_in_range() {
        let stats = small_user_stats();
        let fig = Fig12::compute(&stats);
        for c in &fig.cells {
            assert!((-1.0..=1.0).contains(&c.vs_jobs.rho));
            assert!((-1.0..=1.0).contains(&c.vs_gpu_hours.rho));
        }
        assert!(fig.render().contains("Spearman"));
        assert_eq!(fig.comparisons().len(), 2);
    }
}
