//! ClusterTimeline — cluster state over the run.
//!
//! Not a figure of the HPCA 2022 paper: the paper characterizes the
//! *jobs*; this figure characterizes the *cluster they ran on*, from
//! the event-loop time-series the observability layer samples (queue
//! depth, running jobs, GPU occupancy, nodes down for repair, failure
//! and checkpoint-restore counters). It is the simulator-side analogue
//! of the system-wide telemetry dashboards the NERSC and Meta
//! follow-on studies build their reliability analyses on.

use sc_cluster::SimOutput;
use sc_obs::TimelineSample;
use sc_stats::StatsError;

/// The cluster time-series plus its summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTimelineFig {
    /// The sampled series, oldest first (period-bucketed; the last
    /// sample is the end-of-run state).
    pub samples: Vec<TimelineSample>,
    /// Peak jobs running at a sample point.
    pub peak_running: u64,
    /// Peak GPUs in use at a sample point.
    pub peak_gpus_in_use: u64,
    /// Mean queue depth over *every* event-loop transition (not just
    /// sample points).
    pub mean_queue_depth: f64,
    /// Largest queue depth seen at any transition.
    pub max_queue_depth: f64,
    /// Upper bound of the p90 queue-depth bucket (log₂ resolution).
    pub p90_queue_depth_bound: f64,
    /// Mean GPU occupancy (`in_use / (in_use + free)`) over samples
    /// with any GPUs visible.
    pub mean_gpu_occupancy: f64,
    /// Injected failures over the whole run.
    pub injected_failures: u64,
    /// Checkpoint restores over the whole run.
    pub checkpoint_restores: u64,
}

impl ClusterTimelineFig {
    /// Computes the figure from a simulation output.
    ///
    /// # Panics
    ///
    /// Panics if the output's timeline is empty (cannot happen for a
    /// run with at least one event: the loop always closes the series
    /// with a final sample).
    pub fn compute(out: &SimOutput) -> Self {
        match Self::try_compute(out) {
            Ok(fig) => fig,
            Err(e) => panic!("timeline: {e}"),
        }
    }

    /// Computes the figure, returning a typed error for an empty
    /// timeline instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when the timeline has no
    /// samples.
    pub fn try_compute(out: &SimOutput) -> Result<Self, StatsError> {
        let samples = out.timeline.samples().to_vec();
        if samples.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let depth = out.timeline.queue_depth();
        let occupancies: Vec<f64> = samples
            .iter()
            .filter(|s| s.gpus_in_use + s.gpus_free > 0)
            .map(|s| s.gpus_in_use as f64 / (s.gpus_in_use + s.gpus_free) as f64)
            .collect();
        let mean_gpu_occupancy = if occupancies.is_empty() {
            0.0
        } else {
            occupancies.iter().sum::<f64>() / occupancies.len() as f64
        };
        let last = samples[samples.len() - 1];
        Ok(ClusterTimelineFig {
            peak_running: samples.iter().map(|s| s.running).max().unwrap_or(0),
            peak_gpus_in_use: samples.iter().map(|s| s.gpus_in_use).max().unwrap_or(0),
            mean_queue_depth: depth.mean().unwrap_or(0.0),
            max_queue_depth: depth.max().unwrap_or(0.0),
            p90_queue_depth_bound: depth.quantile_bound(0.9).unwrap_or(0.0),
            mean_gpu_occupancy,
            injected_failures: last.injected_failures,
            checkpoint_restores: last.checkpoint_restores,
            samples,
        })
    }

    /// `(days, value)` curves for plotting: GPUs in use, jobs running,
    /// jobs queued, and nodes down, in that order.
    pub fn curves(&self) -> [(&'static str, Vec<(f64, f64)>); 4] {
        let days = |s: &TimelineSample| s.t / 86_400.0;
        [
            ("GPUs in use", self.samples.iter().map(|s| (days(s), s.gpus_in_use as f64)).collect()),
            ("jobs running", self.samples.iter().map(|s| (days(s), s.running as f64)).collect()),
            ("jobs queued", self.samples.iter().map(|s| (days(s), s.queued as f64)).collect()),
            ("nodes down", self.samples.iter().map(|s| (days(s), s.nodes_down as f64)).collect()),
        ]
    }

    /// Renders the summary and a coarse table of the series as text.
    pub fn render(&self) -> String {
        let mut s = String::from("ClusterTimeline — cluster state over the run:\n");
        s.push_str(&format!(
            "  {} samples; peak {} jobs running on {} GPUs; mean GPU occupancy {:.1}%\n",
            self.samples.len(),
            self.peak_running,
            self.peak_gpus_in_use,
            self.mean_gpu_occupancy * 100.0
        ));
        s.push_str(&format!(
            "  queue depth: mean {:.2}, p90 ≤ {:.0}, max {:.0} (every event-loop transition)\n",
            self.mean_queue_depth, self.p90_queue_depth_bound, self.max_queue_depth
        ));
        s.push_str(&format!(
            "  failures injected: {}; checkpoint restores: {}\n",
            self.injected_failures, self.checkpoint_restores
        ));
        s.push_str("  day     queued  running  gpus_used  gpus_free  down\n");
        // At most 10 evenly spaced rows keeps the text report bounded.
        let step = self.samples.len().div_ceil(10);
        for sample in self.samples.iter().step_by(step.max(1)) {
            s.push_str(&format!(
                "  {:>6.1}  {:>6}  {:>7}  {:>9}  {:>9}  {:>4}\n",
                sample.t / 86_400.0,
                sample.queued,
                sample.running,
                sample.gpus_in_use,
                sample.gpus_free,
                sample.nodes_down
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn timeline_figure_summarizes_the_run() {
        let fig = ClusterTimelineFig::compute(small_sim());
        assert!(fig.samples.len() >= 2, "need an opening and a closing sample");
        assert!(fig.peak_running > 0);
        assert!(fig.peak_gpus_in_use > 0);
        assert!(fig.mean_gpu_occupancy > 0.0 && fig.mean_gpu_occupancy <= 1.0);
        assert!(fig.max_queue_depth >= fig.mean_queue_depth);
        // The closing sample is an empty cluster.
        let last = fig.samples.last().unwrap();
        assert_eq!(last.running, 0);
        assert_eq!(last.queued, 0);
        let text = fig.render();
        assert!(text.contains("ClusterTimeline"));
        assert!(text.contains("queue depth"));
    }

    #[test]
    fn curves_cover_the_whole_horizon() {
        let fig = ClusterTimelineFig::compute(small_sim());
        for (name, points) in fig.curves() {
            assert_eq!(points.len(), fig.samples.len(), "{name}");
            for pair in points.windows(2) {
                assert!(pair[1].0 >= pair[0].0, "{name} time must be monotone");
            }
        }
    }
}
