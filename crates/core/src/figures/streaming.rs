//! Streaming-telemetry cross-validation — the streaming-engine
//! extension.
//!
//! Not a figure of the HPCA 2022 paper. The streaming telemetry rewrite
//! folds per-job aggregates into O(aggregate state) summaries while the
//! epilogs are still in flight ([`sc_telemetry::TelemetryStreamSummary`]),
//! instead of materializing every sample series first. This figure
//! closes the loop on that claim: every streamed aggregate is re-derived
//! from the materialized dataset — the batch ground truth the figures
//! consume — and the pair is compared under the aggregator's documented
//! error law: exact for counts and histogram tail bins, summation-order
//! rounding (1e-9 relative) for Welford means, and the sketch's
//! configured relative accuracy `alpha` for quantiles.

use crate::view::gpu_views;
use sc_cluster::SimOutput;
use sc_stats::StatsError;

/// Slack absorbing float noise on top of each row's documented bound:
/// the sketch bound is tight only up to rounding in `gamma.powi`, and
/// exact-count rows compare integers through f64.
const BOUND_SLACK: f64 = 1e-9;

/// One streamed-vs-batch check.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheck {
    /// Metric name, matching the summary's render keys where one exists.
    pub metric: &'static str,
    /// The one-pass streamed value.
    pub streamed: f64,
    /// The same statistic re-derived from the materialized dataset.
    pub batch: f64,
    /// Documented relative error bound (`0.0` for exact aggregates).
    pub bound: f64,
}

impl StreamCheck {
    /// Relative error of the streamed value against the batch value
    /// (absolute error when the batch value is zero).
    pub fn rel_err(&self) -> f64 {
        let denom = self.batch.abs();
        let err = (self.streamed - self.batch).abs();
        if denom > 0.0 {
            err / denom
        } else {
            err
        }
    }

    /// Whether the row honours its error bound.
    pub fn pass(&self) -> bool {
        self.rel_err() <= self.bound + BOUND_SLACK
    }
}

/// The streamed summary next to its batch re-derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingTelemetryFig {
    /// The streamed summary's stable text rendering.
    pub summary_text: String,
    /// Per-aggregate cross-checks.
    pub checks: Vec<StreamCheck>,
}

impl StreamingTelemetryFig {
    /// Computes the cross-validation from a simulation output.
    ///
    /// # Panics
    ///
    /// Panics when the output streamed no GPU jobs (an empty or
    /// CPU-only trace).
    pub fn compute(out: &SimOutput) -> Self {
        match Self::try_compute(out) {
            Ok(fig) => fig,
            Err(e) => panic!("streaming telemetry: {e}"),
        }
    }

    /// Computes the cross-validation, returning a typed error for an
    /// output with no streamed GPU jobs.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when the streamed summary
    /// holds no GPU jobs.
    pub fn try_compute(out: &SimOutput) -> Result<Self, StatsError> {
        let summary = &out.telemetry_summary;
        if summary.gpu_jobs == 0 {
            return Err(StatsError::EmptyInput);
        }
        let views = gpu_views(&out.dataset);
        let mut checks = vec![StreamCheck {
            metric: "gpu_jobs",
            streamed: summary.gpu_jobs as f64,
            batch: views.len() as f64,
            bound: 0.0,
        }];

        // Run-time quantiles: the sketch guarantees relative accuracy
        // alpha against the exact lower-nearest-rank quantile.
        let mut run_times: Vec<f64> = views.iter().map(|v| v.sched.run_time()).collect();
        run_times.sort_by(f64::total_cmp);
        let exact_q = |q: f64| run_times[(q * (run_times.len() - 1) as f64).floor() as usize];
        for (metric, q) in [("run_time_p50_s", 0.5), ("run_time_p95_s", 0.95)] {
            if let Some(streamed) = summary.run_time.quantile(q) {
                checks.push(StreamCheck {
                    metric,
                    streamed,
                    batch: exact_q(q),
                    bound: summary.run_time.alpha(),
                });
            }
        }

        // Welford means vs the naive batch fold over the same per-job
        // values: identical up to summation-order rounding.
        let job_mean = |f: &dyn Fn(&crate::view::GpuJobView) -> f64| {
            views.iter().map(f).sum::<f64>() / views.len() as f64
        };
        if let Some(streamed) = summary.sm_mean.mean() {
            checks.push(StreamCheck {
                metric: "sm_mean_pct",
                streamed,
                batch: job_mean(&|v| {
                    v.per_gpu.iter().map(|a| a.sm_util.mean).sum::<f64>() / v.per_gpu.len() as f64
                }),
                bound: 1e-9,
            });
        }
        if let Some(streamed) = summary.power_mean.mean() {
            checks.push(StreamCheck {
                metric: "power_mean_w",
                streamed,
                batch: job_mean(&|v| {
                    v.per_gpu.iter().map(|a| a.power_w.mean).sum::<f64>() / v.per_gpu.len() as f64
                }),
                bound: 1e-9,
            });
        }

        // Histogram tail: bin edges land on exact f64 values, so the
        // saturated-job count must match the batch count exactly.
        let saturated_streamed: u64 = summary
            .sm_peak
            .counts()
            .iter()
            .enumerate()
            .filter(|(i, _)| summary.sm_peak.bin_lo(*i) >= 95.0)
            .map(|(_, c)| c)
            .sum::<u64>()
            + summary.sm_peak.above();
        let saturated_batch = views
            .iter()
            .filter(|v| v.per_gpu.iter().map(|a| a.sm_util.max).fold(0.0, f64::max) >= 95.0)
            .count();
        checks.push(StreamCheck {
            metric: "sm_peak_ge95_jobs",
            streamed: saturated_streamed as f64,
            batch: saturated_batch as f64,
            bound: 0.0,
        });

        checks.push(StreamCheck {
            metric: "detailed_jobs",
            streamed: summary.detailed_jobs as f64,
            batch: out.detailed.len() as f64,
            bound: 0.0,
        });
        if let Some(streamed) = summary.active_fraction.mean() {
            let batch = out.detailed.iter().map(|d| d.phases.active_fraction).sum::<f64>()
                / out.detailed.len() as f64;
            checks.push(StreamCheck {
                metric: "active_fraction_mean",
                streamed,
                batch,
                bound: 1e-9,
            });
        }

        Ok(StreamingTelemetryFig { summary_text: summary.render(), checks })
    }

    /// Whether every check honours its bound.
    pub fn passes(&self) -> bool {
        self.checks.iter().all(StreamCheck::pass)
    }

    /// Renders the summary and the check table as stable text.
    pub fn render(&self) -> String {
        let mut s =
            String::from("Streaming telemetry (one-pass aggregates vs materialized batch):\n");
        for line in self.summary_text.lines() {
            s.push_str(&format!("  {line}\n"));
        }
        s.push_str("  check                   streamed        batch      rel err   bound\n");
        for c in &self.checks {
            s.push_str(&format!(
                "  {:<20} {:>13.4} {:>12.4} {:>12.2e} {:>7.0e} {}\n",
                c.metric,
                c.streamed,
                c.batch,
                c.rel_err(),
                c.bound,
                if c.pass() { "ok" } else { "FAIL" }
            ));
        }
        s.push_str(&format!(
            "  all checks within bounds: {}\n",
            if self.passes() { "yes" } else { "NO" }
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn streamed_aggregates_match_batch_rederivation() {
        let fig = StreamingTelemetryFig::compute(small_sim());
        assert!(fig.checks.len() >= 7, "all aggregates must be checked: {fig:?}");
        for c in &fig.checks {
            assert!(c.pass(), "{} off by {:.3e} (bound {:.0e})", c.metric, c.rel_err(), c.bound);
        }
        // The exact rows really are exact, not just within slack.
        for metric in ["gpu_jobs", "sm_peak_ge95_jobs", "detailed_jobs"] {
            let c = fig.checks.iter().find(|c| c.metric == metric).expect("row present");
            assert_eq!(c.streamed, c.batch, "{metric} must match exactly");
        }
    }

    #[test]
    fn render_is_stable_and_flags_passes() {
        let a = StreamingTelemetryFig::compute(small_sim());
        let b = StreamingTelemetryFig::compute(small_sim());
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("all checks within bounds: yes"));
    }

    #[test]
    fn empty_summary_is_an_error() {
        let mut out = small_sim().clone();
        out.telemetry_summary = sc_telemetry::TelemetryStreamSummary::new();
        assert!(matches!(StreamingTelemetryFig::try_compute(&out), Err(StatsError::EmptyInput)));
    }
}
