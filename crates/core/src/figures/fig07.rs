//! Fig. 7 — within-run utilization variability (a) and per-resource
//! bottleneck radar (b).

use crate::paper::fig7 as paper;
use crate::report::{format_cdf_points, Comparison};
use crate::view::GpuJobView;
use sc_cluster::DetailedJobStats;
use sc_stats::{Ecdf, StatsError};
use sc_telemetry::metrics::GpuResource;
use sc_telemetry::phases::is_bottlenecked;

/// Fig. 7(a): ECDFs of per-resource CoV during active phases; Fig. 7(b):
/// the fraction of jobs bottlenecked on each resource.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// CoV (%) of SM utilization across active samples.
    pub sm_cov: Ecdf,
    /// CoV (%) of memory utilization.
    pub mem_cov: Ecdf,
    /// CoV (%) of memory-size utilization.
    pub mem_size_cov: Ecdf,
    /// `(resource, fraction of jobs bottlenecked)` radar values.
    pub bottlenecks: Vec<(GpuResource, f64)>,
}

impl Fig7 {
    /// Computes the figure. Panel (a) uses the detailed subset; panel
    /// (b) uses every analyzed job's max aggregates.
    ///
    /// # Panics
    ///
    /// Panics if either input is empty.
    pub fn compute(detailed: &[DetailedJobStats], views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(detailed, views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig7: {e}"),
        }
    }

    /// Computes the figure, returning a typed error on degenerate
    /// inputs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when either input is empty or
    /// no detailed job has active samples.
    pub fn try_compute(
        detailed: &[DetailedJobStats],
        views: &[GpuJobView<'_>],
    ) -> Result<Self, StatsError> {
        if views.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let pick = |f: fn(&sc_telemetry::phases::ActiveVariability) -> f64| {
            Ecdf::new(detailed.iter().filter_map(|d| d.variability.as_ref().map(f)).collect())
        };
        let n = views.len() as f64;
        let bottlenecks = GpuResource::UTILIZATION
            .iter()
            .map(|&r| {
                let hit =
                    views.iter().filter(|v| is_bottlenecked(v.agg.resource(r).max, r)).count();
                (r, hit as f64 / n)
            })
            .collect();
        Ok(Fig7 {
            sm_cov: pick(|v| v.sm_cov)?,
            mem_cov: pick(|v| v.mem_cov)?,
            mem_size_cov: pick(|v| v.mem_size_cov)?,
            bottlenecks,
        })
    }

    /// Bottleneck fraction for one resource.
    ///
    /// # Panics
    ///
    /// Panics for [`GpuResource::Power`] (not part of the radar).
    pub fn bottleneck(&self, r: GpuResource) -> f64 {
        self.bottlenecks
            .iter()
            .find(|(res, _)| *res == r)
            .map(|(_, f)| *f)
            .expect("utilization resource")
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "median SM CoV (active)",
                paper::SM_COV_MEDIAN,
                self.sm_cov.median(),
                "%",
            ),
            Comparison::new(
                "median memory CoV (active)",
                paper::MEM_COV_MEDIAN,
                self.mem_cov.median(),
                "%",
            ),
            Comparison::new(
                "median memory-size CoV (active)",
                paper::MEM_SIZE_COV_MEDIAN,
                self.mem_size_cov.median(),
                "%",
            ),
            Comparison::new(
                "jobs with SM CoV ≥ 23%",
                paper::SM_COV_ABOVE_23_FRACTION,
                self.sm_cov.fraction_above(23.0),
                "frac",
            ),
            Comparison::new(
                "SM-bottlenecked jobs",
                paper::SM_BOTTLENECK_FRACTION,
                self.bottleneck(GpuResource::Sm),
                "frac",
            ),
            Comparison::new(
                "memory-bottlenecked jobs",
                paper::MEM_BOTTLENECK_FRACTION,
                self.bottleneck(GpuResource::Memory),
                "frac",
            ),
        ]
    }

    /// Renders both panels as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 7(a) active-phase CoV ECDFs (%):\n");
        for (name, cdf) in
            [("SM", &self.sm_cov), ("Memory", &self.mem_cov), ("MemSize", &self.mem_size_cov)]
        {
            s.push_str(&format!("  {name}: {}\n", format_cdf_points(&cdf.curve(16), 16)));
        }
        s.push_str("Fig. 7(b) bottleneck radar (% of jobs at 100% at least once):\n");
        for (r, f) in &self.bottlenecks {
            s.push_str(&format!("  {:<8} {:.1}%\n", r.to_string(), f * 100.0));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{small_sim, small_views};

    #[test]
    fn sm_is_the_dominant_bottleneck_and_memory_is_not() {
        let out = small_sim();
        let views = small_views();
        let fig = Fig7::compute(&out.detailed, &views);
        let sm = fig.bottleneck(GpuResource::Sm);
        let mem = fig.bottleneck(GpuResource::Memory);
        assert!(sm > 0.08, "SM bottleneck fraction {sm}");
        assert!(mem < 0.03, "memory bottleneck fraction {mem}");
        assert!(sm > mem);
    }

    #[test]
    fn active_phase_cov_is_moderate() {
        let out = small_sim();
        let views = small_views();
        let fig = Fig7::compute(&out.detailed, &views);
        // Paper medians are 8–15%; ours must be in the same regime
        // (clearly nonzero, clearly below the interval-length CoVs).
        let m = fig.sm_cov.median();
        assert!((2.0..60.0).contains(&m), "SM CoV median {m}");
    }

    #[test]
    fn radar_covers_five_resources() {
        let out = small_sim();
        let views = small_views();
        let fig = Fig7::compute(&out.detailed, &views);
        assert_eq!(fig.bottlenecks.len(), 5);
        assert!(fig.render().contains("radar"));
        assert_eq!(fig.comparisons().len(), 6);
    }
}
