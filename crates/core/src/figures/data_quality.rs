//! Data-quality report — what lossy collection does to the paper's
//! headline statistics, and how much of it the ingest stage repairs.
//!
//! Not a paper figure: the HPCA 2022 dataset was collected by a real
//! monitoring pipeline that silently dropped windows, truncated series
//! and duplicated records (Sec. II describes the collection plumbing).
//! This figure quantifies that threat on the synthetic twin: corrupt
//! the clean dataset with a seeded [`sc_telemetry::corruption`]
//! profile, push it through [`mod@crate::ingest`], and compare the
//! recovered headline statistics against the clean ones.

use crate::ingest::IngestReport;
use crate::pipeline::DatasetReport;
use sc_telemetry::corruption::{CorruptionCounters, FaultClass};

use crate::figures::fig13::SizeBucket;
use crate::ingest::SeriesStudy;
use sc_workload::LifecycleClass;

/// One headline statistic, clean vs recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// The statistic (matches the figure it comes from).
    pub metric: &'static str,
    /// Value on the clean dataset.
    pub clean: f64,
    /// Value on the corrupted-then-repaired dataset.
    pub recovered: f64,
}

impl DeltaRow {
    /// Percent deviation of recovered from clean (0 for a ~zero clean
    /// value).
    pub fn delta_pct(&self) -> f64 {
        if self.clean.abs() < 1e-12 {
            0.0
        } else {
            (self.recovered - self.clean) / self.clean * 100.0
        }
    }
}

/// The full data-quality report: injection ledger, repair ledger, and
/// per-figure recovered-vs-clean deltas.
#[derive(Debug, Clone)]
pub struct DataQualityFig {
    /// The injection profile label (`supercloud`, `lossy`, `hostile`).
    pub profile: String,
    /// What the corruptor injected, per fault class.
    pub injected: CorruptionCounters,
    /// The ingest stage's detection/repair/quarantine ledger.
    pub report: IngestReport,
    /// Headline statistics, clean vs recovered, in figure order.
    pub deltas: Vec<DeltaRow>,
    /// The time-series micro-study (window drops and tail truncation
    /// repaired inside the 100 ms series), when run.
    pub series: Option<SeriesStudy>,
}

impl DataQualityFig {
    /// Builds the report from the two pipeline runs and the ledgers.
    pub fn compute(
        profile: &str,
        injected: CorruptionCounters,
        report: IngestReport,
        clean: &DatasetReport,
        recovered: &DatasetReport,
        series: Option<SeriesStudy>,
    ) -> Self {
        let row = |metric, c: f64, r: f64| DeltaRow { metric, clean: c, recovered: r };
        let deltas = vec![
            row(
                "GPU run time p25 (min)",
                clean.fig3.gpu_runtime_min.quantile(0.25),
                recovered.fig3.gpu_runtime_min.quantile(0.25),
            ),
            row(
                "GPU run time median (min)",
                clean.fig3.gpu_runtime_min.median(),
                recovered.fig3.gpu_runtime_min.median(),
            ),
            row(
                "GPU run time p75 (min)",
                clean.fig3.gpu_runtime_min.quantile(0.75),
                recovered.fig3.gpu_runtime_min.quantile(0.75),
            ),
            row("SM util median (%)", clean.fig4.sm.median(), recovered.fig4.sm.median()),
            row("mem util median (%)", clean.fig4.mem.median(), recovered.fig4.mem.median()),
            row(
                "job-avg power median (W)",
                clean.fig9.avg_power.median(),
                recovered.fig9.avg_power.median(),
            ),
            row(
                "job-max power median (W)",
                clean.fig9.max_power.median(),
                recovered.fig9.max_power.median(),
            ),
            row(
                "mature job share",
                clean.fig15.share(LifecycleClass::Mature).job_share,
                recovered.fig15.share(LifecycleClass::Mature).job_share,
            ),
            row(
                "single-GPU job share",
                clean.fig13.row(SizeBucket::One).job_share,
                recovered.fig13.row(SizeBucket::One).job_share,
            ),
            row(
                "top-5% users' job share",
                clean.fig10.top5_job_share,
                recovered.fig10.top5_job_share,
            ),
        ];
        DataQualityFig { profile: profile.to_string(), injected, report, deltas, series }
    }

    /// Whether the ledger balances: every injected fault was detected,
    /// and every detected fault was either repaired or quarantined.
    pub fn balanced(&self) -> bool {
        self.report.balances_against(&self.injected)
    }

    /// Largest absolute headline deviation, percent.
    pub fn max_abs_delta_pct(&self) -> f64 {
        self.deltas.iter().map(|d| d.delta_pct().abs()).fold(0.0, f64::max)
    }

    /// Renders the ledgers and the delta table as text.
    pub fn render(&self) -> String {
        let mut s =
            format!("DataQuality — profile {} (corrupt -> ingest -> re-analyze):\n", self.profile);
        s.push_str("  injected faults:\n");
        for class in FaultClass::ALL {
            if self.injected.get(class) > 0 {
                s.push_str(&format!("    {:<18} {:>8}\n", class.label(), self.injected.get(class)));
            }
        }
        for line in self.report.render().lines() {
            s.push_str(&format!("  {line}\n"));
        }
        s.push_str(&format!("  ledger balanced: {}\n", if self.balanced() { "yes" } else { "NO" }));
        s.push_str("  headline statistics, clean vs recovered:\n");
        s.push_str("    metric                         clean  recovered    delta\n");
        for d in &self.deltas {
            s.push_str(&format!(
                "    {:<28} {:>8.2}  {:>9.2}  {:>+6.1}%\n",
                d.metric,
                d.clean,
                d.recovered,
                d.delta_pct()
            ));
        }
        if let Some(study) = &self.series {
            s.push_str(&format!(
                "  series micro-study: {} jobs, {} faults repaired ({} samples imputed, {} \
                 appended), mean active fraction {:.3} -> {:.3} (max |delta| {:.3})\n",
                study.jobs,
                study.repaired.total(),
                study.imputed_samples,
                study.appended_samples,
                study.mean_active_clean,
                study.mean_active_recovered,
                study.max_abs_active_delta
            ));
        }
        s
    }

    /// The recovered-vs-clean delta bars as an SVG document.
    pub fn to_svg(&self) -> String {
        let bars: Vec<(String, f64)> =
            self.deltas.iter().map(|d| (d.metric.to_string(), d.delta_pct())).collect();
        crate::svg::bar_chart(
            &format!("Data quality: recovered vs clean ({} profile)", self.profile),
            "recovered deviation from clean (%)",
            &bars,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::corrupt_and_ingest;
    use crate::testsupport::small_sim;
    use sc_obs::Obs;
    use sc_telemetry::corruption::DataQualityProfile;

    fn lossy_fig() -> DataQualityFig {
        let clean = &small_sim().dataset;
        let (out, injected) = corrupt_and_ingest(clean, DataQualityProfile::Lossy, 42, &Obs::off())
            .expect("lossy ingest succeeds");
        let clean_report = DatasetReport::try_from_dataset(clean).expect("clean pipeline");
        let recovered = DatasetReport::try_from_dataset(&out.dataset).expect("recovered pipeline");
        DataQualityFig::compute("lossy", injected, out.report, &clean_report, &recovered, None)
    }

    #[test]
    fn lossy_round_trip_balances_and_stays_close() {
        let fig = lossy_fig();
        assert!(fig.balanced(), "ledger must balance");
        // The repair pipeline's whole point: headline statistics land
        // near the clean values even under 10% window loss and 3%
        // missing epilogs.
        assert!(
            fig.max_abs_delta_pct() < 15.0,
            "max headline delta {:.1}%",
            fig.max_abs_delta_pct()
        );
    }

    #[test]
    fn render_and_svg_carry_the_ledger() {
        let fig = lossy_fig();
        let text = fig.render();
        assert!(text.contains("ledger balanced: yes"));
        assert!(text.contains("clean vs recovered"));
        let svg = fig.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("recovered deviation from clean"));
    }
}
