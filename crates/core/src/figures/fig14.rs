//! Fig. 14 — utilization balance across the GPUs of multi-GPU jobs,
//! with and without idle GPUs.

use crate::paper::fig14 as paper;
use crate::report::{format_cdf_points, Comparison};
use crate::view::GpuJobView;
use sc_stats::{coefficient_of_variation, Ecdf, StatsError};

/// SM threshold (%) below which a GPU counts as idle for panel (b).
const IDLE_GPU_SM_THRESHOLD: f64 = 0.5;

/// Fig. 14(a): cross-GPU CoV ECDFs over all GPUs of each multi-GPU job;
/// Fig. 14(b): the same with idle GPUs removed.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// Cross-GPU CoV of mean SM utilization, all GPUs.
    pub sm_cov_all: Ecdf,
    /// Cross-GPU CoV of mean memory utilization, all GPUs.
    pub mem_cov_all: Ecdf,
    /// Cross-GPU CoV of mean memory-size utilization, all GPUs.
    pub mem_size_cov_all: Ecdf,
    /// Cross-GPU CoV of mean SM utilization, active GPUs only.
    pub sm_cov_active: Ecdf,
    /// Cross-GPU CoV of mean memory utilization, active GPUs only.
    pub mem_cov_active: Ecdf,
    /// Cross-GPU CoV of mean memory-size utilization, active GPUs only.
    pub mem_size_cov_active: Ecdf,
    /// Fraction of multi-GPU jobs with at least half their GPUs idle.
    pub half_idle_fraction: f64,
}

impl Fig14 {
    /// Computes the figure over the multi-GPU jobs in `views`.
    ///
    /// # Panics
    ///
    /// Panics if there are no multi-GPU jobs.
    pub fn compute(views: &[GpuJobView<'_>]) -> Self {
        match Self::try_compute(views) {
            Ok(fig) => fig,
            Err(e) => panic!("fig14: {e}"),
        }
    }

    /// Computes the figure, returning a typed error when no multi-GPU
    /// jobs (or no jobs with ≥2 active GPUs) exist instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] when either panel has no
    /// sample.
    pub fn try_compute(views: &[GpuJobView<'_>]) -> Result<Self, StatsError> {
        let multi: Vec<&GpuJobView> = views.iter().filter(|v| v.per_gpu.len() > 1).collect();
        if multi.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut sm_all = Vec::new();
        let mut mem_all = Vec::new();
        let mut msz_all = Vec::new();
        let mut sm_act = Vec::new();
        let mut mem_act = Vec::new();
        let mut msz_act = Vec::new();
        let mut half_idle = 0usize;
        for v in &multi {
            let sm: Vec<f64> = v.per_gpu.iter().map(|g| g.sm_util.mean).collect();
            let mem: Vec<f64> = v.per_gpu.iter().map(|g| g.mem_util.mean).collect();
            let msz: Vec<f64> = v.per_gpu.iter().map(|g| g.mem_size_util.mean).collect();
            if let Ok(c) = coefficient_of_variation(&sm) {
                sm_all.push(c);
            }
            if let Ok(c) = coefficient_of_variation(&mem) {
                mem_all.push(c);
            }
            if let Ok(c) = coefficient_of_variation(&msz) {
                msz_all.push(c);
            }
            // The Fig. 14a pathology: half or more GPUs idle while the
            // rest work, which is what produces the very high CoV mass.
            // Fully idle jobs (development/IDE on every GPU) have zero
            // CoV and sit at the other end of the CDF.
            let idle = sm.iter().filter(|s| **s < IDLE_GPU_SM_THRESHOLD).count();
            if 2 * idle >= sm.len() && idle < sm.len() {
                half_idle += 1;
            }
            // Active-only view.
            let keep: Vec<usize> =
                (0..sm.len()).filter(|&i| sm[i] >= IDLE_GPU_SM_THRESHOLD).collect();
            if keep.len() >= 2 {
                let pick = |d: &[f64]| keep.iter().map(|&i| d[i]).collect::<Vec<f64>>();
                if let Ok(c) = coefficient_of_variation(&pick(&sm)) {
                    sm_act.push(c);
                }
                if let Ok(c) = coefficient_of_variation(&pick(&mem)) {
                    mem_act.push(c);
                }
                if let Ok(c) = coefficient_of_variation(&pick(&msz)) {
                    msz_act.push(c);
                }
            }
        }
        Ok(Fig14 {
            sm_cov_all: Ecdf::new(sm_all)?,
            mem_cov_all: Ecdf::new(mem_all)?,
            mem_size_cov_all: Ecdf::new(msz_all)?,
            sm_cov_active: Ecdf::new(sm_act)?,
            mem_cov_active: Ecdf::new(mem_act)?,
            mem_size_cov_active: Ecdf::new(msz_act)?,
            half_idle_fraction: half_idle as f64 / multi.len() as f64,
        })
    }

    /// Paper-vs-measured rows.
    pub fn comparisons(&self) -> Vec<Comparison> {
        vec![
            Comparison::new(
                "multi-GPU jobs with half+ GPUs idle",
                paper::HIGH_COV_FRACTION,
                self.half_idle_fraction,
                "frac",
            ),
            Comparison::new(
                "jobs with near-zero cross-GPU SM CoV (<20%)",
                paper::LOW_COV_FRACTION,
                self.sm_cov_all.fraction_at_most(20.0),
                "frac",
            ),
        ]
    }

    /// Renders both panels as text.
    pub fn render(&self) -> String {
        format!(
            "Fig. 14(a) cross-GPU CoV, all GPUs (%):\n  SM: {}\n  Memory: {}\n  MemSize: {}\n\
             Fig. 14(b) cross-GPU CoV, idle GPUs removed (%):\n  SM: {}\n  Memory: {}\n  \
             MemSize: {}\n  (half-or-more idle: {:.1}% of multi-GPU jobs)\n",
            format_cdf_points(&self.sm_cov_all.curve(14), 14),
            format_cdf_points(&self.mem_cov_all.curve(14), 14),
            format_cdf_points(&self.mem_size_cov_all.curve(14), 14),
            format_cdf_points(&self.sm_cov_active.curve(14), 14),
            format_cdf_points(&self.mem_cov_active.curve(14), 14),
            format_cdf_points(&self.mem_size_cov_active.curve(14), 14),
            self.half_idle_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn forty_percent_of_multi_gpu_jobs_strand_gpus() {
        let views = small_views();
        let fig = Fig14::compute(&views);
        assert!(
            (fig.half_idle_fraction - 0.40).abs() < 0.15,
            "half-idle fraction {}",
            fig.half_idle_fraction
        );
    }

    #[test]
    fn removing_idle_gpus_collapses_the_cov() {
        let views = small_views();
        let fig = Fig14::compute(&views);
        // "if only the active GPUs of the job are considered … the CoV
        // tends to be much lower."
        assert!(
            fig.sm_cov_active.median() < fig.sm_cov_all.median(),
            "active {} vs all {}",
            fig.sm_cov_active.median(),
            fig.sm_cov_all.median()
        );
        assert!(fig.sm_cov_active.median() < 25.0, "active CoV {}", fig.sm_cov_active.median());
    }

    #[test]
    fn distribution_is_bimodal() {
        let views = small_views();
        let fig = Fig14::compute(&views);
        // Roughly half the jobs near zero CoV, a large cluster very high.
        assert!(fig.sm_cov_all.fraction_at_most(25.0) > 0.3);
        assert!(fig.sm_cov_all.fraction_above(80.0) > 0.2);
        assert!(fig.render().contains("Fig. 14(b)"));
        assert_eq!(fig.comparisons().len(), 2);
    }
}
