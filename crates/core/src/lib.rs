//! The Supercloud characterization pipeline — the primary contribution
//! of "AI-Enabling Workloads on Large-Scale GPU-Accelerated System"
//! (Li et al., HPCA 2022), reproduced in Rust.
//!
//! Layered on the substrates ([`sc_stats`], [`sc_telemetry`],
//! [`sc_workload`], [`sc_cluster`]), this crate provides:
//!
//! - [`classify`]: the mature / exploratory / development / IDE
//!   life-cycle classification from observable exit statuses (Sec. VI).
//! - [`mod@ingest`]: the hardened ingest stage — detection, repair and
//!   quarantine of collection faults (with [`sc_telemetry::corruption`]
//!   as the matching seeded injector).
//! - [`figures`]: one module per paper figure, each a pure function of
//!   the simulated dataset returning the figure's series plus
//!   paper-vs-measured [`report::Comparison`] rows.
//! - [`pipeline::AnalysisReport`]: the whole evaluation in one call.
//! - [`paper`]: every number the paper reports, as cited constants.
//!
//! # Example
//!
//! ```no_run
//! use sc_cluster::Simulation;
//! use sc_core::AnalysisReport;
//! use sc_workload::{Trace, WorkloadSpec};
//!
//! // Full 125-day reproduction (takes a couple of minutes):
//! let trace = Trace::generate(&WorkloadSpec::supercloud(), 42);
//! let out = Simulation::supercloud().run(&trace);
//! let report = AnalysisReport::from_sim(&out);
//! println!("{}", report.render_text());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface degenerate inputs as typed errors, not
// panics; tests are exempt (unwrap there is an assertion).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod arrivals;
pub mod classify;
pub mod facility;
pub mod figures;
pub mod ingest;
pub mod paper;
pub mod pipeline;
pub mod query;
pub mod reliability;
pub mod report;
pub mod svg;
pub mod userstats;
pub mod view;
pub mod workflow;

pub use classify::{classify_exit, classify_record};
pub use figures::{
    CheckpointSweepFig, ClassifierFig, ClusterTimelineFig, DataQualityFig, GoodputFig,
    GoodputFrontierFig, GrowthStudyFig, ReliabilitySizeFig, StreamingTelemetryFig,
};
pub use ingest::{
    corrupt_and_ingest, ingest, DataQualityError, IngestOutput, IngestReport, Provenance,
    QuarantineAction, QuarantineEntry,
};
pub use pipeline::{AnalysisReport, DatasetReport, PipelineError};
pub use query::{FigureId, PointStat, QueryKey};
pub use reliability::{run_reliability_study, GrowthTiming, ReliabilityConfig, ReliabilityReport};
pub use report::Comparison;
pub use userstats::{user_stats, UserStats};
pub use view::{gpu_views, GpuJobView};
pub use workflow::WorkflowChain;

#[cfg(test)]
pub(crate) mod testsupport {
    //! Shared, lazily-computed simulation output for figure tests.
    //! Computing one 2%-scale trace once keeps the test suite fast.

    use crate::userstats::{user_stats, UserStats};
    use crate::view::{gpu_views, GpuJobView};
    use sc_cluster::{SimConfig, SimOutput, Simulation};
    use sc_workload::{Trace, WorkloadSpec};
    use std::sync::OnceLock;

    static SIM: OnceLock<SimOutput> = OnceLock::new();

    /// A 2%-scale Supercloud simulation, computed once per test run.
    pub fn small_sim() -> &'static SimOutput {
        SIM.get_or_init(|| {
            let mut spec = WorkloadSpec::supercloud().scaled(0.02);
            // User-level figures (10–12, 17) need a real population, not
            // the 8 users a straight 2% scale would leave.
            spec.users = 64;
            let trace = Trace::generate(&spec, 20_220_701);
            Simulation::new(SimConfig { detailed_series_jobs: 120, ..Default::default() })
                .run(&trace)
        })
    }

    /// GPU-job views over [`small_sim`].
    pub fn small_views() -> Vec<GpuJobView<'static>> {
        gpu_views(&small_sim().dataset)
    }

    /// Per-user statistics over [`small_sim`].
    pub fn small_user_stats() -> Vec<UserStats> {
        user_stats(&small_views())
    }
}
