//! Facility-level power accounting.
//!
//! Sec. III: "the Supercloud system has enough power to support all
//! GPUs at their maximum possible power, and most of this power goes
//! unused." This module reconstructs the cluster's aggregate GPU power
//! draw over time from the job records (each contributes its average
//! draw across its span) and reports exactly how much of the
//! provisioned envelope was ever touched.

use crate::view::GpuJobView;
use serde::{Deserialize, Serialize};

/// The facility power reconstruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FacilityPower {
    /// Provisioned GPU power envelope, watts (448 × 300 W).
    pub provisioned_w: f64,
    /// Idle floor of the whole fleet, watts.
    pub fleet_idle_w: f64,
    /// Time-averaged aggregate draw, watts (includes the idle fleet).
    pub mean_draw_w: f64,
    /// Peak aggregate draw, watts.
    pub peak_draw_w: f64,
    /// Fraction of the provisioned envelope used on average.
    pub mean_utilization: f64,
    /// Fraction of the provisioned envelope used at the peak instant.
    pub peak_utilization: f64,
    /// The `(time, watts)` breakpoints of the reconstructed series
    /// (change points only).
    pub series: Vec<(f64, f64)>,
}

/// Reconstructs facility power from job views.
///
/// Each job contributes `gpus × (avg_power − idle)` above the fleet's
/// idle floor for its `[start, end)` span; unallocated GPUs idle at
/// `idle_w`. The result is exact for the piecewise-constant
/// approximation of per-job draw by its average.
///
/// # Panics
///
/// Panics if `views` is empty or parameters are non-positive.
pub fn reconstruct(
    views: &[GpuJobView<'_>],
    total_gpus: u32,
    tdp_w: f64,
    idle_w: f64,
) -> FacilityPower {
    assert!(!views.is_empty(), "need jobs");
    assert!(total_gpus > 0 && tdp_w > 0.0 && idle_w >= 0.0, "invalid parameters");
    let fleet_idle = total_gpus as f64 * idle_w;
    // Sweep line over start/end events.
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(views.len() * 2);
    for v in views {
        let delta = v.sched.gpus_requested as f64 * (v.agg.power_w.mean - idle_w).max(0.0);
        events.push((v.sched.start_time, delta));
        events.push((v.sched.end_time, -delta));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let t0 = events.first().expect("non-empty").0;
    let t1 = events.last().expect("non-empty").0;
    let mut series = Vec::new();
    let mut level = fleet_idle;
    let mut energy = 0.0;
    let mut peak = fleet_idle;
    let mut prev_t = t0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        energy += level * (t - prev_t);
        // Fold all simultaneous events.
        while i < events.len() && events[i].0 == t {
            level += events[i].1;
            i += 1;
        }
        level = level.max(fleet_idle);
        series.push((t, level));
        peak = peak.max(level);
        prev_t = t;
    }
    let span = (t1 - t0).max(1e-9);
    let provisioned = total_gpus as f64 * tdp_w;
    let mean = energy / span;
    FacilityPower {
        provisioned_w: provisioned,
        fleet_idle_w: fleet_idle,
        mean_draw_w: mean,
        peak_draw_w: peak,
        mean_utilization: mean / provisioned,
        peak_utilization: peak / provisioned,
        series,
    }
}

impl FacilityPower {
    /// Renders the summary.
    pub fn render(&self) -> String {
        format!(
            "Facility GPU power:\n  provisioned: {:.0} kW; fleet idle floor: {:.0} kW\n  \
             mean draw: {:.0} kW ({:.1}% of envelope); peak draw: {:.0} kW ({:.1}%)\n  \
             → headroom for over-provisioning: {:.0} kW never used even at peak\n",
            self.provisioned_w / 1e3,
            self.fleet_idle_w / 1e3,
            self.mean_draw_w / 1e3,
            self.mean_utilization * 100.0,
            self.peak_draw_w / 1e3,
            self.peak_utilization * 100.0,
            (self.provisioned_w - self.peak_draw_w) / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_views;

    #[test]
    fn power_envelope_is_mostly_unused() {
        let views = small_views();
        let f = reconstruct(&views, 448, 300.0, 20.0);
        // The paper's headline: the envelope is provisioned for 134 kW;
        // actual draw never comes close.
        assert!(f.peak_utilization < 0.6, "peak utilization {}", f.peak_utilization);
        assert!(f.mean_utilization < f.peak_utilization);
        assert!(f.mean_draw_w >= f.fleet_idle_w);
        assert!((f.provisioned_w - 134_400.0).abs() < 1.0);
    }

    #[test]
    fn series_is_time_ordered_and_bounded_below_by_idle() {
        let views = small_views();
        let f = reconstruct(&views, 448, 300.0, 20.0);
        for w in f.series.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for (_, p) in &f.series {
            assert!(*p >= f.fleet_idle_w - 1e-6);
        }
    }

    #[test]
    fn render_reports_headroom() {
        let views = small_views();
        let text = reconstruct(&views, 448, 300.0, 20.0).render();
        assert!(text.contains("headroom"));
    }
}
