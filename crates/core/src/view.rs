//! Pre-joined per-job views the figure modules consume.

use crate::classify::classify_record;
use sc_telemetry::aggregate::GpuAggregates;
use sc_telemetry::dataset::Dataset;
use sc_telemetry::record::{SchedulerRecord, UserId};
use sc_workload::LifecycleClass;
use std::collections::BTreeMap;

/// One analyzed GPU job: scheduler facts, job-level telemetry, per-GPU
/// telemetry, and the inferred lifecycle class.
#[derive(Debug, Clone)]
pub struct GpuJobView<'a> {
    /// Scheduler-side record.
    pub sched: &'a SchedulerRecord,
    /// Job-level aggregates (averaged over GPUs, Sec. II methodology).
    pub agg: GpuAggregates,
    /// Per-GPU aggregates.
    pub per_gpu: &'a [GpuAggregates],
    /// Lifecycle class inferred from the exit status.
    pub class: LifecycleClass,
}

impl GpuJobView<'_> {
    /// Run time in minutes.
    pub fn run_minutes(&self) -> f64 {
        self.sched.run_time() / 60.0
    }

    /// GPU hours consumed.
    pub fn gpu_hours(&self) -> f64 {
        self.sched.gpu_hours()
    }
}

/// Builds the view of every analyzed GPU job (post-filter, telemetry
/// present). Per-record work (job-level aggregation, classification)
/// runs on the `sc-par` thread budget; record order is preserved, so
/// the result is identical at any thread count.
pub fn gpu_views(dataset: &Dataset) -> Vec<GpuJobView<'_>> {
    let records: Vec<_> = dataset.gpu_jobs().collect();
    sc_par::par_map(&records, |r| {
        let gpu = r.gpu.as_ref()?;
        Some(GpuJobView {
            sched: &r.sched,
            agg: gpu.job_level(),
            per_gpu: &gpu.per_gpu,
            class: classify_record(&r.sched),
        })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Groups GPU-job views by user, ordered by user id for determinism.
pub fn views_by_user<'a, 'b>(
    views: &'b [GpuJobView<'a>],
) -> BTreeMap<UserId, Vec<&'b GpuJobView<'a>>> {
    let mut map: BTreeMap<UserId, Vec<&GpuJobView>> = BTreeMap::new();
    for v in views {
        map.entry(v.sched.user).or_default().push(v);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::small_sim;

    #[test]
    fn views_cover_analyzed_gpu_jobs() {
        let out = small_sim();
        let views = gpu_views(&out.dataset);
        assert_eq!(views.len(), out.dataset.gpu_jobs().count());
        for v in &views {
            assert!(v.sched.run_time() >= 30.0);
            assert!(!v.per_gpu.is_empty());
            assert!(v.run_minutes() > 0.0);
        }
    }

    #[test]
    fn user_grouping_partitions_views() {
        let out = small_sim();
        let views = gpu_views(&out.dataset);
        let by_user = views_by_user(&views);
        let total: usize = by_user.values().map(Vec::len).sum();
        assert_eq!(total, views.len());
    }
}
