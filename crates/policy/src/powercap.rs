//! Closed-loop per-GPU power-cap enforcement.
//!
//! The offline [`sc_opportunity::powercap::OverProvisionStudy`] predicts,
//! from recorded aggregates, how much each job would slow under a cap.
//! This policy applies the *same* DVFS model inside the event loop: at
//! dispatch it scores the job's ground-truth power profile against the
//! cap, stretches the run by the worst per-GPU slowdown, and tags the
//! attempt so its synthesized telemetry reports capped boards. The
//! acceptance suite checks the closed-loop outcome lands within a
//! documented band of the offline prediction.

use sc_cluster::{Allocation, Dispatch, Policy, PolicyDecision};
use sc_opportunity::powercap::job_slowdown;
use sc_telemetry::gpu_power::V100_IDLE_W;
use sc_workload::JobSpec;

/// Enforces one facility-wide per-GPU power cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCapPolicy {
    /// The enforced per-GPU cap, watts.
    pub cap_w: f64,
}

impl PowerCapPolicy {
    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics unless `cap_w` is positive.
    pub fn new(cap_w: f64) -> Self {
        assert!(cap_w > 0.0, "power cap must be positive watts");
        PowerCapPolicy { cap_w }
    }
}

impl Policy for PowerCapPolicy {
    fn name(&self) -> &'static str {
        "powercap"
    }

    fn dispatch(&mut self, job: &JobSpec, _alloc: &Allocation, _now: f64) -> Dispatch {
        // CPU jobs draw no board power; nothing to cap.
        let Some(truth) = job.ground_truth() else { return Dispatch::default() };
        // Score the same analytic aggregates the epilog will record, over
        // the job's natural (uncapped) run — matching what the offline
        // study sees in the baseline arm.
        let run = job.outcome.run_time(job.time_limit).max(60.0);
        let slowdown = truth
            .analytic_aggregates(run)
            .iter()
            .map(|a| job_slowdown(a.power_w.mean, a.power_w.max, V100_IDLE_W, self.cap_w))
            .fold(1.0, f64::max);
        Dispatch {
            stretch: slowdown,
            power_cap_w: Some(self.cap_w),
            decision: (slowdown > 1.0 + 1e-9)
                .then_some(PolicyDecision::CapThrottle { cap_w: self.cap_w, slowdown }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_telemetry::record::{JobId, SubmissionInterface, UserId};
    use sc_workload::{JobSpec, PlannedOutcome, ResourceLevels, TruthParams};

    fn gpu_job(sm: f64) -> JobSpec {
        JobSpec {
            job_id: JobId(7),
            user: UserId(0),
            arrival: 0.0,
            interface: SubmissionInterface::Other,
            gpus: 1,
            cpus: 8,
            mem_gib: 32.0,
            time_limit: 7200.0,
            class: None,
            outcome: PlannedOutcome::Complete { work_secs: 3600.0 },
            archetype: None,
            truth_params: Some(TruthParams {
                duration: 4000.0,
                active_fraction: 0.95,
                mean_levels: ResourceLevels {
                    sm,
                    mem: 60.0,
                    mem_size: 50.0,
                    pcie_tx: 200.0,
                    pcie_rx: 200.0,
                },
                ..Default::default()
            }),
            idle_gpus: 0,
            truth_seed: 42,
            checkpointable: true,
            max_restarts: 0,
        }
    }

    #[test]
    fn hot_job_throttles_under_a_tight_cap() {
        let mut p = PowerCapPolicy::new(120.0);
        let d = p.dispatch(&gpu_job(90.0), &Allocation::default(), 0.0);
        assert!(d.stretch > 1.0, "a 90% SM job must throttle under 120 W, got {}", d.stretch);
        assert_eq!(d.power_cap_w, Some(120.0));
        assert!(matches!(d.decision, Some(PolicyDecision::CapThrottle { .. })));
    }

    #[test]
    fn generous_cap_leaves_jobs_alone() {
        let mut p = PowerCapPolicy::new(300.0);
        let d = p.dispatch(&gpu_job(30.0), &Allocation::default(), 0.0);
        assert_eq!(d.stretch, 1.0);
        // Telemetry is still tagged: a capped facility caps every board.
        assert_eq!(d.power_cap_w, Some(300.0));
        assert!(d.decision.is_none());
    }

    #[test]
    fn cpu_jobs_pass_through() {
        let mut p = PowerCapPolicy::new(120.0);
        let mut job = gpu_job(90.0);
        job.gpus = 0;
        job.truth_params = None;
        assert_eq!(p.dispatch(&job, &Allocation::default(), 0.0), Dispatch::default());
    }
}
