//! Closing the classification loop: route on *predicted* labels.
//!
//! Every other policy in this crate is an oracle — it reads the spec's
//! ground-truth class or archetype, which a real scheduler never has.
//! [`PredictedClassPolicy`] wraps an inner [`Policy`] and rewrites each
//! job's `archetype` (and the lifecycle `class` derived from it) to
//! what a trained [`ArchetypePredictor`] infers from the job's
//! telemetry, before any hook of the inner policy sees the job. The
//! inner policy's gating rule is untouched, so an A/B between the
//! oracle-label arm and the wrapped arm isolates exactly the cost of
//! classifier error.
//!
//! Predictions are memoized per job id (feature extraction streams up
//! to an hour of telemetry) and computed lazily at the first hook that
//! sees the job — a pure function of the job spec, so the policy stays
//! byte-identical at any thread budget.

use std::collections::HashMap;

use sc_cluster::{Allocation, ClusterSpec, ClusterState, Dispatch, Policy};
use sc_learn::ArchetypePredictor;
use sc_opportunity::tiering::RoutingPolicy;
use sc_telemetry::record::JobId;
use sc_workload::{JobSpec, LifecycleClass, WorkloadArchetype};

use crate::coshare::CosharePolicy;
use crate::tiered::TieredPolicy;

/// The lifecycle class a predicted archetype implies, for routing
/// policies that read `job.class`: periodic trainers and plateau jobs
/// behave like mature work, bursty jobs like development, idle-heavy
/// sessions like IDEs.
pub fn lifecycle_for_archetype(archetype: WorkloadArchetype) -> LifecycleClass {
    match archetype {
        WorkloadArchetype::CnnPeriodic | WorkloadArchetype::TransformerPlateau => {
            LifecycleClass::Mature
        }
        WorkloadArchetype::BurstyDev => LifecycleClass::Development,
        WorkloadArchetype::IdleHeavy => LifecycleClass::Ide,
    }
}

/// Adapter that feeds an inner policy predicted labels instead of
/// ground truth.
#[derive(Debug)]
pub struct PredictedClassPolicy {
    inner: Box<dyn Policy>,
    predictor: ArchetypePredictor,
    name: &'static str,
    predictions: HashMap<JobId, Option<WorkloadArchetype>>,
}

impl PredictedClassPolicy {
    /// Wraps an arbitrary inner policy under `name`.
    pub fn wrapping(
        inner: Box<dyn Policy>,
        predictor: ArchetypePredictor,
        name: &'static str,
    ) -> Self {
        PredictedClassPolicy { inner, predictor, name, predictions: HashMap::new() }
    }

    /// The `--policy coshare-predicted` arm: label-gated co-sharing on
    /// predicted archetypes.
    pub fn coshare(predictor: ArchetypePredictor) -> Self {
        PredictedClassPolicy::wrapping(
            Box::new(CosharePolicy::label_gated()),
            predictor,
            "coshare-predicted",
        )
    }

    /// Tier routing on predicted lifecycle classes.
    pub fn tiered(predictor: ArchetypePredictor, cluster: ClusterSpec) -> Self {
        PredictedClassPolicy::wrapping(
            Box::new(TieredPolicy::new(RoutingPolicy::DemoteNonMature, cluster)),
            predictor,
            "tiered-predicted",
        )
    }

    /// The job as the inner policy sees it: archetype and class
    /// replaced by the (memoized) prediction. CPU jobs pass through
    /// unchanged.
    fn patched(&mut self, job: &JobSpec) -> JobSpec {
        let predicted = match self.predictions.get(&job.job_id) {
            Some(p) => *p,
            None => {
                let p = self.predictor.predict_job(job);
                self.predictions.insert(job.job_id, p);
                p
            }
        };
        let mut patched = job.clone();
        if let Some(archetype) = predicted {
            patched.archetype = Some(archetype);
            patched.class = Some(lifecycle_for_archetype(archetype));
        }
        patched
    }
}

impl Policy for PredictedClassPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn admit(&mut self, job: &JobSpec, now: f64) {
        let patched = self.patched(job);
        self.inner.admit(&patched, now);
    }

    fn place(&mut self, job: &JobSpec, cluster: &ClusterState) -> Option<Allocation> {
        let patched = self.patched(job);
        self.inner.place(&patched, cluster)
    }

    fn dispatch(&mut self, job: &JobSpec, alloc: &Allocation, now: f64) -> Dispatch {
        let patched = self.patched(job);
        self.inner.dispatch(&patched, alloc, now)
    }

    fn tick(&mut self, now: f64, cluster: &ClusterState) {
        self.inner.tick(now, cluster);
    }

    fn release(&mut self, job: JobId, now: f64) {
        self.inner.release(job, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_learn::ClassifierConfig;
    use sc_workload::{Trace, WorkloadSpec};

    fn trained() -> ArchetypePredictor {
        let trace = Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 5);
        ArchetypePredictor::train(&trace, &ClassifierConfig::default()).0
    }

    #[test]
    fn lifecycle_mapping_covers_all_archetypes() {
        use WorkloadArchetype::*;
        assert_eq!(lifecycle_for_archetype(CnnPeriodic), LifecycleClass::Mature);
        assert_eq!(lifecycle_for_archetype(TransformerPlateau), LifecycleClass::Mature);
        assert_eq!(lifecycle_for_archetype(BurstyDev), LifecycleClass::Development);
        assert_eq!(lifecycle_for_archetype(IdleHeavy), LifecycleClass::Ide);
    }

    #[test]
    fn patched_jobs_carry_predicted_labels() {
        let trace = Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 5);
        let mut p = PredictedClassPolicy::coshare(trained());
        assert_eq!(p.name(), "coshare-predicted");
        let gpu = trace.gpu_jobs().next().expect("gpu job").clone();
        let patched = p.patched(&gpu);
        let archetype = patched.archetype.expect("GPU jobs get a prediction");
        assert_eq!(patched.class, Some(lifecycle_for_archetype(archetype)));
        // Memoized: a second patch is identical.
        assert_eq!(p.patched(&gpu), patched);
        // Untouched fields pass through.
        assert_eq!(patched.truth_seed, gpu.truth_seed);
        assert_eq!(patched.outcome, gpu.outcome);
    }

    #[test]
    fn cpu_jobs_pass_through_unchanged() {
        let trace = Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 5);
        let mut p = PredictedClassPolicy::coshare(trained());
        let cpu = trace.jobs().iter().find(|j| j.truth_params.is_none()).expect("cpu job");
        assert_eq!(&p.patched(cpu), cpu);
    }
}
