//! Closed-loop tier routing by lifecycle class.
//!
//! The simulator's built-in two-tier support routes by *interface*
//! (interactive sessions go slow). The paper's recommendation routes by
//! *lifecycle class* — non-mature work tolerates slower GPUs. This
//! policy overrides placement with
//! [`sc_cluster::ClusterState::try_place_gpu_routed`] using an
//! [`sc_opportunity::tiering::RoutingPolicy`], and reports a
//! `tier_route` decision whenever the class-based route differs from the
//! interface-based default. The slow tier's run-time stretch is the
//! simulator's own physics (`active/speed + (1 - active)`), identical in
//! both A/B arms.
//!
//! The simulator knows each job's true class (it planned the outcome);
//! a real scheduler would use a predictor. This is the oracle upper
//! bound, as in the paper's offline study.

use sc_cluster::{Allocation, ClusterSpec, ClusterState, Dispatch, Policy, PolicyDecision};
use sc_opportunity::tiering::RoutingPolicy;
use sc_telemetry::record::SubmissionInterface;
use sc_workload::JobSpec;

/// Routes GPU jobs between tiers by lifecycle class.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredPolicy {
    /// Which classes go slow.
    pub routing: RoutingPolicy,
    spec: ClusterSpec,
}

impl TieredPolicy {
    /// Builds the policy over the cluster spec the simulation runs with
    /// (the spec's slow-tier layout decides which nodes are slow). With
    /// no slow tier configured the policy is a no-op.
    pub fn new(routing: RoutingPolicy, spec: ClusterSpec) -> Self {
        TieredPolicy { routing, spec }
    }
}

impl Policy for TieredPolicy {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn place(&mut self, job: &JobSpec, cluster: &ClusterState) -> Option<Allocation> {
        if job.gpus == 0 || self.spec.slow_tier.is_none() {
            return None;
        }
        let demote = job.class.is_some_and(|c| self.routing.demotes(c));
        // Preferred tier full -> None, and the scheduler falls back to
        // the cluster's interface-based routing (spillover, not starve).
        cluster.try_place_gpu_routed(job, demote)
    }

    fn dispatch(&mut self, job: &JobSpec, alloc: &Allocation, _now: f64) -> Dispatch {
        if job.gpus == 0 || self.spec.slow_tier.is_none() {
            return Dispatch::default();
        }
        let slow = alloc.parts.iter().any(|p| self.spec.is_slow_node(p.node.0));
        let default_slow = job.interface == SubmissionInterface::Interactive;
        if slow == default_slow {
            return Dispatch::default();
        }
        Dispatch { decision: Some(PolicyDecision::TierRoute { slow }), ..Dispatch::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cluster::SlowTierSpec;
    use sc_telemetry::record::{JobId, UserId};
    use sc_workload::{LifecycleClass, PlannedOutcome};

    fn two_tier_spec() -> ClusterSpec {
        let mut spec = ClusterSpec::supercloud();
        spec.slow_tier = Some(SlowTierSpec { nodes: 32, speed: 0.5 });
        spec
    }

    fn job(class: LifecycleClass) -> JobSpec {
        JobSpec {
            job_id: JobId(1),
            user: UserId(0),
            arrival: 0.0,
            interface: SubmissionInterface::Other,
            gpus: 1,
            cpus: 4,
            mem_gib: 16.0,
            time_limit: 3600.0,
            class: Some(class),
            outcome: PlannedOutcome::Complete { work_secs: 600.0 },
            archetype: None,
            truth_params: None,
            idle_gpus: 0,
            truth_seed: 0,
            checkpointable: false,
            max_restarts: 0,
        }
    }

    #[test]
    fn development_jobs_go_slow_and_report_the_route() {
        let spec = two_tier_spec();
        let mut p = TieredPolicy::new(RoutingPolicy::DemoteNonMature, spec.clone());
        let cluster = ClusterState::new(spec.clone());
        let dev = job(LifecycleClass::Development);
        let alloc = p.place(&dev, &cluster).expect("slow tier has room");
        assert!(spec.is_slow_node(alloc.parts[0].node.0), "non-mature work is demoted");
        let d = p.dispatch(&dev, &alloc, 0.0);
        assert_eq!(d.decision, Some(PolicyDecision::TierRoute { slow: true }));
        assert_eq!(d.stretch, 1.0, "the simulator's tier physics applies the slowdown");
    }

    #[test]
    fn mature_jobs_stay_fast_without_a_decision() {
        let spec = two_tier_spec();
        let mut p = TieredPolicy::new(RoutingPolicy::DemoteNonMature, spec.clone());
        let cluster = ClusterState::new(spec.clone());
        let mature = job(LifecycleClass::Mature);
        let alloc = p.place(&mature, &cluster).expect("fast tier has room");
        assert!(!spec.is_slow_node(alloc.parts[0].node.0));
        assert_eq!(p.dispatch(&mature, &alloc, 0.0), Dispatch::default());
    }

    #[test]
    fn single_tier_cluster_is_a_no_op() {
        let spec = ClusterSpec::supercloud();
        let mut p = TieredPolicy::new(RoutingPolicy::DemoteNonMature, spec.clone());
        let cluster = ClusterState::new(spec.clone());
        let dev = job(LifecycleClass::Development);
        assert!(p.place(&dev, &cluster).is_none());
    }
}
