//! Closed-loop scheduling policies and the deterministic A/B harness.
//!
//! The paper's Section VII opportunity analyses (power capping, GPU
//! sharing, tier routing) are *offline* what-ifs scored against the
//! measured dataset. This crate closes the loop: each opportunity
//! becomes a [`sc_cluster::Policy`] that rides inside the discrete-event
//! loop and changes what the simulated cluster actually does, and
//! [`PolicyExperiment`] replays the *same* seeded trace twice — once as
//! the production baseline, once with the policy — to measure the deltas
//! the analytic models only predict.
//!
//! - [`PowerCapPolicy`]: per-GPU power-cap enforcement; capped jobs
//!   stretch by the [`sc_opportunity::powercap`] DVFS slowdown model and
//!   report capped telemetry.
//! - [`CosharePolicy`]: packs predicted-low-utilization single-GPU jobs
//!   two per GPU, with interference drawn from the
//!   [`sc_opportunity::colocation`] phase-overlap model.
//! - [`TieredPolicy`]: routes jobs between fast and slow tiers by
//!   lifecycle class using [`sc_opportunity::tiering::RoutingPolicy`].
//! - [`PredictedClassPolicy`]: wraps any of the above and replaces each
//!   job's ground-truth labels with an `sc-learn` classifier's
//!   predictions, so an A/B against the oracle-label arm isolates the
//!   cost of classifier error.
//!
//! Every policy is a pure function of the simulation state it observes
//! (ground truth is regenerated from per-job seeds), so policy runs are
//! byte-identical at any `sc_par` thread budget.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coshare;
pub mod experiment;
pub mod powercap;
pub mod predicted;
pub mod tiered;

pub use coshare::{shareable_archetype, CosharePolicy, ShareGate};
pub use experiment::{ExperimentResult, PolicyExperiment};
pub use powercap::PowerCapPolicy;
pub use predicted::{lifecycle_for_archetype, PredictedClassPolicy};
pub use tiered::TieredPolicy;

use sc_cluster::{ClusterSpec, Policy};
use sc_opportunity::tiering::RoutingPolicy;

/// A parsed `--policy` selection, as accepted by `repro_figures`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// No policy: the A/B harness runs two identical baselines.
    Off,
    /// Enforce a per-GPU power cap, watts.
    PowerCap {
        /// The cap, watts.
        cap_w: f64,
    },
    /// Pack low-utilization single-GPU jobs two per GPU.
    Coshare,
    /// Route non-mature classes to a slow tier (the harness gives both
    /// arms the same two-tier hardware so only routing differs).
    Tiered,
    /// Label-gated co-sharing driven by a classifier's *predicted*
    /// archetypes instead of ground truth. The experiment harness also
    /// runs the oracle-label arm so the report can show what classifier
    /// error costs.
    CosharePredicted,
}

impl PolicySpec {
    /// The standard what-if arms a query service exposes: the power cap
    /// that actually bites this workload (mean board power sits far
    /// below TDP, so 250 W throttles nothing), co-sharing, and tier
    /// routing. [`PolicySpec::Off`] is excluded — an off arm is two
    /// identical baselines, not a what-if.
    pub const STANDARD_ARMS: [PolicySpec; 3] =
        [PolicySpec::PowerCap { cap_w: 150.0 }, PolicySpec::Coshare, PolicySpec::Tiered];

    /// Parses a CLI selector: `off`, `powercap:<watts>`, `coshare`, or
    /// `tiered`.
    pub fn parse(s: &str) -> Result<PolicySpec, String> {
        match s {
            "off" => Ok(PolicySpec::Off),
            "coshare" => Ok(PolicySpec::Coshare),
            "coshare-predicted" => Ok(PolicySpec::CosharePredicted),
            "tiered" => Ok(PolicySpec::Tiered),
            _ => {
                if let Some(w) = s.strip_prefix("powercap:") {
                    let cap_w: f64 =
                        w.parse().map_err(|_| format!("bad watts in --policy {s:?}"))?;
                    if !cap_w.is_finite() || cap_w <= 0.0 {
                        return Err(format!("--policy powercap needs positive watts, got {w}"));
                    }
                    Ok(PolicySpec::PowerCap { cap_w })
                } else {
                    Err(format!(
                        "unknown policy {s:?}: expected off | powercap:<watts> | coshare | \
                         coshare-predicted | tiered"
                    ))
                }
            }
        }
    }

    /// Display label (`powercap:250` style; watts rounded).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Off => "off".to_string(),
            PolicySpec::PowerCap { cap_w } => format!("powercap:{}", cap_w.round() as i64),
            PolicySpec::Coshare => "coshare".to_string(),
            PolicySpec::CosharePredicted => "coshare-predicted".to_string(),
            PolicySpec::Tiered => "tiered".to_string(),
        }
    }

    /// Builds the policy object, or `None` for [`PolicySpec::Off`].
    ///
    /// `cluster` must be the spec the simulation will actually run with
    /// (tier routing reads its slow-tier layout).
    ///
    /// # Panics
    ///
    /// Panics for [`PolicySpec::CosharePredicted`], which needs a trace
    /// to train its classifier on — use
    /// [`PolicyExperiment::run_observed`], which trains the predictor
    /// and runs the oracle arm alongside.
    pub fn build(&self, cluster: &ClusterSpec) -> Option<Box<dyn Policy>> {
        match *self {
            PolicySpec::Off => None,
            PolicySpec::PowerCap { cap_w } => Some(Box::new(PowerCapPolicy::new(cap_w))),
            PolicySpec::Coshare => Some(Box::new(CosharePolicy::default())),
            PolicySpec::CosharePredicted => {
                panic!("coshare-predicted trains on a trace; run it through PolicyExperiment")
            }
            PolicySpec::Tiered => {
                Some(Box::new(TieredPolicy::new(RoutingPolicy::DemoteNonMature, cluster.clone())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_cli_matrix() {
        assert_eq!(PolicySpec::parse("off").unwrap(), PolicySpec::Off);
        assert_eq!(PolicySpec::parse("coshare").unwrap(), PolicySpec::Coshare);
        assert_eq!(PolicySpec::parse("tiered").unwrap(), PolicySpec::Tiered);
        assert_eq!(
            PolicySpec::parse("powercap:250").unwrap(),
            PolicySpec::PowerCap { cap_w: 250.0 }
        );
        assert_eq!(PolicySpec::parse("powercap:250").unwrap().label(), "powercap:250");
    }

    #[test]
    fn standard_arm_labels_round_trip_through_parse() {
        // Query tokens are built from labels, so every standard arm's
        // label must parse back to the same spec.
        for arm in PolicySpec::STANDARD_ARMS {
            assert_eq!(PolicySpec::parse(&arm.label()).unwrap(), arm, "{}", arm.label());
        }
    }

    #[test]
    fn predicted_label_round_trips_but_build_needs_a_trace() {
        assert_eq!(PolicySpec::parse("coshare-predicted").unwrap(), PolicySpec::CosharePredicted);
        assert_eq!(PolicySpec::CosharePredicted.label(), "coshare-predicted");
        let built = std::panic::catch_unwind(|| {
            PolicySpec::CosharePredicted.build(&ClusterSpec::supercloud())
        });
        assert!(built.is_err(), "building without a trace must panic");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PolicySpec::parse("powercap:banana").is_err());
        assert!(PolicySpec::parse("powercap:-5").is_err());
        assert!(PolicySpec::parse("powercap:0").is_err());
        assert!(PolicySpec::parse("turbo").is_err());
    }

    #[test]
    fn build_matches_spec() {
        let cluster = ClusterSpec::supercloud();
        assert!(PolicySpec::Off.build(&cluster).is_none());
        assert_eq!(
            PolicySpec::PowerCap { cap_w: 250.0 }.build(&cluster).unwrap().name(),
            "powercap"
        );
        assert_eq!(PolicySpec::Coshare.build(&cluster).unwrap().name(), "coshare");
        assert_eq!(PolicySpec::Tiered.build(&cluster).unwrap().name(), "tiered");
    }
}
