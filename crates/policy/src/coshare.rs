//! Closed-loop GPU sharing: pack predicted-low-utilization single-GPU
//! jobs two per GPU.
//!
//! The offline [`sc_opportunity::colocation`] study scores pairing
//! policies over completed jobs. This policy makes the pairing live:
//! when a single-GPU job with low predicted SM utilization starts, its
//! GPU becomes an open *host slot*; a later eligible job is placed as a
//! zero-GPU *guest* on the same node and stretched by the interference
//! slowdown the phase-overlap model ([`simulate_pair`]) predicts for
//! that concrete pair of telemetry ground truths.
//!
//! Documented approximations (kept deliberately one-sided so the
//! acceptance band against the offline study is meaningful):
//!
//! - The host is assumed undisturbed; only the guest stretches.
//! - The guest's stretch is fixed at pairing time from a bounded
//!   interference window, not re-evaluated as phases drift.
//! - Guests hold zero scheduler GPUs (the host owns the board), so the
//!   goodput ledger and Xid fault targeting see only the host's GPU.

use std::collections::HashMap;

use sc_cluster::{Allocation, ClusterState, Dispatch, NodeAlloc, NodeId, Policy, PolicyDecision};
use sc_opportunity::colocation::simulate_pair;
use sc_telemetry::record::JobId;
use sc_workload::{GpuGroundTruth, JobSpec, WorkloadArchetype};

/// How [`CosharePolicy`] decides a single-GPU job may share a board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShareGate {
    /// Oracle utilization: the job's ground-truth mean SM level is
    /// below a threshold (the original behavior).
    MeanSm {
        /// Mean SM utilization (percent) below which a job may share.
        threshold: f64,
    },
    /// Archetype labels: idle-heavy and bursty-dev jobs share. With the
    /// spec's ground-truth labels this is the oracle-label policy;
    /// wrapped in [`crate::PredictedClassPolicy`] the labels are the
    /// classifier's predictions, so the same gating rule runs on
    /// predicted data and the A/B delta isolates classifier error.
    ArchetypeLabel,
}

/// Whether an archetype is a sharing candidate under
/// [`ShareGate::ArchetypeLabel`]: mostly-idle sessions and short
/// bursty work interleave well; periodic trainers and plateau jobs
/// keep their boards.
pub fn shareable_archetype(archetype: WorkloadArchetype) -> bool {
    matches!(archetype, WorkloadArchetype::IdleHeavy | WorkloadArchetype::BurstyDev)
}

/// One GPU with spare capacity: a running low-utilization single-GPU job.
#[derive(Debug, Clone)]
struct HostSlot {
    host: JobId,
    node: NodeId,
    truth: GpuGroundTruth,
    duration: f64,
}

/// Packs predicted-low-utilization single-GPU jobs two per GPU.
#[derive(Debug)]
pub struct CosharePolicy {
    /// Eligibility rule for both sides of a pairing.
    pub gate: ShareGate,
    /// Interference window, seconds: pair slowdowns are evaluated over
    /// at most this much overlap per side.
    pub window_secs: f64,
    /// Open host slots, oldest first (FIFO matching).
    slots: Vec<HostSlot>,
    /// Guests placed but not yet dispatched: guest id -> (host, stretch).
    pending: HashMap<JobId, (JobId, f64)>,
}

impl Default for CosharePolicy {
    fn default() -> Self {
        CosharePolicy::with_gate(ShareGate::MeanSm { threshold: 25.0 })
    }
}

impl CosharePolicy {
    /// Builds the policy with an explicit eligibility gate.
    pub fn with_gate(gate: ShareGate) -> Self {
        CosharePolicy { gate, window_secs: 1800.0, slots: Vec::new(), pending: HashMap::new() }
    }

    /// The oracle-label arm: gate on the spec's ground-truth archetypes.
    pub fn label_gated() -> Self {
        CosharePolicy::with_gate(ShareGate::ArchetypeLabel)
    }

    /// Whether `job` may participate in sharing (either side).
    fn eligible(&self, job: &JobSpec) -> bool {
        if job.gpus != 1 || job.idle_gpus != 0 {
            return false;
        }
        match self.gate {
            ShareGate::MeanSm { threshold } => {
                job.truth_params.as_ref().is_some_and(|t| t.mean_levels.sm < threshold)
            }
            ShareGate::ArchetypeLabel => job.archetype.is_some_and(shareable_archetype),
        }
    }

    fn bounded_run(&self, job: &JobSpec) -> f64 {
        job.outcome.run_time(job.time_limit).clamp(60.0, self.window_secs)
    }
}

impl Policy for CosharePolicy {
    fn name(&self) -> &'static str {
        match self.gate {
            ShareGate::MeanSm { .. } => "coshare",
            ShareGate::ArchetypeLabel => "coshare-oracle",
        }
    }

    fn place(&mut self, job: &JobSpec, cluster: &ClusterState) -> Option<Allocation> {
        if !self.eligible(job) || self.slots.is_empty() {
            return None;
        }
        // Oldest open slot whose node still has CPU and memory headroom
        // for the guest (the GPU itself is the host's).
        let nodes = cluster.nodes();
        let idx = self.slots.iter().position(|s| {
            let n = &nodes[s.node.0 as usize];
            n.cpus_free >= job.cpus && n.mem_free_gib >= job.mem_gib
        })?;
        let guest_truth = job.ground_truth()?;
        let slot = self.slots.remove(idx);
        let pair =
            simulate_pair(&slot.truth, &guest_truth.gpus[0], slot.duration, self.bounded_run(job));
        let slowdown = pair.slowdown_b.max(1.0);
        self.pending.insert(job.job_id, (slot.host, slowdown));
        Some(Allocation {
            parts: vec![NodeAlloc {
                node: slot.node,
                gpus: 0,
                cpus: job.cpus,
                mem_gib: job.mem_gib,
            }],
        })
    }

    fn dispatch(&mut self, job: &JobSpec, alloc: &Allocation, _now: f64) -> Dispatch {
        if let Some((host, slowdown)) = self.pending.remove(&job.job_id) {
            return Dispatch {
                stretch: slowdown,
                power_cap_w: None,
                decision: Some(PolicyDecision::CosharePlace { host, slowdown }),
            };
        }
        // A low-utilization single that got a whole GPU opens a slot.
        if self.eligible(job) && alloc.total_gpus() == 1 {
            if let Some(truth) = job.ground_truth() {
                self.slots.push(HostSlot {
                    host: job.job_id,
                    node: alloc.parts[0].node,
                    truth: truth.gpus[0].clone(),
                    duration: self.bounded_run(job),
                });
            }
        }
        Dispatch::default()
    }

    fn release(&mut self, job: JobId, _now: f64) {
        self.slots.retain(|s| s.host != job);
        self.pending.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cluster::ClusterSpec;
    use sc_telemetry::record::{SubmissionInterface, UserId};
    use sc_workload::{PlannedOutcome, ResourceLevels, TruthParams};

    fn low_sm_job(id: u64, seed: u64) -> JobSpec {
        JobSpec {
            job_id: JobId(id),
            user: UserId(0),
            arrival: 0.0,
            interface: SubmissionInterface::Other,
            gpus: 1,
            cpus: 4,
            mem_gib: 16.0,
            time_limit: 3600.0,
            class: None,
            outcome: PlannedOutcome::Complete { work_secs: 1200.0 },
            archetype: None,
            truth_params: Some(TruthParams {
                duration: 1400.0,
                active_fraction: 0.4,
                mean_levels: ResourceLevels {
                    sm: 12.0,
                    mem: 8.0,
                    mem_size: 10.0,
                    pcie_tx: 50.0,
                    pcie_rx: 50.0,
                },
                ..Default::default()
            }),
            idle_gpus: 0,
            truth_seed: seed,
            checkpointable: true,
            max_restarts: 0,
        }
    }

    #[test]
    fn host_then_guest_pairs_on_the_same_node() {
        let mut p = CosharePolicy::default();
        let cluster = ClusterState::new(ClusterSpec::supercloud());
        let host = low_sm_job(1, 11);
        let host_alloc = cluster.try_place(&host).expect("fits empty cluster");
        assert_eq!(p.dispatch(&host, &host_alloc, 0.0), Dispatch::default());

        let guest = low_sm_job(2, 22);
        let alloc = p.place(&guest, &cluster).expect("guest should co-place");
        assert_eq!(alloc.total_gpus(), 0, "guest borrows the host's GPU");
        assert_eq!(alloc.parts[0].node, host_alloc.parts[0].node);

        let d = p.dispatch(&guest, &alloc, 10.0);
        assert!(d.stretch >= 1.0);
        match d.decision {
            Some(PolicyDecision::CosharePlace { host: h, slowdown }) => {
                assert_eq!(h, JobId(1));
                assert!(slowdown >= 1.0);
            }
            other => panic!("expected CosharePlace, got {other:?}"),
        }
    }

    #[test]
    fn busy_jobs_and_multi_gpu_jobs_never_pair() {
        let mut p = CosharePolicy::default();
        let cluster = ClusterState::new(ClusterSpec::supercloud());
        let mut hot = low_sm_job(1, 11);
        hot.truth_params.as_mut().unwrap().mean_levels.sm = 80.0;
        let alloc = cluster.try_place(&hot).unwrap();
        p.dispatch(&hot, &alloc, 0.0);
        assert!(p.place(&low_sm_job(2, 22), &cluster).is_none(), "no slot was opened");

        let quiet = low_sm_job(3, 33);
        let qa = cluster.try_place(&quiet).unwrap();
        p.dispatch(&quiet, &qa, 0.0);
        let mut wide = low_sm_job(4, 44);
        wide.gpus = 2;
        assert!(p.place(&wide, &cluster).is_none(), "multi-GPU jobs keep whole boards");
    }

    #[test]
    fn label_gate_ignores_sm_and_reads_archetypes() {
        let mut p = CosharePolicy::label_gated();
        assert_eq!(p.name(), "coshare-oracle");
        let cluster = ClusterState::new(ClusterSpec::supercloud());

        // Hot but idle-heavy-labeled: shares under the label gate.
        let mut host = low_sm_job(1, 11);
        host.truth_params.as_mut().unwrap().mean_levels.sm = 80.0;
        host.archetype = Some(sc_workload::WorkloadArchetype::IdleHeavy);
        let alloc = cluster.try_place(&host).unwrap();
        p.dispatch(&host, &alloc, 0.0);

        // Quiet but periodic-labeled: keeps its board.
        let mut trainer = low_sm_job(2, 22);
        trainer.archetype = Some(sc_workload::WorkloadArchetype::CnnPeriodic);
        assert!(p.place(&trainer, &cluster).is_none(), "periodic trainers never share");

        let mut dev = low_sm_job(3, 33);
        dev.archetype = Some(sc_workload::WorkloadArchetype::BurstyDev);
        let alloc = p.place(&dev, &cluster).expect("bursty-dev rides along");
        assert_eq!(alloc.total_gpus(), 0);
    }

    #[test]
    fn release_closes_the_slot() {
        let mut p = CosharePolicy::default();
        let cluster = ClusterState::new(ClusterSpec::supercloud());
        let host = low_sm_job(1, 11);
        let alloc = cluster.try_place(&host).unwrap();
        p.dispatch(&host, &alloc, 0.0);
        p.release(JobId(1), 100.0);
        assert!(p.place(&low_sm_job(2, 22), &cluster).is_none(), "slot died with its host");
    }
}
