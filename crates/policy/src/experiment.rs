//! The deterministic A/B what-if harness.
//!
//! [`PolicyExperiment`] replays one seeded trace through two arms of the
//! same simulator configuration: the production baseline (no policy) and
//! the policy arm. Because the trace, hardware, failure schedule, and
//! telemetry seeds are identical, every delta in the resulting
//! [`PolicyAbFig`] is attributable to the policy — the closed-loop
//! analogue of the paper's offline what-if studies.
//!
//! For [`PolicySpec::Tiered`] *both* arms get the same two-tier hardware
//! (32 slow nodes at half speed by default): the A/B then compares
//! class-based routing against the simulator's interface-based default
//! on identical capacity, rather than confounding routing with a
//! hardware change.

use crate::coshare::CosharePolicy;
use crate::predicted::PredictedClassPolicy;
use crate::PolicySpec;
use sc_cluster::{SimConfig, SimOutput, Simulation, SlowTierSpec};
use sc_core::figures::PolicyAbFig;
use sc_learn::{ArchetypePredictor, ClassifierConfig, EvalReport};
use sc_obs::Obs;
use sc_workload::Trace;

/// Slow-tier layout injected for [`PolicySpec::Tiered`] when the base
/// configuration has none: 32 nodes at half speed.
pub const DEFAULT_SLOW_TIER: SlowTierSpec = SlowTierSpec { nodes: 32, speed: 0.5 };

/// One policy A/B experiment: a base configuration plus the policy under
/// test.
#[derive(Debug, Clone)]
pub struct PolicyExperiment {
    /// Simulator configuration shared by both arms.
    pub base: SimConfig,
    /// The policy under test.
    pub spec: PolicySpec,
    /// Classifier configuration, used only by
    /// [`PolicySpec::CosharePredicted`].
    pub classifier: ClassifierConfig,
}

/// Both arms' outputs plus the delta figure.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The no-policy arm.
    pub baseline: SimOutput,
    /// The policy arm.
    pub policy: SimOutput,
    /// The computed deltas.
    pub fig: PolicyAbFig,
    /// The oracle-label arm ([`PolicySpec::CosharePredicted`] only):
    /// the same gating rule as the policy arm, fed ground-truth labels.
    pub oracle: Option<SimOutput>,
    /// Baseline-vs-oracle deltas, when the oracle arm ran.
    pub oracle_fig: Option<PolicyAbFig>,
    /// Held-out evaluation of the classifier the policy arm trained,
    /// when one did.
    pub classifier_eval: Option<EvalReport>,
}

impl ExperimentResult {
    /// Predicted-arm-vs-oracle-arm goodput delta, percentage points
    /// (`None` unless the oracle arm ran). Negative means classifier
    /// error cost goodput relative to perfect labels.
    pub fn predicted_vs_oracle_goodput_pp(&self) -> Option<f64> {
        let oracle = self.oracle_fig.as_ref()?;
        Some((self.fig.policy.goodput_fraction - oracle.policy.goodput_fraction) * 100.0)
    }

    /// Predicted-arm-vs-oracle-arm mean queue-wait delta, seconds
    /// (`None` unless the oracle arm ran).
    pub fn predicted_vs_oracle_wait_secs(&self) -> Option<f64> {
        let oracle = self.oracle_fig.as_ref()?;
        Some(self.fig.policy.mean_queue_wait_secs - oracle.policy.mean_queue_wait_secs)
    }
}

impl PolicyExperiment {
    /// Builds an experiment over a base configuration.
    pub fn new(base: SimConfig, spec: PolicySpec) -> Self {
        PolicyExperiment { base, spec, classifier: ClassifierConfig::default() }
    }

    /// The configuration both arms actually run (tiered experiments get
    /// the default slow tier if the base has none).
    pub fn config(&self) -> SimConfig {
        let mut cfg = self.base.clone();
        if self.spec == PolicySpec::Tiered && cfg.cluster.slow_tier.is_none() {
            cfg.cluster.slow_tier = Some(DEFAULT_SLOW_TIER);
        }
        cfg
    }

    /// Runs both arms without tracing.
    pub fn run(&self, trace: &Trace) -> ExperimentResult {
        self.run_observed(trace, &Obs::off())
    }

    /// Runs both arms; the *policy* arm emits into `obs`, so policy
    /// decision events land in the trace without baseline noise.
    ///
    /// For [`PolicySpec::CosharePredicted`] this trains the classifier
    /// on the trace, runs the predicted-label arm as the policy arm,
    /// and runs a third *oracle-label* arm (same gating rule, ground
    /// truth labels) so the result can report what classifier error
    /// cost.
    pub fn run_observed(&self, trace: &Trace, obs: &Obs<'_>) -> ExperimentResult {
        let cfg = self.config();
        let (baseline, _) = Simulation::new(cfg.clone()).run_observed(trace, &Obs::off());
        let mut classifier_eval = None;
        let (policy, _) = if self.spec == PolicySpec::CosharePredicted {
            let (predictor, eval) = ArchetypePredictor::train(trace, &self.classifier);
            classifier_eval = Some(eval);
            let mut p = PredictedClassPolicy::coshare(predictor);
            Simulation::new(cfg.clone()).run_policy(trace, obs, &mut p)
        } else {
            match self.spec.build(&cfg.cluster) {
                Some(mut p) => Simulation::new(cfg.clone()).run_policy(trace, obs, p.as_mut()),
                None => Simulation::new(cfg.clone()).run_observed(trace, obs),
            }
        };
        let fig = PolicyAbFig::compute(&self.spec.label(), &baseline, &policy);
        let (oracle, oracle_fig) = if self.spec == PolicySpec::CosharePredicted {
            let mut p = CosharePolicy::label_gated();
            let (out, _) = Simulation::new(cfg).run_policy(trace, &Obs::off(), &mut p);
            let fig = PolicyAbFig::compute("coshare-oracle", &baseline, &out);
            (Some(out), Some(fig))
        } else {
            (None, None)
        };
        ExperimentResult { baseline, policy, fig, oracle, oracle_fig, classifier_eval }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_workload::WorkloadSpec;

    fn small_trace() -> Trace {
        Trace::generate(&WorkloadSpec::supercloud().scaled(0.004), 7)
    }

    fn small_config() -> SimConfig {
        SimConfig { detailed_series_jobs: 0, ..SimConfig::default() }
    }

    #[test]
    fn off_spec_yields_identical_arms() {
        let exp = PolicyExperiment::new(small_config(), PolicySpec::Off);
        let r = exp.run(&small_trace());
        assert_eq!(r.baseline.dataset.records().len(), r.policy.dataset.records().len());
        for (name, _, _, d) in r.fig.rows() {
            assert_eq!(d, 0.0, "{name} must not drift with no policy");
        }
    }

    #[test]
    fn powercap_arm_throttles_and_stretches() {
        let exp = PolicyExperiment::new(small_config(), PolicySpec::PowerCap { cap_w: 150.0 });
        let r = exp.run(&small_trace());
        assert!(r.policy.stats.policy_cap_throttles > 0, "a 150 W cap must bite");
        assert_eq!(r.baseline.stats.policy_cap_throttles, 0);
        for rec in r.policy.dataset.records() {
            if let Some(g) = &rec.gpu {
                for a in &g.per_gpu {
                    assert!(a.power_w.max <= 150.0 + 1e-9, "telemetry must be clamped at the cap");
                }
            }
        }
        // Throttled runs stretch; with an identical trace and no failure
        // injection every job's run time is monotone under the cap.
        // (Records land in completion order, so match the arms by id.)
        let by_id: std::collections::HashMap<_, _> =
            r.baseline.dataset.records().iter().map(|rec| (rec.sched.job_id, rec)).collect();
        for p in r.policy.dataset.records() {
            let b = by_id.get(&p.sched.job_id).expect("same jobs in both arms");
            assert!(p.sched.run_time() >= b.sched.run_time() - 1e-9);
        }
        assert!(r.fig.render().contains("powercap:150"));
    }

    #[test]
    fn predicted_experiment_runs_three_arms_and_reports_deltas() {
        let exp = PolicyExperiment::new(small_config(), PolicySpec::CosharePredicted);
        let r = exp.run(&small_trace());
        let eval = r.classifier_eval.as_ref().expect("predicted arm trains a classifier");
        assert!(eval.accuracy > 0.6, "confusion: {:?}", eval.confusion);
        let oracle = r.oracle.as_ref().expect("oracle arm runs alongside");
        assert!(oracle.stats.policy_coshares > 0, "label gate must pair some jobs");
        assert!(r.policy.stats.policy_coshares > 0, "predicted gate must pair some jobs");
        let goodput_pp = r.predicted_vs_oracle_goodput_pp().expect("oracle deltas available");
        assert!(goodput_pp.abs() < 20.0, "predicted vs oracle goodput delta: {goodput_pp}pp");
        assert!(r.predicted_vs_oracle_wait_secs().is_some());
        assert!(r.fig.render().contains("coshare-predicted"));
        assert_eq!(r.oracle_fig.as_ref().unwrap().policy.label, "coshare-oracle");
    }

    #[test]
    fn non_predicted_experiments_have_no_oracle_arm() {
        let exp = PolicyExperiment::new(small_config(), PolicySpec::Coshare);
        let r = exp.run(&small_trace());
        assert!(r.oracle.is_none() && r.oracle_fig.is_none() && r.classifier_eval.is_none());
        assert_eq!(r.predicted_vs_oracle_goodput_pp(), None);
    }

    #[test]
    fn tiered_experiment_gives_both_arms_the_slow_tier() {
        let exp = PolicyExperiment::new(small_config(), PolicySpec::Tiered);
        let cfg = exp.config();
        assert_eq!(cfg.cluster.slow_tier, Some(DEFAULT_SLOW_TIER));
        let r = exp.run(&small_trace());
        assert!(r.policy.stats.policy_tier_routes > 0, "routing must reroute some jobs");
        assert!(
            r.fig.policy.slow_tier_jobs > r.fig.baseline.slow_tier_jobs,
            "class routing demotes more work than interface routing"
        );
    }
}
