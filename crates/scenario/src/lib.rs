//! Declarative scenario DSL for the Supercloud reproduction.
//!
//! A scenario is one TOML file — cluster shape, workload preset with
//! overrides, arrival process, failure profile, data-quality profile,
//! and policy arm — parsed into a validated [`Scenario`] with typed
//! line/field diagnostics ([`ScenarioError`]) instead of panics. Four
//! presets ship under `scenarios/` and are embedded at compile time:
//!
//! | preset | system | arrivals | failures |
//! |---|---|---|---|
//! | `supercloud` | the paper's cluster, flag-default-identical | diurnal | off |
//! | `philly` | Microsoft's batch DNN-training baseline | diurnal | supercloud |
//! | `nersc` | an open-science HPC centre | up-and-down | supercloud |
//! | `in2p3` | a HEP grid site | spikes | transient |
//!
//! The `supercloud` preset carries a byte-identity guarantee: driving
//! `repro_figures` through it produces the same stdout, dataset JSON,
//! and figure text as the flag-driven default, at any thread budget.
//! [`CrossSystemFig`] runs any set of scenarios through the identical
//! pipeline and tabulates headline metrics side by side.
//!
//! # Example
//!
//! ```
//! use sc_scenario::Scenario;
//!
//! let s = Scenario::preset("supercloud").expect("committed preset");
//! assert_eq!(s.workload_spec(), sc_workload::WorkloadSpec::supercloud());
//!
//! let err = Scenario::parse("[scenario]\nname = \"x\"\nscale = -2.0\n").unwrap_err();
//! assert_eq!(err.line, 3); // typed diagnostics, never panics
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cross;
pub mod error;
pub mod preset;
pub mod scenario;
pub mod toml;

pub use cross::{CrossSystemFig, SystemRow};
pub use error::{ErrorKind, ScenarioError};
pub use scenario::{
    ClusterScenario, FailureScenario, ReliabilityScenario, Scenario, WorkloadScenario,
};
