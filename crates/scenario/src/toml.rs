//! A minimal TOML-subset parser for scenario files.
//!
//! The subset is exactly what the scenario schema needs, no more:
//!
//! - `[section]` headers with bare names (`[a-zA-Z0-9_-]+`);
//! - `key = value` pairs inside a section, one per line;
//! - values: double-quoted strings (`\\`, `\"`, `\n`, `\t` escapes),
//!   booleans, integers (`_` separators allowed), floats (decimal or
//!   exponent form), and single-line arrays of values — including
//!   arrays of arrays for `(count, weight)` mix tables;
//! - `#` comments (full-line or trailing) and blank lines.
//!
//! Everything else — multi-line arrays, dotted keys, inline tables,
//! dates — is rejected with a [`ScenarioError`] carrying the 1-based
//! line, never a panic. Duplicate sections and duplicate keys are
//! errors too: a scenario where the last write silently wins is a
//! scenario that lies.

use crate::error::{ErrorKind, ScenarioError};

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A double-quoted string, unescaped.
    String(String),
    /// An integer (fits the schema's counts and seeds).
    Integer(i64),
    /// A float (decimal point or exponent present in the source).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line `[ ... ]` array.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::String(_) => "string",
            TomlValue::Integer(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }
}

/// One `key = value` pair, with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlEntry {
    /// Bare key name.
    pub key: String,
    /// 1-based source line of the pair.
    pub line: usize,
    /// The parsed value.
    pub value: TomlValue,
}

/// One `[section]` with its entries, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlSection {
    /// Bare section name.
    pub name: String,
    /// 1-based source line of the header.
    pub line: usize,
    /// The section's pairs, in file order.
    pub entries: Vec<TomlEntry>,
}

/// A parsed document: sections in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlDoc {
    /// The document's sections.
    pub sections: Vec<TomlSection>,
}

impl TomlDoc {
    /// The section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&TomlSection> {
        self.sections.iter().find(|s| s.name == name)
    }
}

fn is_bare(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

fn syntax(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::new(line, "", ErrorKind::Syntax(msg.into()))
}

/// Parses a scenario document.
///
/// # Errors
///
/// Returns the first grammar violation as a [`ScenarioError`] with its
/// 1-based line; malformed input never panics.
pub fn parse(text: &str) -> Result<TomlDoc, ScenarioError> {
    let mut doc = TomlDoc::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            // Reject `[[array-of-tables]]` explicitly (a nested-array
            // *value* never starts a line).
            if rest.starts_with('[') {
                return Err(syntax(line_no, "array-of-tables headers are not supported"));
            }
            let close = rest
                .find(']')
                .ok_or_else(|| syntax(line_no, "unterminated section header (missing ']')"))?;
            let name = &rest[..close];
            if name.is_empty() || !name.chars().all(is_bare) {
                return Err(syntax(line_no, format!("bad section name {name:?}")));
            }
            let tail = rest[close + 1..].trim();
            if !tail.is_empty() && !tail.starts_with('#') {
                return Err(syntax(line_no, format!("unexpected text after [{name}]: {tail:?}")));
            }
            if doc.section(name).is_some() {
                return Err(ScenarioError::new(
                    line_no,
                    format!("[{name}]"),
                    ErrorKind::DuplicateSection,
                ));
            }
            doc.sections.push(TomlSection {
                name: name.to_string(),
                line: line_no,
                entries: vec![],
            });
            continue;
        }
        // A key/value pair. Keys are bare, so the first `=` splits.
        let eq = line
            .find('=')
            .ok_or_else(|| syntax(line_no, "expected `[section]` or `key = value`"))?;
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(is_bare) {
            return Err(syntax(line_no, format!("bad key name {key:?}")));
        }
        let section = doc.sections.last_mut().ok_or_else(|| {
            ScenarioError::new(
                line_no,
                key,
                ErrorKind::Syntax("key outside any [section]".to_string()),
            )
        })?;
        if section.entries.iter().any(|e| e.key == key) {
            return Err(ScenarioError::new(
                line_no,
                format!("[{}] {key}", section.name),
                ErrorKind::DuplicateKey,
            ));
        }
        let mut cursor = Cursor { chars: line[eq + 1..].char_indices().peekable(), line: line_no };
        let value = cursor.value()?;
        cursor.expect_end()?;
        section.entries.push(TomlEntry { key: key.to_string(), line: line_no, value });
    }
    Ok(doc)
}

/// A character cursor over one line's value text.
struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    /// After a value: only whitespace or a trailing comment may remain.
    fn expect_end(&mut self) -> Result<(), ScenarioError> {
        self.skip_ws();
        match self.chars.peek() {
            None | Some((_, '#')) => Ok(()),
            Some((_, c)) => Err(syntax(self.line, format!("unexpected {c:?} after value"))),
        }
    }

    fn value(&mut self) -> Result<TomlValue, ScenarioError> {
        self.skip_ws();
        match self.chars.peek().copied() {
            None | Some((_, '#')) => Err(syntax(self.line, "missing value after `=`")),
            Some((_, '"')) => self.string(),
            Some((_, '[')) => self.array(),
            Some(_) => self.scalar(),
        }
    }

    fn string(&mut self) -> Result<TomlValue, ScenarioError> {
        self.chars.next(); // opening quote
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err(syntax(self.line, "unterminated string")),
                Some((_, '"')) => return Ok(TomlValue::String(out)),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, c)) => {
                        return Err(syntax(self.line, format!("unsupported escape \\{c}")))
                    }
                    None => return Err(syntax(self.line, "unterminated string")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<TomlValue, ScenarioError> {
        self.chars.next(); // opening bracket
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.peek().copied() {
                None => return Err(syntax(self.line, "unterminated array (missing ']')")),
                Some((_, ']')) => {
                    self.chars.next();
                    return Ok(TomlValue::Array(items));
                }
                Some(_) => {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.chars.peek().copied() {
                        Some((_, ',')) => {
                            self.chars.next();
                        }
                        Some((_, ']')) | None => {}
                        Some((_, c)) => {
                            return Err(syntax(
                                self.line,
                                format!("expected `,` or `]` in array, found {c:?}"),
                            ))
                        }
                    }
                }
            }
        }
    }

    fn scalar(&mut self) -> Result<TomlValue, ScenarioError> {
        let mut token = String::new();
        while let Some((_, c)) = self.chars.peek().copied() {
            if c.is_whitespace() || c == ',' || c == ']' || c == '#' {
                break;
            }
            token.push(c);
            self.chars.next();
        }
        match token.as_str() {
            "true" => return Ok(TomlValue::Bool(true)),
            "false" => return Ok(TomlValue::Bool(false)),
            _ => {}
        }
        // Numbers: TOML `_` separators are allowed between digits; the
        // float/integer split follows the source form.
        let cleaned: String = token.chars().filter(|&c| c != '_').collect();
        let is_float = cleaned.contains(['.', 'e', 'E']);
        if is_float {
            match cleaned.parse::<f64>() {
                Ok(v) if v.is_finite() => return Ok(TomlValue::Float(v)),
                Ok(_) => {
                    return Err(syntax(self.line, format!("non-finite number {token:?}")));
                }
                Err(_) => {}
            }
        } else if let Ok(v) = cleaned.parse::<i64>() {
            return Ok(TomlValue::Integer(v));
        }
        Err(syntax(self.line, format!("bad value {token:?}")))
    }
}

/// Serializes one value in canonical form (floats via `{:?}`, which
/// round-trips `f64` exactly).
pub fn render_value(v: &TomlValue, out: &mut String) {
    match v {
        TomlValue::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        TomlValue::Integer(i) => out.push_str(&i.to_string()),
        TomlValue::Float(f) => out.push_str(&format!("{f:?}")),
        TomlValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        TomlValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = parse(
            "# header comment\n\
             [scenario]\n\
             name = \"demo\" # trailing comment\n\
             seed = 1_000\n\
             scale = 0.5\n\
             flag = true\n\
             days = [28.0, 97.0]\n\
             mix = [[1, 116.0], [2, 13.0]]\n",
        )
        .expect("valid doc");
        let s = doc.section("scenario").expect("section");
        assert_eq!(s.entries.len(), 6);
        assert_eq!(s.entries[0].value, TomlValue::String("demo".into()));
        assert_eq!(s.entries[1].value, TomlValue::Integer(1000));
        assert_eq!(s.entries[2].value, TomlValue::Float(0.5));
        assert_eq!(s.entries[3].value, TomlValue::Bool(true));
        assert_eq!(
            s.entries[4].value,
            TomlValue::Array(vec![TomlValue::Float(28.0), TomlValue::Float(97.0)])
        );
        match &s.entries[5].value {
            TomlValue::Array(rows) => assert_eq!(rows.len(), 2),
            other => panic!("expected nested array, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_the_line() {
        let err = parse("[a]\nx = 1\ny 2\n").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse("[a]\nx = \"unterminated\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn duplicate_section_and_key_rejected() {
        let err = parse("[a]\n[a]\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateSection);
        assert_eq!(err.line, 2);
        let err = parse("[a]\nx = 1\nx = 2\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::DuplicateKey);
        assert_eq!(err.context, "[a] x");
    }

    #[test]
    fn key_outside_section_rejected() {
        let err = parse("x = 1\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn exotic_toml_rejected_not_panicked() {
        for bad in [
            "[[tables]]\n",
            "[a]\nx = 1979-05-27\n",
            "[a]\nx = { y = 1 }\n",
            "[a]\nx = [1,\n2]\n",
            "[a]\nx = nan\n",
            "[a]\nx = inf\n",
            "[a.b]\nx = 1\n",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn values_render_back_exactly() {
        let text = "[s]\nf = 0.55\ng = 1e-9\nn = -3\nb = false\na = [1.5, 2.5]\n";
        let doc = parse(text).expect("valid");
        for entry in &doc.section("s").expect("s").entries {
            let mut rendered = String::new();
            render_value(&entry.value, &mut rendered);
            let reparsed = parse(&format!("[s]\nk = {rendered}\n")).expect("round-trip");
            assert_eq!(reparsed.sections[0].entries[0].value, entry.value, "{rendered}");
        }
    }
}
