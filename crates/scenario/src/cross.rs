//! The cross-system comparison figure: N scenarios, one pipeline run
//! each, one table of headline metrics side by side.
//!
//! The paper compares Supercloud against Microsoft's Philly clusters
//! in passing (Sec. V: single-GPU shares, queue waits). The scenario
//! DSL generalizes that move: any set of presets — the committed four
//! span an AI supercomputer, a batch DNN cluster, an HPC centre, and
//! a HEP grid site — runs through the identical simulator and figure
//! pipeline, so every difference in the table is attributable to the
//! declared scenario, not to methodology drift.

use crate::scenario::Scenario;
use sc_cluster::Simulation;
use sc_core::gpu_views;
use sc_stats::Ecdf;
use sc_workload::{LifecycleClass, Trace};

/// One system's headline metrics.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// Scenario name.
    pub name: String,
    /// Arrival-process label.
    pub arrivals: String,
    /// Jobs generated at this scale.
    pub jobs: usize,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// Peak GPUs in use over the run.
    pub peak_gpus_in_use: u32,
    /// Total GPU hours delivered.
    pub gpu_hours: f64,
    /// Median GPU-job run time, minutes (Fig. 3a).
    pub median_runtime_min: f64,
    /// Median GPU-job queue wait, seconds (Fig. 3b).
    pub median_wait_secs: f64,
    /// Median SM utilization % (Fig. 4).
    pub median_sm_util: f64,
    /// Share of GPU jobs on exactly one GPU (Fig. 13a).
    pub single_gpu_share: f64,
    /// Share of jobs in the mature lifecycle class (Fig. 15a).
    pub mature_share: f64,
}

/// The comparison across all requested scenarios.
#[derive(Debug, Clone)]
pub struct CrossSystemFig {
    /// Workload scale every system ran at.
    pub scale: f64,
    /// Master seed every system ran at.
    pub seed: u64,
    /// One row per scenario, in input order.
    pub rows: Vec<SystemRow>,
}

/// Median of a non-empty iterator, 0.0 when empty.
fn median(values: impl Iterator<Item = f64>) -> f64 {
    match Ecdf::new(values.collect()) {
        Ok(e) => e.median(),
        Err(_) => 0.0,
    }
}

impl CrossSystemFig {
    /// Runs every scenario through the full pipeline at a common
    /// `scale` and `seed` and collects the headline metrics.
    ///
    /// The metrics are computed straight from the analyzed GPU-job
    /// views rather than through the full figure pipeline: a scenario
    /// at smoke scale may lack whole populations (no IDE jobs, no
    /// 9-GPU jobs) that the per-figure comparisons require, and a
    /// missing population should read as a 0% share here, not a
    /// pipeline failure.
    ///
    /// # Errors
    ///
    /// Returns `"<scenario>: no analyzed GPU jobs"` when a scenario's
    /// trace produces nothing to compare (scale far too small).
    pub fn run(scenarios: &[Scenario], scale: f64, seed: u64) -> Result<Self, String> {
        let mut rows = Vec::with_capacity(scenarios.len());
        for sc in scenarios {
            let spec = sc.scaled_spec(scale);
            let trace = Trace::generate(&spec, seed);
            let config = sc.sim_config(scale, seed);
            let total_gpus = config.cluster.total_gpus();
            let out = Simulation::new(config).run(&trace);
            let views = gpu_views(&out.dataset);
            if views.is_empty() {
                return Err(format!("{}: no analyzed GPU jobs", sc.name));
            }
            let total = views.len() as f64;
            let single = views.iter().filter(|v| v.sched.gpus_requested <= 1).count() as f64;
            let mature = views.iter().filter(|v| v.class == LifecycleClass::Mature).count() as f64;
            rows.push(SystemRow {
                name: sc.name.clone(),
                arrivals: sc.arrivals.label().to_string(),
                jobs: trace.jobs().len(),
                total_gpus,
                peak_gpus_in_use: out.stats.peak_gpus_in_use,
                gpu_hours: out.stats.gpu_hours,
                median_runtime_min: median(views.iter().map(|v| v.run_minutes())),
                median_wait_secs: median(views.iter().map(|v| v.sched.queue_wait())),
                median_sm_util: median(views.iter().map(|v| v.agg.sm_util.mean)),
                single_gpu_share: single / total,
                mature_share: mature / total,
            });
        }
        Ok(CrossSystemFig { scale, seed, rows })
    }

    /// Renders the comparison table (deterministic text).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("================ cross-system comparison ================\n");
        out.push_str(&format!(
            "{} systems at scale {}, seed {}\n\n",
            self.rows.len(),
            self.scale,
            self.seed
        ));
        out.push_str(&format!(
            "{:<12} {:>7} {:>6} {:>8} {:>10} {:>9} {:>9} {:>7} {:>7} {:>7}  {}\n",
            "system",
            "jobs",
            "GPUs",
            "peakGPU",
            "GPU-hours",
            "run p50m",
            "wait p50s",
            "SM p50%",
            "1-GPU%",
            "mature%",
            "arrivals"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>7} {:>6} {:>8} {:>10.1} {:>9.1} {:>9.1} {:>7.1} {:>7.1} {:>7.1}  {}\n",
                r.name,
                r.jobs,
                r.total_gpus,
                r.peak_gpus_in_use,
                r.gpu_hours,
                r.median_runtime_min,
                r.median_wait_secs,
                r.median_sm_util,
                r.single_gpu_share * 100.0,
                r.mature_share * 100.0,
                r.arrivals
            ));
        }
        out
    }

    /// Renders the peak-occupancy comparison as an SVG bar chart.
    pub fn to_svg(&self) -> String {
        let bars: Vec<(String, f64)> = self
            .rows
            .iter()
            .map(|r| {
                (r.name.clone(), 100.0 * r.peak_gpus_in_use as f64 / (r.total_gpus as f64).max(1.0))
            })
            .collect();
        sc_core::svg::bar_chart("Cross-system peak GPU occupancy", "peak GPUs in use, %", &bars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_system_smoke_run() {
        let scenarios = [
            Scenario::preset("supercloud").expect("preset"),
            Scenario::preset("philly").expect("preset"),
        ];
        let fig = CrossSystemFig::run(&scenarios, 0.01, 42).expect("smoke scale suffices");
        assert_eq!(fig.rows.len(), 2);
        let text = fig.render();
        assert!(text.contains("supercloud"), "{text}");
        assert!(text.contains("philly"), "{text}");
        // Philly skews single-GPU harder than Supercloud.
        assert!(fig.rows[1].single_gpu_share > fig.rows[0].single_gpu_share);
        let svg = fig.to_svg();
        assert!(svg.contains("<svg"), "svg header");
        assert!(svg.contains("philly"), "bar labels");
    }

    #[test]
    fn render_is_deterministic() {
        let scenarios = [Scenario::preset("supercloud").expect("preset")];
        let a = CrossSystemFig::run(&scenarios, 0.01, 7).expect("runs");
        let b = CrossSystemFig::run(&scenarios, 0.01, 7).expect("runs");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_svg(), b.to_svg());
    }
}
