//! The validated [`Scenario`]: cluster shape, workload preset with
//! overrides, arrival process, failure profile, data-quality profile,
//! and policy arm, composed from one TOML file.
//!
//! A scenario is the *declarative* form of a pipeline run. The
//! `supercloud` preset maps exactly onto the flag-driven defaults —
//! [`Scenario::workload_spec`] returns [`WorkloadSpec::supercloud`]
//! and [`Scenario::sim_config`] returns `SimConfig::default()` plus
//! the detailed-series rule — so driving `repro_figures` through a
//! scenario file is byte-identical to driving it through flags.

use crate::error::{ErrorKind, ScenarioError};
use crate::toml::{parse as parse_toml, render_value, TomlEntry, TomlSection, TomlValue};
use sc_cluster::{ClusterSpec, FailureModel, SimConfig, SlowTierSpec};
use sc_opportunity::CheckpointConfig;
use sc_policy::PolicySpec;
use sc_telemetry::DataQualityProfile;
use sc_workload::{ArrivalProcess, WorkloadSpec};

/// Cluster shape: a named preset plus optional overrides. Only the
/// overrides are serialized, so a round-tripped scenario stays equal.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScenario {
    /// Base preset (`supercloud` is the only one; the overrides carve
    /// every other shape out of it).
    pub preset: String,
    /// Override: GPU-node count.
    pub nodes: Option<u32>,
    /// Override: GPUs per node.
    pub gpus_per_node: Option<u32>,
    /// Override: nodes per leaf switch.
    pub nodes_per_switch: Option<u32>,
    /// Override: CPU-only nodes appended after the GPU tier.
    pub cpu_only_nodes: Option<u32>,
    /// Override: interconnect description (documentary).
    pub interconnect: Option<String>,
    /// Override: slow-tier node count (requires `slow_tier_speed`).
    pub slow_tier_nodes: Option<u32>,
    /// Override: slow-tier relative speed in (0, 1].
    pub slow_tier_speed: Option<f64>,
}

impl Default for ClusterScenario {
    fn default() -> Self {
        ClusterScenario {
            preset: "supercloud".to_string(),
            nodes: None,
            gpus_per_node: None,
            nodes_per_switch: None,
            cpu_only_nodes: None,
            interconnect: None,
            slow_tier_nodes: None,
            slow_tier_speed: None,
        }
    }
}

/// Workload population: a named preset plus optional overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadScenario {
    /// Base preset: `supercloud` or `philly`.
    pub preset: String,
    /// Override: trace length in days.
    pub duration_days: Option<f64>,
    /// Override: unique users.
    pub users: Option<usize>,
    /// Override: total jobs across the trace.
    pub total_jobs: Option<usize>,
    /// Override: fraction of jobs that are GPU jobs, in [0, 1].
    pub gpu_job_fraction: Option<f64>,
    /// Override: mean CPU campaign burst size (>= 1).
    pub cpu_burst_mean: Option<f64>,
    /// Override: diurnal modulation amplitude, in [0, 1).
    pub diurnal_amplitude: Option<f64>,
    /// Override: conference-deadline surge amplitude (>= 0).
    pub deadline_surge_amplitude: Option<f64>,
    /// Override: deadline days within the window.
    pub deadline_days: Option<Vec<f64>>,
}

impl Default for WorkloadScenario {
    fn default() -> Self {
        WorkloadScenario {
            preset: "supercloud".to_string(),
            duration_days: None,
            users: None,
            total_jobs: None,
            gpu_job_fraction: None,
            cpu_burst_mean: None,
            diurnal_amplitude: None,
            deadline_surge_amplitude: None,
            deadline_days: None,
        }
    }
}

/// Workload classification: whether the pipeline trains the `sc-learn`
/// archetype classifier, plus optional overrides of its defaults. Only
/// explicit overrides serialize, so a round-tripped scenario stays
/// equal and the resolved [`sc_learn::ClassifierConfig`] tracks the
/// library defaults when no override is given.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassifierScenario {
    /// Train and evaluate the classifier as a pipeline stage.
    pub enabled: bool,
    /// Override: decision-forest size (trees).
    pub trees: Option<usize>,
    /// Override: forest-training seed.
    pub seed: Option<u64>,
    /// Override: train-split fraction, in (0, 1) so both splits stay
    /// populated.
    pub train_fraction: Option<f64>,
}

/// Failure injection: taxonomy profile plus optional MTBF rescale.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureScenario {
    /// Taxonomy profile name (`off`, `supercloud`, `stress`,
    /// `transient`).
    pub profile: String,
    /// Scale every class MTBF by this positive factor.
    pub mtbf_factor: Option<f64>,
}

impl Default for FailureScenario {
    fn default() -> Self {
        FailureScenario { profile: "off".to_string(), mtbf_factor: None }
    }
}

/// Reliability study: ETTF/ETTR size-class accounting, the goodput
/// frontier, the Young/Daly checkpoint sweep, and the cluster-growth
/// replay. Only explicit overrides serialize, so the resolved
/// [`sc_core::ReliabilityConfig`] tracks the library defaults when no
/// override is given.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReliabilityScenario {
    /// Run the reliability study as a pipeline stage (needs a
    /// `[failures]` profile other than `off`).
    pub enabled: bool,
    /// Override: checkpoint-sweep grid points per size class.
    pub sweep_points: Option<usize>,
    /// Override: sweep span factor around the Young/Daly optimum.
    pub sweep_span: Option<f64>,
    /// Override: MTBF scale factors for the goodput frontier.
    pub mtbf_factors: Option<Vec<f64>>,
    /// Override: job-size bucket edges in GPUs, strictly increasing.
    pub size_buckets: Option<Vec<u32>>,
    /// Override: cluster-growth factors for the growth study.
    pub growth_factors: Option<Vec<f64>>,
    /// Override: checkpoint write cost in seconds.
    pub write_secs: Option<f64>,
}

/// One validated scenario: everything a pipeline run needs, parsed
/// from TOML with typed line/field diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (`[scenario] name`, required).
    pub name: String,
    /// Free-text description (optional, empty when absent).
    pub description: String,
    /// Default master seed; CLI `--seed` overrides it.
    pub seed: u64,
    /// Default workload scale; CLI `--scale` overrides it.
    pub scale: f64,
    /// Cluster shape.
    pub cluster: ClusterScenario,
    /// Workload population.
    pub workload: WorkloadScenario,
    /// Arrival-intensity process.
    pub arrivals: ArrivalProcess,
    /// Failure injection.
    pub failures: FailureScenario,
    /// Data-quality corruption profile name (`off` skips the stage).
    pub data_quality: String,
    /// Policy A/B arm in CLI syntax (`off`, `powercap:W`, `coshare`,
    /// `coshare-predicted`, `tiered`).
    pub policy: String,
    /// Workload-classification stage.
    pub classifier: ClassifierScenario,
    /// Reliability-study stage.
    pub reliability: ReliabilityScenario,
}

impl Default for Scenario {
    /// The flag-driven defaults: exactly what `repro_figures` runs with
    /// no arguments (and what `scenarios/supercloud.toml` declares).
    fn default() -> Self {
        Scenario {
            name: "supercloud".to_string(),
            description: String::new(),
            seed: 42,
            scale: 1.0,
            cluster: ClusterScenario::default(),
            workload: WorkloadScenario::default(),
            arrivals: ArrivalProcess::Diurnal,
            failures: FailureScenario::default(),
            data_quality: "off".to_string(),
            policy: "off".to_string(),
            classifier: ClassifierScenario::default(),
            reliability: ReliabilityScenario::default(),
        }
    }
}

/// Typed access to one `[section]` with schema-aware errors.
struct Reader<'a> {
    sec: &'a TomlSection,
}

impl<'a> Reader<'a> {
    fn ctx(&self, key: &str) -> String {
        format!("[{}] {key}", self.sec.name)
    }

    /// Rejects any key outside the section's schema.
    fn check_keys(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        for e in &self.sec.entries {
            if !allowed.contains(&e.key.as_str()) {
                return Err(ScenarioError::new(e.line, self.ctx(&e.key), ErrorKind::UnknownKey));
            }
        }
        Ok(())
    }

    fn entry(&self, key: &str) -> Option<&'a TomlEntry> {
        self.sec.entries.iter().find(|e| e.key == key)
    }

    fn type_err(&self, e: &TomlEntry, expected: &'static str) -> ScenarioError {
        ScenarioError::new(
            e.line,
            self.ctx(&e.key),
            ErrorKind::Type { expected, found: e.value.type_name().to_string() },
        )
    }

    fn str_opt(&self, key: &str) -> Result<Option<(String, usize)>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                TomlValue::String(s) => Ok(Some((s.clone(), e.line))),
                _ => Err(self.type_err(e, "string")),
            },
        }
    }

    fn bool_opt(&self, key: &str) -> Result<Option<(bool, usize)>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value {
                TomlValue::Bool(v) => Ok(Some((v, e.line))),
                _ => Err(self.type_err(e, "boolean")),
            },
        }
    }

    /// Numbers: integers coerce to float (TOML writers disagree on
    /// `1` vs `1.0`), never the reverse.
    fn f64_opt(&self, key: &str) -> Result<Option<(f64, usize)>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value {
                TomlValue::Float(v) => Ok(Some((v, e.line))),
                TomlValue::Integer(v) => Ok(Some((v as f64, e.line))),
                _ => Err(self.type_err(e, "number")),
            },
        }
    }

    fn u64_opt(&self, key: &str) -> Result<Option<(u64, usize)>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value {
                TomlValue::Integer(v) if v >= 0 => Ok(Some((v as u64, e.line))),
                TomlValue::Integer(v) => Err(ScenarioError::new(
                    e.line,
                    self.ctx(key),
                    ErrorKind::Range(format!("{v} must not be negative")),
                )),
                _ => Err(self.type_err(e, "non-negative integer")),
            },
        }
    }

    fn u32_opt(&self, key: &str) -> Result<Option<(u32, usize)>, ScenarioError> {
        match self.u64_opt(key)? {
            None => Ok(None),
            Some((v, line)) => u32::try_from(v).map(|v| Some((v, line))).map_err(|_| {
                ScenarioError::new(
                    line,
                    self.ctx(key),
                    ErrorKind::Range(format!("{v} exceeds the u32 range")),
                )
            }),
        }
    }

    fn f64_array_opt(&self, key: &str) -> Result<Option<(Vec<f64>, usize)>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                TomlValue::Array(items) => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            TomlValue::Float(v) => out.push(*v),
                            TomlValue::Integer(v) => out.push(*v as f64),
                            other => {
                                return Err(ScenarioError::new(
                                    e.line,
                                    self.ctx(key),
                                    ErrorKind::Type {
                                        expected: "array of numbers",
                                        found: format!("array containing {}", other.type_name()),
                                    },
                                ))
                            }
                        }
                    }
                    Ok(Some((out, e.line)))
                }
                _ => Err(self.type_err(e, "array of numbers")),
            },
        }
    }

    fn u32_array_opt(&self, key: &str) -> Result<Option<(Vec<u32>, usize)>, ScenarioError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                TomlValue::Array(items) => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            TomlValue::Integer(v) => {
                                let v = u32::try_from(*v).map_err(|_| {
                                    ScenarioError::new(
                                        e.line,
                                        self.ctx(key),
                                        ErrorKind::Range(format!("{v} is outside the u32 range")),
                                    )
                                })?;
                                out.push(v);
                            }
                            other => {
                                return Err(ScenarioError::new(
                                    e.line,
                                    self.ctx(key),
                                    ErrorKind::Type {
                                        expected: "array of integers",
                                        found: format!("array containing {}", other.type_name()),
                                    },
                                ))
                            }
                        }
                    }
                    Ok(Some((out, e.line)))
                }
                _ => Err(self.type_err(e, "array of integers")),
            },
        }
    }
}

/// Range-checks a value, citing its source line.
fn check(
    line: usize,
    ctx: &str,
    ok: bool,
    msg: impl FnOnce() -> String,
) -> Result<(), ScenarioError> {
    if ok {
        Ok(())
    } else {
        Err(ScenarioError::new(line, ctx, ErrorKind::Range(msg())))
    }
}

/// `f64` in canonical TOML form (round-trips exactly via `{:?}`).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

impl Scenario {
    /// Section names the schema knows.
    const SECTIONS: [&'static str; 9] = [
        "scenario",
        "cluster",
        "workload",
        "arrivals",
        "failures",
        "data_quality",
        "policy",
        "classifier",
        "reliability",
    ];

    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] carrying the 1-based line and the
    /// `[section] key` context for the first grammar, schema, type, or
    /// range violation. Malformed input never panics.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = parse_toml(text)?;
        for sec in &doc.sections {
            if !Self::SECTIONS.contains(&sec.name.as_str()) {
                return Err(ScenarioError::new(
                    sec.line,
                    format!("[{}]", sec.name),
                    ErrorKind::UnknownSection,
                ));
            }
        }

        // [scenario] — the one required section.
        let sec = doc.section("scenario").ok_or_else(|| {
            ScenarioError::new(0, "", ErrorKind::Missing("section [scenario]".to_string()))
        })?;
        let r = Reader { sec };
        r.check_keys(&["name", "description", "seed", "scale"])?;
        let (name, name_line) = r.str_opt("name")?.ok_or_else(|| {
            ScenarioError::new(sec.line, "[scenario] name", ErrorKind::Missing("key".to_string()))
        })?;
        check(name_line, "[scenario] name", !name.trim().is_empty(), || {
            "name must not be empty".to_string()
        })?;
        let description = r.str_opt("description")?.map(|(s, _)| s).unwrap_or_default();
        let seed = r.u64_opt("seed")?.map(|(v, _)| v).unwrap_or(42);
        let scale = match r.f64_opt("scale")? {
            None => 1.0,
            Some((v, line)) => {
                check(line, "[scenario] scale", v > 0.0 && v.is_finite(), || {
                    format!("{v} must be a positive finite factor")
                })?;
                v
            }
        };

        let cluster = Self::parse_cluster(&doc)?;
        let workload = Self::parse_workload(&doc)?;
        let arrivals = Self::parse_arrivals(&doc)?;
        let failures = Self::parse_failures(&doc)?;
        let data_quality =
            Self::parse_profile_section(&doc, "data_quality", DataQualityProfile::NAMES, |name| {
                DataQualityProfile::parse(name).is_some()
            })?;
        let policy = Self::parse_policy(&doc)?;
        let classifier = Self::parse_classifier(&doc)?;
        let reliability = Self::parse_reliability(&doc, &failures)?;

        Ok(Scenario {
            name,
            description,
            seed,
            scale,
            cluster,
            workload,
            arrivals,
            failures,
            data_quality,
            policy,
            classifier,
            reliability,
        })
    }

    fn parse_cluster(doc: &crate::toml::TomlDoc) -> Result<ClusterScenario, ScenarioError> {
        let Some(sec) = doc.section("cluster") else {
            return Ok(ClusterScenario::default());
        };
        let r = Reader { sec };
        r.check_keys(&[
            "preset",
            "nodes",
            "gpus_per_node",
            "nodes_per_switch",
            "cpu_only_nodes",
            "interconnect",
            "slow_tier_nodes",
            "slow_tier_speed",
        ])?;
        let mut c = ClusterScenario::default();
        if let Some((preset, line)) = r.str_opt("preset")? {
            if preset != "supercloud" {
                return Err(ScenarioError::new(
                    line,
                    "[cluster] preset",
                    ErrorKind::UnknownName(format!("{preset} (expected supercloud)")),
                ));
            }
            c.preset = preset;
        }
        if let Some((v, line)) = r.u32_opt("nodes")? {
            check(line, "[cluster] nodes", v >= 1, || "need at least one node".to_string())?;
            c.nodes = Some(v);
        }
        if let Some((v, line)) = r.u32_opt("gpus_per_node")? {
            check(line, "[cluster] gpus_per_node", v >= 1, || {
                "need at least one GPU per node".to_string()
            })?;
            c.gpus_per_node = Some(v);
        }
        if let Some((v, line)) = r.u32_opt("nodes_per_switch")? {
            check(line, "[cluster] nodes_per_switch", v >= 1, || {
                "need at least one node per switch".to_string()
            })?;
            c.nodes_per_switch = Some(v);
        }
        c.cpu_only_nodes = r.u32_opt("cpu_only_nodes")?.map(|(v, _)| v);
        c.interconnect = r.str_opt("interconnect")?.map(|(s, _)| s);
        c.slow_tier_nodes = r.u32_opt("slow_tier_nodes")?.map(|(v, _)| v);
        if let Some((v, line)) = r.f64_opt("slow_tier_speed")? {
            check(line, "[cluster] slow_tier_speed", v > 0.0 && v <= 1.0, || {
                format!("{v} must be in (0, 1]")
            })?;
            c.slow_tier_speed = Some(v);
        }
        match (c.slow_tier_nodes, c.slow_tier_speed) {
            (Some(_), None) | (None, Some(_)) => {
                return Err(ScenarioError::new(
                    sec.line,
                    "[cluster]",
                    ErrorKind::Missing(
                        "slow_tier_nodes and slow_tier_speed must be set together".to_string(),
                    ),
                ))
            }
            _ => {}
        }
        Ok(c)
    }

    fn parse_workload(doc: &crate::toml::TomlDoc) -> Result<WorkloadScenario, ScenarioError> {
        let Some(sec) = doc.section("workload") else {
            return Ok(WorkloadScenario::default());
        };
        let r = Reader { sec };
        r.check_keys(&[
            "preset",
            "duration_days",
            "users",
            "total_jobs",
            "gpu_job_fraction",
            "cpu_burst_mean",
            "diurnal_amplitude",
            "deadline_surge_amplitude",
            "deadline_days",
        ])?;
        let mut w = WorkloadScenario::default();
        if let Some((preset, line)) = r.str_opt("preset")? {
            if !matches!(preset.as_str(), "supercloud" | "philly") {
                return Err(ScenarioError::new(
                    line,
                    "[workload] preset",
                    ErrorKind::UnknownName(format!("{preset} (expected supercloud|philly)")),
                ));
            }
            w.preset = preset;
        }
        if let Some((v, line)) = r.f64_opt("duration_days")? {
            check(line, "[workload] duration_days", v > 0.0 && v.is_finite(), || {
                format!("{v} must be a positive finite day count")
            })?;
            w.duration_days = Some(v);
        }
        if let Some((v, line)) = r.u64_opt("users")? {
            check(line, "[workload] users", v >= 1, || "need at least one user".to_string())?;
            w.users = Some(v as usize);
        }
        if let Some((v, line)) = r.u64_opt("total_jobs")? {
            check(line, "[workload] total_jobs", v >= 1, || "need at least one job".to_string())?;
            w.total_jobs = Some(v as usize);
        }
        if let Some((v, line)) = r.f64_opt("gpu_job_fraction")? {
            check(line, "[workload] gpu_job_fraction", (0.0..=1.0).contains(&v), || {
                format!("{v} must be a fraction in [0, 1]")
            })?;
            w.gpu_job_fraction = Some(v);
        }
        if let Some((v, line)) = r.f64_opt("cpu_burst_mean")? {
            check(line, "[workload] cpu_burst_mean", v >= 1.0 && v.is_finite(), || {
                format!("{v} must be at least 1")
            })?;
            w.cpu_burst_mean = Some(v);
        }
        if let Some((v, line)) = r.f64_opt("diurnal_amplitude")? {
            check(line, "[workload] diurnal_amplitude", (0.0..1.0).contains(&v), || {
                format!("{v} must be in [0, 1) so the intensity stays positive")
            })?;
            w.diurnal_amplitude = Some(v);
        }
        if let Some((v, line)) = r.f64_opt("deadline_surge_amplitude")? {
            check(line, "[workload] deadline_surge_amplitude", v >= 0.0 && v.is_finite(), || {
                format!("{v} must not be negative")
            })?;
            w.deadline_surge_amplitude = Some(v);
        }
        if let Some((days, line)) = r.f64_array_opt("deadline_days")? {
            for &d in &days {
                check(line, "[workload] deadline_days", d >= 0.0 && d.is_finite(), || {
                    format!("day {d} must not be negative")
                })?;
            }
            w.deadline_days = Some(days);
        }
        Ok(w)
    }

    fn parse_arrivals(doc: &crate::toml::TomlDoc) -> Result<ArrivalProcess, ScenarioError> {
        let Some(sec) = doc.section("arrivals") else {
            return Ok(ArrivalProcess::Diurnal);
        };
        let r = Reader { sec };
        r.check_keys(&["process", "period_days", "width_days", "amplitude", "low"])?;
        let (process, line) = match r.str_opt("process")? {
            Some(v) => v,
            None => ("diurnal".to_string(), sec.line),
        };
        let require = |key: &str| -> Result<(f64, usize), ScenarioError> {
            r.f64_opt(key)?.ok_or_else(|| {
                ScenarioError::new(
                    sec.line,
                    format!("[arrivals] {key}"),
                    ErrorKind::Missing(format!("key (required by process = \"{process}\")")),
                )
            })
        };
        // Keys outside the chosen process's parameter set are schema
        // violations, not silently-ignored extras.
        let applicable: &[&str] = match process.as_str() {
            "poisson" | "diurnal" => &["process"],
            "spikes" => &["process", "period_days", "width_days", "amplitude"],
            "up-and-down" => &["process", "period_days", "low"],
            other => {
                return Err(ScenarioError::new(
                    line,
                    "[arrivals] process",
                    ErrorKind::UnknownName(format!(
                        "{other} (expected poisson|diurnal|spikes|up-and-down)"
                    )),
                ))
            }
        };
        for e in &sec.entries {
            if !applicable.contains(&e.key.as_str()) {
                return Err(ScenarioError::new(
                    e.line,
                    format!("[arrivals] {}", e.key),
                    ErrorKind::Range(format!("not a parameter of process = \"{process}\"")),
                ));
            }
        }
        match process.as_str() {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "diurnal" => Ok(ArrivalProcess::Diurnal),
            "spikes" => {
                let (period_days, pl) = require("period_days")?;
                check(
                    pl,
                    "[arrivals] period_days",
                    period_days > 0.0 && period_days.is_finite(),
                    || format!("{period_days} must be a positive finite day count"),
                )?;
                let (width_days, wl) = require("width_days")?;
                check(
                    wl,
                    "[arrivals] width_days",
                    width_days > 0.0 && width_days.is_finite(),
                    || format!("{width_days} must be a positive finite day count"),
                )?;
                let (amplitude, al) = require("amplitude")?;
                check(
                    al,
                    "[arrivals] amplitude",
                    amplitude >= 0.0 && amplitude.is_finite(),
                    || format!("{amplitude} must not be negative"),
                )?;
                Ok(ArrivalProcess::Spikes { period_days, width_days, amplitude })
            }
            "up-and-down" => {
                let (period_days, pl) = require("period_days")?;
                check(
                    pl,
                    "[arrivals] period_days",
                    period_days > 0.0 && period_days.is_finite(),
                    || format!("{period_days} must be a positive finite day count"),
                )?;
                let (low, ll) = require("low")?;
                check(ll, "[arrivals] low", low > 0.0 && low <= 1.0, || {
                    format!("{low} must be in (0, 1]")
                })?;
                Ok(ArrivalProcess::UpAndDown { period_days, low })
            }
            _ => unreachable!("process validated above"),
        }
    }

    fn parse_failures(doc: &crate::toml::TomlDoc) -> Result<FailureScenario, ScenarioError> {
        let Some(sec) = doc.section("failures") else {
            return Ok(FailureScenario::default());
        };
        let r = Reader { sec };
        r.check_keys(&["profile", "mtbf_factor"])?;
        let mut f = FailureScenario::default();
        if let Some((profile, line)) = r.str_opt("profile")? {
            if FailureModel::profile(&profile, 0).is_none() {
                return Err(ScenarioError::new(
                    line,
                    "[failures] profile",
                    ErrorKind::UnknownName(format!(
                        "{profile} (expected {})",
                        FailureModel::PROFILE_NAMES
                    )),
                ));
            }
            f.profile = profile;
        }
        if let Some((v, line)) = r.f64_opt("mtbf_factor")? {
            check(line, "[failures] mtbf_factor", v > 0.0 && v.is_finite(), || {
                format!("{v} must be a positive finite factor")
            })?;
            check(line, "[failures] mtbf_factor", f.profile != "off", || {
                "mtbf_factor needs a profile other than off".to_string()
            })?;
            f.mtbf_factor = Some(v);
        }
        Ok(f)
    }

    /// Parses a one-key `[name] profile = "..."` section validated by
    /// `accepts`.
    fn parse_profile_section(
        doc: &crate::toml::TomlDoc,
        section: &'static str,
        names: &str,
        accepts: impl Fn(&str) -> bool,
    ) -> Result<String, ScenarioError> {
        let Some(sec) = doc.section(section) else {
            return Ok("off".to_string());
        };
        let r = Reader { sec };
        r.check_keys(&["profile"])?;
        match r.str_opt("profile")? {
            None => Ok("off".to_string()),
            Some((profile, line)) => {
                if !accepts(&profile) {
                    return Err(ScenarioError::new(
                        line,
                        format!("[{section}] profile"),
                        ErrorKind::UnknownName(format!("{profile} (expected {names})")),
                    ));
                }
                Ok(profile)
            }
        }
    }

    fn parse_policy(doc: &crate::toml::TomlDoc) -> Result<String, ScenarioError> {
        let Some(sec) = doc.section("policy") else {
            return Ok("off".to_string());
        };
        let r = Reader { sec };
        r.check_keys(&["arm"])?;
        match r.str_opt("arm")? {
            None => Ok("off".to_string()),
            Some((arm, line)) => match PolicySpec::parse(&arm) {
                Ok(_) => Ok(arm),
                Err(e) => Err(ScenarioError::new(line, "[policy] arm", ErrorKind::UnknownName(e))),
            },
        }
    }

    fn parse_classifier(doc: &crate::toml::TomlDoc) -> Result<ClassifierScenario, ScenarioError> {
        let Some(sec) = doc.section("classifier") else {
            return Ok(ClassifierScenario::default());
        };
        let r = Reader { sec };
        r.check_keys(&["enabled", "trees", "seed", "train_fraction"])?;
        let mut c = ClassifierScenario::default();
        if let Some((v, _)) = r.bool_opt("enabled")? {
            c.enabled = v;
        }
        if let Some((v, line)) = r.u64_opt("trees")? {
            check(line, "[classifier] trees", v >= 1, || "need at least one tree".to_string())?;
            c.trees = Some(v as usize);
        }
        c.seed = r.u64_opt("seed")?.map(|(v, _)| v);
        if let Some((v, line)) = r.f64_opt("train_fraction")? {
            check(line, "[classifier] train_fraction", v > 0.0 && v < 1.0, || {
                format!("{v} must be in (0, 1) so both splits stay populated")
            })?;
            c.train_fraction = Some(v);
        }
        Ok(c)
    }

    fn parse_reliability(
        doc: &crate::toml::TomlDoc,
        failures: &FailureScenario,
    ) -> Result<ReliabilityScenario, ScenarioError> {
        let Some(sec) = doc.section("reliability") else {
            return Ok(ReliabilityScenario::default());
        };
        let r = Reader { sec };
        r.check_keys(&[
            "enabled",
            "sweep_points",
            "sweep_span",
            "mtbf_factors",
            "size_buckets",
            "growth_factors",
            "write_secs",
        ])?;
        let mut rel = ReliabilityScenario::default();
        if let Some((v, line)) = r.bool_opt("enabled")? {
            check(line, "[reliability] enabled", !v || failures.profile != "off", || {
                "the study needs a [failures] profile other than off".to_string()
            })?;
            rel.enabled = v;
        }
        if let Some((v, line)) = r.u64_opt("sweep_points")? {
            check(line, "[reliability] sweep_points", v >= 2, || {
                "the sweep grid needs at least two points".to_string()
            })?;
            rel.sweep_points = Some(v as usize);
        }
        if let Some((v, line)) = r.f64_opt("sweep_span")? {
            check(line, "[reliability] sweep_span", v > 1.0 && v.is_finite(), || {
                format!("{v} must be a finite factor above 1 so the grid brackets the optimum")
            })?;
            rel.sweep_span = Some(v);
        }
        if let Some((v, line)) = r.f64_array_opt("mtbf_factors")? {
            check(line, "[reliability] mtbf_factors", !v.is_empty(), || {
                "need at least one MTBF factor".to_string()
            })?;
            check(
                line,
                "[reliability] mtbf_factors",
                v.iter().all(|f| *f > 0.0 && f.is_finite()),
                || "every factor must be positive and finite".to_string(),
            )?;
            rel.mtbf_factors = Some(v);
        }
        if let Some((v, line)) = r.u32_array_opt("size_buckets")? {
            check(line, "[reliability] size_buckets", !v.is_empty(), || {
                "need at least one bucket edge".to_string()
            })?;
            check(line, "[reliability] size_buckets", v.iter().all(|&e| e >= 1), || {
                "every edge must be at least 1 GPU".to_string()
            })?;
            check(line, "[reliability] size_buckets", v.windows(2).all(|w| w[0] < w[1]), || {
                "edges must be strictly increasing".to_string()
            })?;
            rel.size_buckets = Some(v);
        }
        if let Some((v, line)) = r.f64_array_opt("growth_factors")? {
            check(line, "[reliability] growth_factors", !v.is_empty(), || {
                "need at least one growth factor".to_string()
            })?;
            check(
                line,
                "[reliability] growth_factors",
                v.iter().all(|f| *f > 0.0 && f.is_finite()),
                || "every factor must be positive and finite".to_string(),
            )?;
            rel.growth_factors = Some(v);
        }
        if let Some((v, line)) = r.f64_opt("write_secs")? {
            check(line, "[reliability] write_secs", v > 0.0 && v.is_finite(), || {
                format!("{v} must be a positive finite checkpoint write cost")
            })?;
            rel.write_secs = Some(v);
        }
        Ok(rel)
    }

    /// The resolved reliability-study configuration: the `sc-core`
    /// defaults with this scenario's overrides applied (size buckets
    /// flow through [`Scenario::sim_config`] instead, since the
    /// accumulator lives in the simulator).
    pub fn reliability_config(&self) -> sc_core::ReliabilityConfig {
        let mut cfg = sc_core::ReliabilityConfig::default();
        if let Some(v) = self.reliability.sweep_points {
            cfg.sweep_points = v;
        }
        if let Some(v) = self.reliability.sweep_span {
            cfg.sweep_span = v;
        }
        if let Some(v) = &self.reliability.mtbf_factors {
            cfg.mtbf_factors = v.clone();
        }
        if let Some(v) = &self.reliability.growth_factors {
            cfg.growth_factors = v.clone();
        }
        if let Some(v) = self.reliability.write_secs {
            cfg.write_secs = v;
        }
        cfg
    }

    /// The resolved classifier configuration: the `sc-learn` defaults
    /// with this scenario's overrides applied. Identical to
    /// [`sc_learn::ClassifierConfig::default`] when the `[classifier]`
    /// section sets nothing, so a scenario-driven run matches the
    /// flag-driven one byte-for-byte.
    pub fn classifier_config(&self) -> sc_learn::ClassifierConfig {
        let mut cfg = sc_learn::ClassifierConfig::default();
        if let Some(v) = self.classifier.trees {
            cfg.trees = v;
        }
        if let Some(v) = self.classifier.seed {
            cfg.seed = v;
        }
        if let Some(v) = self.classifier.train_fraction {
            cfg.train_fraction = v;
        }
        cfg
    }

    /// The unscaled workload spec: preset, overrides, and arrival
    /// process applied.
    pub fn workload_spec(&self) -> WorkloadSpec {
        let mut spec = match self.workload.preset.as_str() {
            "philly" => WorkloadSpec::philly(),
            _ => WorkloadSpec::supercloud(),
        };
        if let Some(v) = self.workload.duration_days {
            spec.duration_days = v;
        }
        if let Some(v) = self.workload.users {
            spec.users = v;
        }
        if let Some(v) = self.workload.total_jobs {
            spec.total_jobs = v;
        }
        if let Some(v) = self.workload.gpu_job_fraction {
            spec.gpu_job_fraction = v;
        }
        if let Some(v) = self.workload.cpu_burst_mean {
            spec.cpu_burst_mean = v;
        }
        if let Some(v) = self.workload.diurnal_amplitude {
            spec.diurnal_amplitude = v;
        }
        if let Some(v) = self.workload.deadline_surge_amplitude {
            spec.deadline_surge_amplitude = v;
        }
        if let Some(v) = &self.workload.deadline_days {
            spec.deadline_days = v.clone();
        }
        spec.arrival_process = self.arrivals;
        spec
    }

    /// The workload spec scaled by `scale` (the CLI's effective scale,
    /// which may override [`Scenario::scale`]).
    pub fn scaled_spec(&self, scale: f64) -> WorkloadSpec {
        self.workload_spec().scaled(scale)
    }

    /// The resolved cluster hardware.
    pub fn cluster_spec(&self) -> ClusterSpec {
        let mut spec = ClusterSpec::supercloud();
        if let Some(v) = self.cluster.nodes {
            spec.nodes = v;
        }
        if let Some(v) = self.cluster.gpus_per_node {
            spec.node.gpus = v;
        }
        if let Some(v) = self.cluster.nodes_per_switch {
            spec.nodes_per_switch = v;
        }
        if let Some(v) = self.cluster.cpu_only_nodes {
            spec.cpu_only_nodes = v;
        }
        if let Some(v) = &self.cluster.interconnect {
            spec.interconnect = v.clone();
        }
        if let (Some(nodes), Some(speed)) =
            (self.cluster.slow_tier_nodes, self.cluster.slow_tier_speed)
        {
            spec.slow_tier = Some(SlowTierSpec { nodes, speed });
        }
        spec
    }

    /// The failure model at `seed`, or `None` for profile `off`.
    pub fn failure_model(&self, seed: u64) -> Option<FailureModel> {
        let model = FailureModel::profile(&self.failures.profile, seed)
            .expect("profile validated at parse time")?;
        Some(match self.failures.mtbf_factor {
            // The factor was range-checked at parse time, so the typed
            // constructor cannot fail here.
            Some(f) => model.try_scaled_mtbf(f).expect("mtbf_factor validated at parse time"),
            None => model,
        })
    }

    /// The full simulator configuration at `scale` and `seed` —
    /// identical to what the flag-driven CLI builds: the detailed-series
    /// subset follows the `2,149 × scale` rule and checkpointing runs
    /// at the Young interval for the failure model's interrupt rate.
    pub fn sim_config(&self, scale: f64, seed: u64) -> SimConfig {
        let detailed = ((2_149.0 * scale).round() as usize).max(50);
        let failures = self.failure_model(seed);
        let checkpoint = failures.as_ref().map(|model| {
            let rate: f64 = model.classes.iter().map(|c| 1.0 / c.interarrival.mtbf_secs()).sum();
            CheckpointConfig::for_mtti(1.0 / rate).sim_policy()
        });
        let mut cfg = SimConfig {
            cluster: self.cluster_spec(),
            detailed_series_jobs: detailed,
            failures,
            checkpoint,
            ..Default::default()
        };
        if let Some(edges) = &self.reliability.size_buckets {
            cfg.size_bucket_edges = edges.clone();
        }
        cfg
    }

    /// The policy A/B arm.
    pub fn policy_spec(&self) -> PolicySpec {
        PolicySpec::parse(&self.policy).expect("policy validated at parse time")
    }

    /// The data-quality corruption profile.
    pub fn data_quality_profile(&self) -> DataQualityProfile {
        DataQualityProfile::parse(&self.data_quality).expect("profile validated at parse time")
    }

    /// Canonical TOML serialization: only explicit overrides are
    /// emitted, so `parse(to_toml(s)) == s` exactly (floats render via
    /// `{:?}`, which round-trips `f64`).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[scenario]\n");
        push_kv(&mut out, "name", &TomlValue::String(self.name.clone()));
        if !self.description.is_empty() {
            push_kv(&mut out, "description", &TomlValue::String(self.description.clone()));
        }
        push_kv(&mut out, "seed", &TomlValue::Integer(self.seed as i64));
        push_kv(&mut out, "scale", &TomlValue::Float(self.scale));

        out.push_str("\n[cluster]\n");
        push_kv(&mut out, "preset", &TomlValue::String(self.cluster.preset.clone()));
        push_opt_u32(&mut out, "nodes", self.cluster.nodes);
        push_opt_u32(&mut out, "gpus_per_node", self.cluster.gpus_per_node);
        push_opt_u32(&mut out, "nodes_per_switch", self.cluster.nodes_per_switch);
        push_opt_u32(&mut out, "cpu_only_nodes", self.cluster.cpu_only_nodes);
        if let Some(v) = &self.cluster.interconnect {
            push_kv(&mut out, "interconnect", &TomlValue::String(v.clone()));
        }
        push_opt_u32(&mut out, "slow_tier_nodes", self.cluster.slow_tier_nodes);
        push_opt_f64(&mut out, "slow_tier_speed", self.cluster.slow_tier_speed);

        out.push_str("\n[workload]\n");
        push_kv(&mut out, "preset", &TomlValue::String(self.workload.preset.clone()));
        push_opt_f64(&mut out, "duration_days", self.workload.duration_days);
        push_opt_usize(&mut out, "users", self.workload.users);
        push_opt_usize(&mut out, "total_jobs", self.workload.total_jobs);
        push_opt_f64(&mut out, "gpu_job_fraction", self.workload.gpu_job_fraction);
        push_opt_f64(&mut out, "cpu_burst_mean", self.workload.cpu_burst_mean);
        push_opt_f64(&mut out, "diurnal_amplitude", self.workload.diurnal_amplitude);
        push_opt_f64(&mut out, "deadline_surge_amplitude", self.workload.deadline_surge_amplitude);
        if let Some(days) = &self.workload.deadline_days {
            let items = days.iter().map(|&d| TomlValue::Float(d)).collect();
            push_kv(&mut out, "deadline_days", &TomlValue::Array(items));
        }

        out.push_str("\n[arrivals]\n");
        push_kv(&mut out, "process", &TomlValue::String(self.arrivals.label().to_string()));
        match self.arrivals {
            ArrivalProcess::Poisson | ArrivalProcess::Diurnal => {}
            ArrivalProcess::Spikes { period_days, width_days, amplitude } => {
                push_kv(&mut out, "period_days", &TomlValue::Float(period_days));
                push_kv(&mut out, "width_days", &TomlValue::Float(width_days));
                push_kv(&mut out, "amplitude", &TomlValue::Float(amplitude));
            }
            ArrivalProcess::UpAndDown { period_days, low } => {
                push_kv(&mut out, "period_days", &TomlValue::Float(period_days));
                push_kv(&mut out, "low", &TomlValue::Float(low));
            }
        }

        out.push_str("\n[failures]\n");
        push_kv(&mut out, "profile", &TomlValue::String(self.failures.profile.clone()));
        push_opt_f64(&mut out, "mtbf_factor", self.failures.mtbf_factor);

        out.push_str("\n[data_quality]\n");
        push_kv(&mut out, "profile", &TomlValue::String(self.data_quality.clone()));

        out.push_str("\n[policy]\n");
        push_kv(&mut out, "arm", &TomlValue::String(self.policy.clone()));

        out.push_str("\n[classifier]\n");
        push_kv(&mut out, "enabled", &TomlValue::Bool(self.classifier.enabled));
        push_opt_usize(&mut out, "trees", self.classifier.trees);
        if let Some(v) = self.classifier.seed {
            push_kv(&mut out, "seed", &TomlValue::Integer(v as i64));
        }
        push_opt_f64(&mut out, "train_fraction", self.classifier.train_fraction);

        out.push_str("\n[reliability]\n");
        push_kv(&mut out, "enabled", &TomlValue::Bool(self.reliability.enabled));
        push_opt_usize(&mut out, "sweep_points", self.reliability.sweep_points);
        push_opt_f64(&mut out, "sweep_span", self.reliability.sweep_span);
        if let Some(v) = &self.reliability.mtbf_factors {
            let items = v.iter().map(|&f| TomlValue::Float(f)).collect();
            push_kv(&mut out, "mtbf_factors", &TomlValue::Array(items));
        }
        if let Some(v) = &self.reliability.size_buckets {
            let items = v.iter().map(|&e| TomlValue::Integer(e as i64)).collect();
            push_kv(&mut out, "size_buckets", &TomlValue::Array(items));
        }
        if let Some(v) = &self.reliability.growth_factors {
            let items = v.iter().map(|&f| TomlValue::Float(f)).collect();
            push_kv(&mut out, "growth_factors", &TomlValue::Array(items));
        }
        push_opt_f64(&mut out, "write_secs", self.reliability.write_secs);
        out
    }

    /// FNV-1a 64 over the canonical serialization: two scenarios hash
    /// equal iff every parameter matches. Used as the serve-layer memo
    /// cache key dimension.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_toml().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Deterministic human-readable summary (golden-tested per preset).
    pub fn render_summary(&self) -> String {
        let cluster = self.cluster_spec();
        let spec = self.workload_spec();
        let mut out = String::new();
        out.push_str(&format!("scenario {} (hash {:016x})\n", self.name, self.hash()));
        if !self.description.is_empty() {
            out.push_str(&format!("  {}\n", self.description));
        }
        out.push_str(&format!(
            "  cluster:      {} nodes x {} GPUs = {} GPUs, {} nodes/switch, {}\n",
            cluster.nodes,
            cluster.node.gpus,
            cluster.total_gpus(),
            cluster.nodes_per_switch,
            cluster.interconnect
        ));
        if let Some(t) = cluster.slow_tier {
            out.push_str(&format!(
                "                slow tier: {} nodes at {}x speed\n",
                t.nodes, t.speed
            ));
        }
        if cluster.cpu_only_nodes > 0 {
            out.push_str(&format!(
                "                cpu-only tier: {} nodes\n",
                cluster.cpu_only_nodes
            ));
        }
        out.push_str(&format!(
            "  workload:     {} base: {} jobs / {} users over {} days, {}% GPU jobs\n",
            self.workload.preset,
            spec.total_jobs,
            spec.users,
            spec.duration_days,
            (spec.gpu_job_fraction * 100.0).round()
        ));
        out.push_str(&format!("  arrivals:     {}", self.arrivals.label()));
        match self.arrivals {
            ArrivalProcess::Poisson | ArrivalProcess::Diurnal => out.push('\n'),
            ArrivalProcess::Spikes { period_days, width_days, amplitude } => {
                out.push_str(&format!(
                    " (period {period_days} d, width {width_days} d, amplitude {amplitude})\n"
                ));
            }
            ArrivalProcess::UpAndDown { period_days, low } => {
                out.push_str(&format!(" (period {period_days} d, low {low})\n"));
            }
        }
        out.push_str(&format!("  failures:     {}", self.failures.profile));
        match self.failures.mtbf_factor {
            Some(f) => out.push_str(&format!(" (mtbf x {f})\n")),
            None => out.push('\n'),
        }
        out.push_str(&format!("  data-quality: {}\n", self.data_quality));
        out.push_str(&format!("  policy:       {}\n", self.policy));
        if self.classifier.enabled {
            let cfg = self.classifier_config();
            out.push_str(&format!(
                "  classifier:   on ({} trees, seed {}, train fraction {})\n",
                cfg.trees, cfg.seed, cfg.train_fraction
            ));
        } else {
            out.push_str("  classifier:   off\n");
        }
        if self.reliability.enabled {
            let cfg = self.reliability_config();
            let buckets = match &self.reliability.size_buckets {
                Some(v) => format!("{v:?}"),
                None => "canonical".to_string(),
            };
            out.push_str(&format!(
                "  reliability:  on ({} sweep points, span {}, mtbf factors {:?}, buckets {})\n",
                cfg.sweep_points, cfg.sweep_span, cfg.mtbf_factors, buckets
            ));
        } else {
            out.push_str("  reliability:  off\n");
        }
        out.push_str(&format!("  defaults:     scale {}, seed {}\n", self.scale, self.seed));
        out
    }
}

fn push_kv(out: &mut String, key: &str, value: &TomlValue) {
    out.push_str(key);
    out.push_str(" = ");
    render_value(value, out);
    out.push('\n');
}

fn push_opt_u32(out: &mut String, key: &str, value: Option<u32>) {
    if let Some(v) = value {
        push_kv(out, key, &TomlValue::Integer(v as i64));
    }
}

fn push_opt_usize(out: &mut String, key: &str, value: Option<usize>) {
    if let Some(v) = value {
        push_kv(out, key, &TomlValue::Integer(v as i64));
    }
}

fn push_opt_f64(out: &mut String, key: &str, value: Option<f64>) {
    if let Some(v) = value {
        let _ = fmt_f64(v); // canonical form documented above
        push_kv(out, key, &TomlValue::Float(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "[scenario]\nname = \"minimal\"\n";

    #[test]
    fn minimal_scenario_gets_defaults() {
        let s = Scenario::parse(MINIMAL).expect("valid");
        assert_eq!(s.name, "minimal");
        assert_eq!(s.seed, 42);
        assert_eq!(s.scale, 1.0);
        assert_eq!(s.arrivals, ArrivalProcess::Diurnal);
        assert_eq!(s.failures.profile, "off");
        assert_eq!(s.data_quality, "off");
        assert_eq!(s.policy, "off");
        assert_eq!(s.workload_spec(), WorkloadSpec::supercloud());
        assert_eq!(s.cluster_spec(), ClusterSpec::supercloud());
    }

    #[test]
    fn minimal_sim_config_matches_flag_default() {
        let s = Scenario::parse(MINIMAL).expect("valid");
        let config = s.sim_config(1.0, 42);
        let default_detailed = ((2_149.0_f64 * 1.0).round() as usize).max(50);
        let reference = SimConfig { detailed_series_jobs: default_detailed, ..Default::default() };
        assert_eq!(config.cluster, reference.cluster);
        assert_eq!(config.detailed_series_jobs, reference.detailed_series_jobs);
        assert!(config.failures.is_none());
        assert!(config.checkpoint.is_none());
    }

    #[test]
    fn round_trips_exactly() {
        let text = "[scenario]\nname = \"rt\"\ndescription = \"d\"\nseed = 7\nscale = 0.25\n\
                    [cluster]\nnodes = 100\nslow_tier_nodes = 10\nslow_tier_speed = 0.5\n\
                    [workload]\npreset = \"philly\"\ngpu_job_fraction = 0.9\n\
                    deadline_days = [10.0, 20.5]\n\
                    [arrivals]\nprocess = \"spikes\"\nperiod_days = 14.0\nwidth_days = 1.5\n\
                    amplitude = 2.0\n\
                    [failures]\nprofile = \"stress\"\nmtbf_factor = 0.5\n\
                    [data_quality]\nprofile = \"lossy\"\n\
                    [policy]\narm = \"powercap:250\"\n";
        let s = Scenario::parse(text).expect("valid");
        let round = Scenario::parse(&s.to_toml()).expect("serialized form parses");
        assert_eq!(s, round);
        assert_eq!(s.hash(), round.hash());
    }

    #[test]
    fn unknown_section_and_key_carry_context() {
        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[wourkload]\npreset = \"y\"\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownSection);
        assert_eq!(err.context, "[wourkload]");
        assert_eq!(err.line, 3);

        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[workload]\nuserz = 10\n").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownKey);
        assert_eq!(err.context, "[workload] userz");
        assert_eq!(err.line, 4);
    }

    #[test]
    fn range_violations_are_typed() {
        let err = Scenario::parse("[scenario]\nname = \"x\"\nscale = -1.0\n").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.line, 3);

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[workload]\ngpu_job_fraction = 1.5\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[workload] gpu_job_fraction");
    }

    #[test]
    fn arrivals_require_their_parameters() {
        let err = Scenario::parse("[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"spikes\"\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Missing(_)), "{err}");
        assert_eq!(err.context, "[arrivals] period_days");

        // Parameters from the wrong process are rejected, not ignored.
        let err = Scenario::parse(
            "[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"poisson\"\nlow = 0.5\n",
        )
        .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn profile_names_validated_against_real_registries() {
        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[failures]\nprofile = \"catastrophic\"\n")
                .unwrap_err();
        assert!(err.to_string().contains(FailureModel::PROFILE_NAMES), "{err}");

        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[policy]\narm = \"powercap:banana\"\n")
                .unwrap_err();
        assert_eq!(err.context, "[policy] arm");
    }

    #[test]
    fn philly_preset_resolves_philly_spec() {
        let s = Scenario::parse("[scenario]\nname = \"p\"\n[workload]\npreset = \"philly\"\n")
            .expect("valid");
        assert_eq!(s.workload_spec(), WorkloadSpec::philly());
    }

    #[test]
    fn classifier_section_parses_and_resolves_overrides() {
        let s = Scenario::parse(
            "[scenario]\nname = \"c\"\n[classifier]\nenabled = true\ntrees = 31\n\
             seed = 9\ntrain_fraction = 0.6\n",
        )
        .expect("valid");
        assert!(s.classifier.enabled);
        let cfg = s.classifier_config();
        assert_eq!((cfg.trees, cfg.seed), (31, 9));
        assert_eq!(cfg.train_fraction, 0.6);
        // Untouched knobs keep the library defaults.
        let defaults = sc_learn::ClassifierConfig::default();
        assert_eq!(cfg.max_jobs, defaults.max_jobs);
        assert_eq!(cfg.period_secs, defaults.period_secs);
        // Round trip: only the overrides serialize.
        let round = Scenario::parse(&s.to_toml()).expect("canonical form parses");
        assert_eq!(s, round);
    }

    #[test]
    fn absent_classifier_section_matches_library_defaults() {
        let s = Scenario::parse(MINIMAL).expect("valid");
        assert!(!s.classifier.enabled);
        assert_eq!(s.classifier_config(), sc_learn::ClassifierConfig::default());
    }

    #[test]
    fn classifier_diagnostics_are_typed() {
        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[classifier]\ntrees = 0\n").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[classifier] trees");
        assert_eq!(err.line, 4);

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[classifier]\ntrain_fraction = 1.0\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[classifier] train_fraction");

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[classifier]\nenabled = \"yes\"\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Type { .. }), "{err}");
        assert_eq!(err.context, "[classifier] enabled");

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[classifier]\nforest_size = 5\n")
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownKey);
        assert_eq!(err.context, "[classifier] forest_size");
    }

    #[test]
    fn reliability_section_parses_resolves_and_round_trips() {
        let s = Scenario::parse(
            "[scenario]\nname = \"r\"\n[failures]\nprofile = \"supercloud\"\n\
             [reliability]\nenabled = true\nsweep_points = 7\nsweep_span = 3.0\n\
             mtbf_factors = [1.0, 0.1]\nsize_buckets = [2, 8, 32]\n\
             growth_factors = [2.0, 8.0]\nwrite_secs = 45.0\n",
        )
        .expect("valid");
        assert!(s.reliability.enabled);
        let cfg = s.reliability_config();
        assert_eq!((cfg.sweep_points, cfg.sweep_span), (7, 3.0));
        assert_eq!(cfg.mtbf_factors, vec![1.0, 0.1]);
        assert_eq!(cfg.growth_factors, vec![2.0, 8.0]);
        assert_eq!(cfg.write_secs, 45.0);
        // Size buckets flow into the simulator config, not the study config.
        assert_eq!(s.sim_config(1.0, 42).size_bucket_edges, vec![2, 8, 32]);
        let round = Scenario::parse(&s.to_toml()).expect("canonical form parses");
        assert_eq!(s, round);
        assert_eq!(s.hash(), round.hash());
    }

    #[test]
    fn absent_reliability_section_matches_library_defaults() {
        let s = Scenario::parse(MINIMAL).expect("valid");
        assert!(!s.reliability.enabled);
        let cfg = s.reliability_config();
        let defaults = sc_core::ReliabilityConfig::default();
        assert_eq!(cfg.sweep_points, defaults.sweep_points);
        assert_eq!(cfg.mtbf_factors, defaults.mtbf_factors);
        assert_eq!(s.sim_config(1.0, 42).size_bucket_edges, SimConfig::default().size_bucket_edges);
    }

    #[test]
    fn reliability_diagnostics_are_typed() {
        // Enabling the study without a failure profile is a range error,
        // not a silent no-op.
        let err = Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nenabled = true\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[reliability] enabled");
        assert_eq!(err.line, 4);

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nsweep_points = 1\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[reliability] sweep_points");

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nsweep_span = 1.0\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[reliability] sweep_span");

        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nmtbf_factors = [1.0, 0.0]\n")
                .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[reliability] mtbf_factors");

        // Non-increasing bucket edges.
        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nsize_buckets = [8, 2]\n")
                .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[reliability] size_buckets");

        // Bucket edges must be integers, with the offending type named.
        let err =
            Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nsize_buckets = [2.5]\n")
                .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Type { .. }), "{err}");
        assert_eq!(err.context, "[reliability] size_buckets");

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\ngrowth_factor = 2.0\n")
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownKey);
        assert_eq!(err.context, "[reliability] growth_factor");

        let err = Scenario::parse("[scenario]\nname = \"x\"\n[reliability]\nwrite_secs = -1.0\n")
            .unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Range(_)), "{err}");
        assert_eq!(err.context, "[reliability] write_secs");
    }

    #[test]
    fn hash_distinguishes_scenarios() {
        let a = Scenario::parse(MINIMAL).expect("valid");
        let b = Scenario::parse("[scenario]\nname = \"minimal\"\nseed = 43\n").expect("valid");
        assert_ne!(a.hash(), b.hash());
    }
}
