//! The committed scenario presets, embedded at compile time so every
//! binary can resolve `--scenario supercloud` without a checkout, and
//! loading helpers that accept either a preset name or a file path.

use crate::error::{ErrorKind, ScenarioError};
use crate::scenario::Scenario;

/// The four committed presets, embedded from `scenarios/`.
const PRESETS: [(&str, &str); 4] = [
    ("supercloud", include_str!("../../../scenarios/supercloud.toml")),
    ("philly", include_str!("../../../scenarios/philly.toml")),
    ("nersc", include_str!("../../../scenarios/nersc.toml")),
    ("in2p3", include_str!("../../../scenarios/in2p3.toml")),
];

impl Scenario {
    /// Preset names accepted by [`Scenario::preset`] and
    /// [`Scenario::load`], pipe-separated for usage strings.
    pub const PRESET_NAMES: &'static str = "supercloud|philly|nersc|in2p3";

    /// All preset names, in presentation order.
    pub fn preset_names() -> impl Iterator<Item = &'static str> {
        PRESETS.iter().map(|(name, _)| *name)
    }

    /// The embedded preset named `name`, or `None` for an unknown name.
    ///
    /// # Panics
    ///
    /// Panics if an embedded preset fails to parse — the committed
    /// files are validated by the test suite, so that is a build bug,
    /// not an input error.
    pub fn preset(name: &str) -> Option<Scenario> {
        let (_, text) = PRESETS.iter().find(|(n, _)| *n == name)?;
        Some(Scenario::parse(text).unwrap_or_else(|e| panic!("embedded preset {name}: {e}")))
    }

    /// Loads a scenario from a preset name or a TOML file path —
    /// preset names win, so `--scenario supercloud` never depends on
    /// the working directory.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::Io`] when the path cannot be read, or any
    /// parse/validation error from the file's contents.
    pub fn load(name_or_path: &str) -> Result<Scenario, ScenarioError> {
        if let Some(preset) = Scenario::preset(name_or_path) {
            return Ok(preset);
        }
        let text = std::fs::read_to_string(name_or_path).map_err(|e| {
            ScenarioError::new(
                0,
                "",
                ErrorKind::Io(format!(
                    "{name_or_path}: {e} (or pass a preset: {})",
                    Scenario::PRESET_NAMES
                )),
            )
        })?;
        Scenario::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_parse_and_validate() {
        for name in Scenario::preset_names() {
            let s = Scenario::preset(name).expect("known preset");
            assert_eq!(s.name, name, "preset name matches [scenario] name");
            // Every preset resolves into runnable specs.
            let spec = s.scaled_spec(0.01);
            assert!(spec.total_jobs >= 50);
            let config = s.sim_config(0.01, s.seed);
            assert!(config.cluster.total_gpus() > 0);
        }
    }

    #[test]
    fn supercloud_preset_is_the_flag_default() {
        let s = Scenario::preset("supercloud").expect("preset");
        assert_eq!(s.workload_spec(), sc_workload::WorkloadSpec::supercloud());
        assert_eq!(s.cluster_spec(), sc_cluster::ClusterSpec::supercloud());
        assert_eq!(s.seed, 42);
        assert_eq!(s.scale, 1.0);
        assert!(s.failure_model(s.seed).is_none());
    }

    #[test]
    fn presets_hash_distinctly() {
        let hashes: Vec<u64> =
            Scenario::preset_names().map(|n| Scenario::preset(n).expect("preset").hash()).collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn unknown_preset_falls_back_to_io_error() {
        let err = Scenario::load("no-such-preset").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::Io(_)), "{err}");
        assert!(err.to_string().contains(Scenario::PRESET_NAMES), "{err}");
    }

    #[test]
    fn round_trip_embeds() {
        for name in Scenario::preset_names() {
            let s = Scenario::preset(name).expect("preset");
            let round = Scenario::parse(&s.to_toml()).expect("canonical form parses");
            assert_eq!(s, round, "{name}");
        }
    }
}
