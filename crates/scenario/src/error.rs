//! Typed scenario errors: every failure carries the 1-based source
//! line and the `[section] key` context it occurred at, so a bad
//! scenario file is a one-glance fix instead of a stack trace.

/// What went wrong while parsing or validating a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The TOML subset grammar was violated (bad section header,
    /// missing `=`, unterminated string, malformed number, …).
    Syntax(String),
    /// A section appeared twice.
    DuplicateSection,
    /// A key appeared twice within one section.
    DuplicateKey,
    /// The section is not part of the scenario schema.
    UnknownSection,
    /// The key is not part of its section's schema.
    UnknownKey,
    /// The value has the wrong type for its key.
    Type {
        /// What the schema expects (`string`, `number`, `integer`, …).
        expected: &'static str,
        /// What the file actually contains.
        found: String,
    },
    /// The value parsed but fails a range or consistency check.
    Range(String),
    /// The value names an unknown variant of an enumerated field; the
    /// message lists the accepted names.
    UnknownName(String),
    /// A required section or key is absent.
    Missing(String),
    /// The scenario file could not be read.
    Io(String),
}

/// A parse or validation failure, located in the source text.
///
/// `line` is 1-based; 0 means the error concerns the document as a
/// whole (e.g. a missing required section). `context` is the
/// `[section] key` path when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line, or 0 for whole-document errors.
    pub line: usize,
    /// `[section] key`, `[section]`, or empty when not applicable.
    pub context: String,
    /// The failure itself.
    pub kind: ErrorKind,
}

impl ScenarioError {
    /// Builds an error at `line` with the given context path.
    pub fn new(line: usize, context: impl Into<String>, kind: ErrorKind) -> Self {
        ScenarioError { line, context: context.into(), kind }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        if !self.context.is_empty() {
            write!(f, "{}: ", self.context)?;
        }
        match &self.kind {
            ErrorKind::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ErrorKind::DuplicateSection => write!(f, "section appears twice"),
            ErrorKind::DuplicateKey => write!(f, "key appears twice"),
            ErrorKind::UnknownSection => write!(f, "unknown section"),
            ErrorKind::UnknownKey => write!(f, "unknown key"),
            ErrorKind::Type { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ErrorKind::Range(msg) => write!(f, "out of range: {msg}"),
            ErrorKind::UnknownName(msg) => write!(f, "unknown value: {msg}"),
            ErrorKind::Missing(what) => write!(f, "missing {what}"),
            ErrorKind::Io(msg) => write!(f, "cannot read scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_context() {
        let e = ScenarioError::new(
            12,
            "[arrivals] process",
            ErrorKind::UnknownName("weekly (expected poisson|diurnal|spikes|up-and-down)".into()),
        );
        let text = e.to_string();
        assert!(text.contains("line 12"), "{text}");
        assert!(text.contains("[arrivals] process"), "{text}");
        assert!(text.contains("weekly"), "{text}");
    }

    #[test]
    fn document_level_errors_omit_line() {
        let e = ScenarioError::new(0, "", ErrorKind::Missing("section [scenario]".into()));
        assert_eq!(e.to_string(), "missing section [scenario]");
    }
}
