//! Streaming telemetry ingestion: one-pass consumers for the detailed
//! time-series subset and mergeable run-level summaries.
//!
//! The batch pipeline materialized every detailed job's full
//! [`GpuTimeSeries`](crate::sampler::GpuTimeSeries) — per-GPU sample
//! structs with all six metrics — only to reduce it to a handful of
//! phase statistics. This module is the consuming half of the streaming
//! replacement:
//!
//! - [`Util3Sink`] is the producer/consumer contract: producers (the
//!   workload crate's ground-truth processes) push the **job-level**
//!   `[sm, mem, mem_size]` utilization triple per 100 ms tick, with a
//!   bulk entry point for constant spans.
//! - [`DetailSink`] consumes the stream into an incremental
//!   run-length segmentation plus a run-length-encoded spill of the
//!   triples — `O(#runs)` memory instead of `O(#ticks x #gpus)` sample
//!   structs — and [`stream_detail`] reduces it to exactly the
//!   [`PhaseStats`] / [`ActiveVariability`] the batch path computed.
//!   The spill buffer is thread-local scratch, reused across jobs on
//!   the same worker, so a million-job run holds one buffer per worker
//!   rather than one series per job.
//! - [`TelemetryStreamSummary`] folds per-job aggregates into mergeable
//!   one-pass sketches ([`Welford`], [`LogQuantileSketch`],
//!   [`MergeHistogram`]) as jobs complete — the aggregate state the
//!   figure pipeline can render without ever seeing a raw series.
//!
//! # Determinism contract
//!
//! For identical tick streams, [`stream_detail`] is **bit-identical**
//! to segmenting and reducing the materialized series: the segmentation
//! shares `sc_stats`'s smoothing pass with the batch function, and the
//! variability folds replay the exact index-order float accumulation of
//! the batch formulas (sum from 0.0 in sample order, two-pass variance,
//! the `mean == 0 → CoV 0` convention). Tests in this module and in the
//! workload crate assert equality, not approximation.

use crate::phases::{ActiveVariability, PhaseStats, ACTIVE_SM_THRESHOLD, MIN_PHASE_SAMPLES};
use sc_stats::segment::{IntervalKind, SegmentBuilder, Segmentation};
use sc_stats::{LogQuantileSketch, MergeHistogram, StatsError, Welford};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Consumer of a job-level utilization stream: one `[sm, mem,
/// mem_size]` triple per sampler tick, in tick order.
///
/// The bulk [`push_run`](Util3Sink::push_run) entry point lets
/// producers forward whole constant spans (idle phases, flat active
/// phases) in one call; the default implementation degrades to
/// repeated [`push`](Util3Sink::push) calls, and implementations must
/// preserve that equivalence.
pub trait Util3Sink {
    /// Consumes the triple for the next tick.
    fn push(&mut self, v: [f64; 3]);

    /// Consumes `count` consecutive ticks that all carry `v`.
    fn push_run(&mut self, v: [f64; 3], count: usize) {
        for _ in 0..count {
            self.push(v);
        }
    }
}

/// Run-length-encoded spill of one job's tick stream: one `[sm, mem,
/// mem_size]` value per entry, with a sparse side list of bulk counts.
///
/// Per-tick wave samples (the overwhelming majority of entries) cost
/// 24 bytes each; constant spans — a handful per job — cost one entry
/// plus one `(index, count)` pair. Keeping the counts out of line
/// shrinks the hot push and the reduction walks by a quarter of their
/// memory traffic versus an inline-count layout.
#[derive(Debug, Default)]
struct Spill {
    /// One entry per run, in tick order.
    values: Vec<[f64; 3]>,
    /// `(index into values, tick count)` for entries covering more than
    /// one tick, in ascending index order.
    bulks: Vec<(u32, u32)>,
}

/// Streaming consumer for one detailed-subset job: an incremental
/// SM-series segmentation plus a run-length-encoded spill of the
/// triples, from which [`stream_detail`] reproduces the batch phase
/// statistics exactly.
#[derive(Debug)]
pub struct DetailSink<'a> {
    seg: SegmentBuilder,
    spill: &'a mut Spill,
}

impl<'a> DetailSink<'a> {
    /// A sink spilling into `spill` (cleared first), segmenting with
    /// the paper's [`ACTIVE_SM_THRESHOLD`] / [`MIN_PHASE_SAMPLES`].
    fn new(spill: &'a mut Spill) -> Self {
        spill.values.clear();
        spill.bulks.clear();
        DetailSink { seg: SegmentBuilder::new(ACTIVE_SM_THRESHOLD, MIN_PHASE_SAMPLES), spill }
    }

    /// Ticks consumed so far.
    pub fn ticks(&self) -> usize {
        self.seg.samples()
    }
}

impl Util3Sink for DetailSink<'_> {
    #[inline]
    fn push(&mut self, v: [f64; 3]) {
        self.seg.push(v[0]);
        self.spill.values.push(v);
    }

    fn push_run(&mut self, v: [f64; 3], count: usize) {
        if count == 0 {
            return;
        }
        if count == 1 {
            self.push(v);
            return;
        }
        self.seg.push_run(v[0], count);
        let mut count = count;
        while count > 0 {
            let take = count.min(u32::MAX as usize);
            let index =
                u32::try_from(self.spill.values.len()).expect("spill entries stay under 2^32");
            self.spill.values.push(v);
            if take > 1 {
                self.spill.bulks.push((index, take as u32));
            }
            count -= take;
        }
    }
}

thread_local! {
    /// Per-worker spill scratch, reused across jobs (the "bounded spill
    /// window": peak memory is one job's run list per worker, not one
    /// series per job).
    static SPILL_SCRATCH: RefCell<Spill> =
        const { RefCell::new(Spill { values: Vec::new(), bulks: Vec::new() }) };
}

/// Runs `produce` against a thread-local [`DetailSink`] and reduces the
/// consumed stream to the batch pipeline's per-job detail statistics.
///
/// Equivalent — bit for bit — to materializing the job-level series,
/// calling `phase_stats`, and calling `active_variability`, but in one
/// pass over the stream with `O(#runs)` memory.
///
/// # Errors
///
/// Exactly the batch path's errors: [`StatsError::EmptyInput`] if no
/// tick was pushed and [`StatsError::NonFinite`] if a pushed value was
/// NaN or infinite.
pub fn stream_detail<F>(produce: F) -> Result<(PhaseStats, Option<ActiveVariability>), StatsError>
where
    F: FnOnce(&mut DetailSink<'_>),
{
    SPILL_SCRATCH.with(|cell| {
        let mut spill = cell.borrow_mut();
        let mut sink = DetailSink::new(&mut spill);
        produce(&mut sink);
        let DetailSink { seg, spill } = sink;
        finish_detail(seg, spill)
    })
}

/// Reduces a consumed stream (segmentation builder + spill runs) to
/// phase statistics, replicating the batch formulas exactly.
fn finish_detail(
    seg: SegmentBuilder,
    spill: &Spill,
) -> Result<(PhaseStats, Option<ActiveVariability>), StatsError> {
    let seg = seg.finish()?;
    let phases = PhaseStats {
        active_fraction: seg.active_fraction(),
        active_interval_cov: seg.interval_cov(IntervalKind::Active),
        idle_interval_cov: seg.interval_cov(IntervalKind::Idle),
        active_intervals: seg.count_of(IntervalKind::Active),
        idle_intervals: seg.count_of(IntervalKind::Idle),
    };
    let active_samples: usize =
        seg.intervals().iter().filter(|iv| iv.kind == IntervalKind::Active).map(|iv| iv.len).sum();
    if active_samples == 0 {
        return Ok((phases, None));
    }
    let [sm_cov, mem_cov, mem_size_cov] = active_covs(spill, &seg, active_samples)?;
    Ok((phases, Some(ActiveVariability { sm_cov, mem_cov, mem_size_cov })))
}

/// CoV (%) of all three metrics over the active-phase samples,
/// replaying the batch accumulation order exactly: per metric, the
/// picked values are the active intervals' samples in index order; the
/// mean is a sequential sum from 0.0; the variance is a second
/// sequential pass of `(v - m) * (v - m)`; and a zero mean
/// short-circuits to 0 before the standard deviation is computed,
/// matching [`sc_stats::coefficient_of_variation`].
///
/// The three per-metric folds are independent accumulation chains, so
/// they share one walk per pass (two walks total instead of six)
/// without perturbing any chain's operation order — each stays
/// bit-identical to a standalone fold.
fn active_covs(
    spill: &Spill,
    seg: &Segmentation,
    active_samples: usize,
) -> Result<[f64; 3], StatsError> {
    const NONE: usize = usize::MAX;
    let mut sums = [0.0f64; 3];
    let mut bad = [NONE; 3];
    let mut pos = 0usize;
    for_each_active(spill, seg, |piece| match piece {
        Piece::Slice(vs) => {
            for v in vs {
                if !(v[0].is_finite() && v[1].is_finite() && v[2].is_finite()) {
                    for j in 0..3 {
                        if !v[j].is_finite() && bad[j] == NONE {
                            bad[j] = pos;
                        }
                    }
                }
                sums[0] += v[0];
                sums[1] += v[1];
                sums[2] += v[2];
                pos += 1;
            }
        }
        Piece::Run(v, count) => {
            if !(v[0].is_finite() && v[1].is_finite() && v[2].is_finite()) {
                for j in 0..3 {
                    if !v[j].is_finite() && bad[j] == NONE {
                        bad[j] = pos;
                    }
                }
            }
            for _ in 0..count {
                sums[0] += v[0];
                sums[1] += v[1];
                sums[2] += v[2];
            }
            pos += count;
        }
    });
    // The batch path computes the metrics one after another, so a
    // non-finite sm sample errors before mem is ever touched: report
    // the first bad metric in metric order.
    for &first_bad in &bad {
        if first_bad != NONE {
            return Err(StatsError::NonFinite { index: first_bad });
        }
    }
    let n = active_samples as f64;
    let means = [sums[0] / n, sums[1] / n, sums[2] / n];
    let mut covs = [0.0f64; 3];
    if means.iter().any(|&m| m != 0.0) {
        let mut sq = [0.0f64; 3];
        for_each_active(spill, seg, |piece| match piece {
            Piece::Slice(vs) => {
                for v in vs {
                    let d = [v[0] - means[0], v[1] - means[1], v[2] - means[2]];
                    sq[0] += d[0] * d[0];
                    sq[1] += d[1] * d[1];
                    sq[2] += d[2] * d[2];
                }
            }
            Piece::Run(v, count) => {
                let d = [v[0] - means[0], v[1] - means[1], v[2] - means[2]];
                let dd = [d[0] * d[0], d[1] * d[1], d[2] * d[2]];
                for _ in 0..count {
                    sq[0] += dd[0];
                    sq[1] += dd[1];
                    sq[2] += dd[2];
                }
            }
        });
        for j in 0..3 {
            // A zero mean short-circuited before the deviation pass in
            // the batch path; its sq fold is discarded unseen here.
            if means[j] != 0.0 {
                covs[j] = (sq[j] / n).sqrt() / means[j].abs() * 100.0;
            }
        }
    }
    Ok(covs)
}

/// A maximal piece of the active-sample walk: either a slice of
/// consecutive unit entries (one tick each, in index order) or one bulk
/// run (`count` ticks of the same value).
enum Piece<'a> {
    /// Consecutive unit-count entries.
    Slice(&'a [[f64; 3]]),
    /// One bulk run: the value and its tick count (clipped to the
    /// enclosing interval).
    Run([f64; 3], usize),
}

/// Visits the spilled runs restricted to active intervals, in sample
/// index order, as [`Piece`]s. The segmentation's intervals partition
/// the sample range, so a merged walk over entries, bulk counts and
/// intervals covers everything; runs of unit entries are handed out as
/// whole slices so the reduction's hot loop carries no per-entry
/// bookkeeping.
fn for_each_active(spill: &Spill, seg: &Segmentation, mut f: impl FnMut(Piece<'_>)) {
    let mut bulks = spill.bulks.iter().peekable();
    let mut entry = 0usize; // index of the next spill entry
    let mut carry = 0usize; // ticks left in a started bulk entry
    let mut pos = 0usize; // sample position of the walk
    for iv in seg.intervals() {
        let iv_end = iv.start + iv.len;
        let active = iv.kind == IntervalKind::Active;
        while pos < iv_end {
            if carry > 0 {
                let take = carry.min(iv_end - pos);
                if active {
                    f(Piece::Run(spill.values[entry], take));
                }
                pos += take;
                carry -= take;
                if carry == 0 {
                    entry += 1;
                }
                continue;
            }
            match bulks.peek() {
                Some(&&(bi, count)) if bi as usize == entry => {
                    carry = count as usize;
                    bulks.next();
                }
                next => {
                    // Unit entries until the interval ends or the next
                    // bulk entry starts.
                    let until = match next {
                        Some(&&(bi, _)) => bi as usize,
                        None => spill.values.len(),
                    };
                    let m = (iv_end - pos).min(until - entry);
                    if m == 0 {
                        // The segmentation partitions the pushed
                        // samples; entries only run out at the end.
                        debug_assert_eq!(entry, spill.values.len());
                        return;
                    }
                    if active {
                        f(Piece::Slice(&spill.values[entry..entry + m]));
                    }
                    entry += m;
                    pos += m;
                }
            }
        }
    }
}

/// Number of bins in the per-job peak-SM histogram.
const SM_PEAK_BINS: usize = 20;

/// Relative-error parameter of the run-time quantile sketch: quantile
/// estimates are within ±2% of the true per-job run time.
const RUN_TIME_SKETCH_ALPHA: f64 = 0.02;

/// Mergeable one-pass summary of the telemetry stage, folded as jobs
/// complete.
///
/// Everything in here is aggregate state — Welford accumulators, a
/// log-bucket quantile sketch, a fixed-bin histogram — so the memory
/// cost is constant in the number of jobs and two summaries built from
/// disjoint job sets merge exactly (order-independently) into the
/// summary of the union. Folded in completion order by the simulation,
/// it is byte-identical across thread budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryStreamSummary {
    /// GPU jobs folded in.
    pub gpu_jobs: u64,
    /// Sketch of per-job run times (seconds).
    pub run_time: LogQuantileSketch,
    /// Per-job mean SM utilization (%), averaged across the job's GPUs.
    pub sm_mean: Welford,
    /// Per-job mean board power (W), averaged across the job's GPUs.
    pub power_mean: Welford,
    /// Histogram of per-job peak SM utilization (%), over `[0, 100]`.
    pub sm_peak: MergeHistogram,
    /// Detailed-subset jobs folded in.
    pub detailed_jobs: u64,
    /// Active-time fraction over the detailed subset.
    pub active_fraction: Welford,
}

impl Default for TelemetryStreamSummary {
    fn default() -> Self {
        TelemetryStreamSummary::new()
    }
}

impl TelemetryStreamSummary {
    /// An empty summary.
    pub fn new() -> Self {
        TelemetryStreamSummary {
            gpu_jobs: 0,
            run_time: LogQuantileSketch::new(RUN_TIME_SKETCH_ALPHA)
                .expect("compile-time alpha is valid"),
            sm_mean: Welford::new(),
            power_mean: Welford::new(),
            sm_peak: MergeHistogram::new(0.0, 100.0, SM_PEAK_BINS)
                .expect("compile-time bounds are valid"),
            detailed_jobs: 0,
            active_fraction: Welford::new(),
        }
    }

    /// Folds one GPU job's end-of-run aggregates. `sm_means`,
    /// `power_means` and `sm_maxes` are per-GPU values; the job-level
    /// value is their mean (peak for `sm_maxes`).
    pub fn record_gpu_job(&mut self, run_time_secs: f64, per_gpu: &[crate::GpuAggregates]) {
        self.gpu_jobs += 1;
        self.run_time.push(run_time_secs);
        if !per_gpu.is_empty() {
            let g = per_gpu.len() as f64;
            self.sm_mean.push(per_gpu.iter().map(|a| a.sm_util.mean).sum::<f64>() / g);
            self.power_mean.push(per_gpu.iter().map(|a| a.power_w.mean).sum::<f64>() / g);
            self.sm_peak.push(per_gpu.iter().map(|a| a.sm_util.max).fold(0.0, f64::max));
        }
    }

    /// Folds one detailed-subset job's phase statistics.
    pub fn record_detail(&mut self, phases: &PhaseStats) {
        self.detailed_jobs += 1;
        self.active_fraction.push(phases.active_fraction);
    }

    /// Merges another summary built from a disjoint job set. Exact and
    /// order-independent for the sketch and histogram; the Welford
    /// merge uses the standard pairwise combination.
    ///
    /// # Errors
    ///
    /// Returns an error if the sketch or histogram parameters differ.
    pub fn merge(&mut self, other: &TelemetryStreamSummary) -> Result<(), StatsError> {
        self.run_time.merge(&other.run_time)?;
        self.sm_peak.merge(&other.sm_peak)?;
        self.gpu_jobs += other.gpu_jobs;
        self.sm_mean.merge(&other.sm_mean);
        self.power_mean.merge(&other.power_mean);
        self.detailed_jobs += other.detailed_jobs;
        self.active_fraction.merge(&other.active_fraction);
        Ok(())
    }

    /// Renders the summary as stable plain text (one `key value` pair
    /// per line) for reports and determinism tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.4}"));
        out.push_str(&format!("gpu_jobs {}\n", self.gpu_jobs));
        out.push_str(&format!(
            "run_time_p50_s {}\n",
            self.run_time.quantile(0.5).map_or_else(|| "-".to_string(), |v| format!("{v:.1}"))
        ));
        out.push_str(&format!(
            "run_time_p95_s {}\n",
            self.run_time.quantile(0.95).map_or_else(|| "-".to_string(), |v| format!("{v:.1}"))
        ));
        out.push_str(&format!("sm_mean_pct {}\n", fmt(self.sm_mean.mean())));
        out.push_str(&format!("sm_mean_cov_pct {}\n", fmt(self.sm_mean.cov_percent())));
        out.push_str(&format!("power_mean_w {}\n", fmt(self.power_mean.mean())));
        let saturated: u64 = self
            .sm_peak
            .counts()
            .iter()
            .enumerate()
            .filter(|(i, _)| self.sm_peak.bin_lo(*i) >= 95.0)
            .map(|(_, c)| c)
            .sum();
        out.push_str(&format!("sm_peak_ge95_jobs {}\n", saturated + self.sm_peak.above()));
        out.push_str(&format!("detailed_jobs {}\n", self.detailed_jobs));
        out.push_str(&format!("active_fraction_mean {}\n", fmt(self.active_fraction.mean())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::GpuAggregates;
    use crate::metrics::GpuMetricSample;
    use crate::phases::{active_variability, phase_stats};
    use crate::sampler::GpuTimeSeries;

    fn series_from_triples(triples: &[[f64; 3]]) -> GpuTimeSeries {
        GpuTimeSeries {
            period_secs: 0.1,
            per_gpu: vec![triples
                .iter()
                .map(|&[sm, mem, msize]| GpuMetricSample {
                    sm_util: sm,
                    mem_util: mem,
                    mem_size_util: msize,
                    ..Default::default()
                })
                .collect()],
        }
    }

    fn batch_reference(triples: &[[f64; 3]]) -> (PhaseStats, Option<ActiveVariability>) {
        let series = series_from_triples(triples);
        (phase_stats(&series).unwrap(), active_variability(&series).unwrap())
    }

    #[test]
    fn stream_matches_batch_on_mixed_series() {
        let mut triples = Vec::new();
        for k in 0..40 {
            triples.push([0.0, 0.0, 5.0 + k as f64 * 0.01]);
        }
        for k in 0..60 {
            let w = (k as f64 * 0.3).sin();
            triples.push([60.0 + 10.0 * w, 30.0 + 5.0 * w, 40.0]);
        }
        for _ in 0..25 {
            triples.push([0.0, 0.0, 0.0]);
        }
        let (bp, bv) = batch_reference(&triples);
        let (sp, sv) = stream_detail(|sink| {
            for &t in &triples {
                sink.push(t);
            }
        })
        .unwrap();
        assert_eq!(sp, bp);
        assert_eq!(sv, bv);
    }

    #[test]
    fn bulk_runs_match_per_tick_pushes() {
        let pieces: &[([f64; 3], usize)] =
            &[([0.0, 0.0, 0.0], 30), ([70.0, 20.0, 35.0], 45), ([0.0, 1.0, 2.0], 12)];
        let bulk = stream_detail(|sink| {
            for &(v, n) in pieces {
                sink.push_run(v, n);
            }
        })
        .unwrap();
        let single = stream_detail(|sink| {
            for &(v, n) in pieces {
                for _ in 0..n {
                    sink.push(v);
                }
            }
        })
        .unwrap();
        assert_eq!(bulk, single);
    }

    #[test]
    fn all_idle_stream_has_no_variability() {
        let (phases, variability) =
            stream_detail(|sink| sink.push_run([0.0, 0.0, 0.0], 50)).unwrap();
        assert_eq!(phases.active_fraction, 0.0);
        assert_eq!(variability, None);
        let (bp, bv) = batch_reference(&vec![[0.0, 0.0, 0.0]; 50]);
        assert_eq!(phases, bp);
        assert_eq!(variability, bv);
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert_eq!(stream_detail(|_| {}), Err(StatsError::EmptyInput));
    }

    #[test]
    fn non_finite_tick_is_an_error() {
        let err = stream_detail(|sink| {
            sink.push([1.0, 0.0, 0.0]);
            sink.push([f64::NAN, 0.0, 0.0]);
        });
        assert_eq!(err, Err(StatsError::NonFinite { index: 1 }));
    }

    #[test]
    fn scratch_is_reused_across_jobs() {
        // Two consecutive jobs on the same thread must not see each
        // other's ticks.
        let first = stream_detail(|sink| sink.push_run([80.0, 40.0, 20.0], 40)).unwrap();
        let second = stream_detail(|sink| sink.push_run([0.0, 0.0, 0.0], 40)).unwrap();
        assert_eq!(first.0.active_fraction, 1.0);
        assert_eq!(second.0.active_fraction, 0.0);
    }

    #[test]
    fn summary_merge_matches_single_fold() {
        let mk_agg = |sm_mean: f64, sm_max: f64, power: f64| {
            let mut a = GpuAggregates::new();
            a.sm_util.mean = sm_mean;
            a.sm_util.max = sm_max;
            a.power_w.mean = power;
            a
        };
        let jobs: Vec<(f64, Vec<GpuAggregates>)> = (0..32)
            .map(|i| {
                let rt = 40.0 + i as f64 * 13.7;
                let aggs =
                    vec![mk_agg(10.0 + i as f64, 50.0 + i as f64, 120.0), mk_agg(8.0, 97.0, 90.0)];
                (rt, aggs)
            })
            .collect();
        let mut whole = TelemetryStreamSummary::new();
        for (rt, aggs) in &jobs {
            whole.record_gpu_job(*rt, aggs);
        }
        let mut left = TelemetryStreamSummary::new();
        let mut right = TelemetryStreamSummary::new();
        for (i, (rt, aggs)) in jobs.iter().enumerate() {
            if i % 2 == 0 { &mut left } else { &mut right }.record_gpu_job(*rt, aggs);
        }
        left.merge(&right).unwrap();
        assert_eq!(whole.gpu_jobs, left.gpu_jobs);
        assert_eq!(whole.run_time, left.run_time, "sketch merges are exact");
        assert_eq!(whole.sm_peak, left.sm_peak, "histogram merges are exact");
        assert_eq!(whole.sm_mean.count(), left.sm_mean.count());
        let (a, b) = (whole.sm_mean.mean().unwrap(), left.sm_mean.mean().unwrap());
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn summary_render_is_stable() {
        let mut s = TelemetryStreamSummary::new();
        let mut a = GpuAggregates::new();
        a.sm_util.mean = 42.0;
        a.sm_util.max = 99.9;
        a.power_w.mean = 200.0;
        s.record_gpu_job(120.0, &[a]);
        s.record_detail(&PhaseStats {
            active_fraction: 0.75,
            active_interval_cov: None,
            idle_interval_cov: None,
            active_intervals: 1,
            idle_intervals: 1,
        });
        let text = s.render();
        assert!(text.contains("gpu_jobs 1\n"), "{text}");
        assert!(text.contains("sm_peak_ge95_jobs 1\n"), "{text}");
        assert!(text.contains("active_fraction_mean 0.7500\n"), "{text}");
        assert_eq!(text, s.render());
    }
}
