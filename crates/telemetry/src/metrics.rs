//! Metric sample schema: the `nvidia-smi` and Slurm-plugin fields the
//! paper's dataset retains.

use serde::{Deserialize, Serialize};

/// One 100 ms GPU sample, mirroring the `nvidia-smi` fields analyzed in
/// the paper (Secs. II–III).
///
/// Utilization fields are percentages in `[0, 100]`; PCIe bandwidths are
/// percentages of the V100's 16-lane PCIe 3.0 peak (the paper plots
/// "PCIe Tx and Rx bandwidth utilization"); power is in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpuMetricSample {
    /// Streaming-multiprocessor utilization (%): "usage percentage of the
    /// GPU streaming multiprocessors".
    pub sm_util: f64,
    /// Memory-bandwidth utilization (%): "percentage of the GPU memory
    /// bandwidth used (referred to simply as memory utilization in
    /// keeping with the Nvidia terminology)".
    pub mem_util: f64,
    /// Memory-size utilization (%): "percentage of the GPU memory amount
    /// used".
    pub mem_size_util: f64,
    /// PCIe transmit bandwidth utilization (%).
    pub pcie_tx: f64,
    /// PCIe receive bandwidth utilization (%).
    pub pcie_rx: f64,
    /// Board power draw in watts (V100 TDP: 300 W).
    pub power_w: f64,
}

impl GpuMetricSample {
    /// An all-zero sample: what `nvidia-smi` reports for an idle GPU
    /// apart from its idle power floor, which the caller sets.
    pub fn idle(idle_power_w: f64) -> Self {
        GpuMetricSample { power_w: idle_power_w, ..Default::default() }
    }

    /// Reads the field selected by `resource`.
    pub fn resource(&self, resource: GpuResource) -> f64 {
        match resource {
            GpuResource::Sm => self.sm_util,
            GpuResource::Memory => self.mem_util,
            GpuResource::MemorySize => self.mem_size_util,
            GpuResource::PcieTx => self.pcie_tx,
            GpuResource::PcieRx => self.pcie_rx,
            GpuResource::Power => self.power_w,
        }
    }

    /// Whether every utilization field is within `[0, 100]` and power is
    /// non-negative — the validity invariant property tests rely on.
    pub fn is_valid(&self) -> bool {
        let pct = [self.sm_util, self.mem_util, self.mem_size_util, self.pcie_tx, self.pcie_rx];
        pct.iter().all(|v| (0.0..=100.0).contains(v)) && self.power_w >= 0.0
    }
}

/// One 10-second CPU-side sample from the Slurm monitoring plugins.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpuMetricSample {
    /// CPU utilization across the job's allocated cores (%).
    pub cpu_util: f64,
    /// Host memory in use (GiB).
    pub mem_used_gib: f64,
    /// File I/O throughput (MiB/s).
    pub io_mib_s: f64,
}

/// The GPU resources the paper studies, used to index per-resource
/// analyses (Figs. 4, 7, 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuResource {
    /// Streaming multiprocessors.
    Sm,
    /// Memory bandwidth.
    Memory,
    /// Memory capacity.
    MemorySize,
    /// PCIe transmit bandwidth.
    PcieTx,
    /// PCIe receive bandwidth.
    PcieRx,
    /// Board power.
    Power,
}

impl GpuResource {
    /// The utilization-percentage resources of Fig. 8's bottleneck study
    /// (power is excluded there; it is studied separately in Fig. 9).
    pub const UTILIZATION: [GpuResource; 5] = [
        GpuResource::Sm,
        GpuResource::Memory,
        GpuResource::MemorySize,
        GpuResource::PcieTx,
        GpuResource::PcieRx,
    ];

    /// Short label used in figure tables.
    pub fn label(&self) -> &'static str {
        match self {
            GpuResource::Sm => "SM",
            GpuResource::Memory => "Memory",
            GpuResource::MemorySize => "MemSize",
            GpuResource::PcieTx => "PCIeTx",
            GpuResource::PcieRx => "PCIeRx",
            GpuResource::Power => "Power",
        }
    }
}

impl std::fmt::Display for GpuResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_sample_is_valid_and_zero_utilization() {
        let s = GpuMetricSample::idle(25.0);
        assert!(s.is_valid());
        assert_eq!(s.sm_util, 0.0);
        assert_eq!(s.power_w, 25.0);
    }

    #[test]
    fn resource_accessor_matches_fields() {
        let s = GpuMetricSample {
            sm_util: 1.0,
            mem_util: 2.0,
            mem_size_util: 3.0,
            pcie_tx: 4.0,
            pcie_rx: 5.0,
            power_w: 6.0,
        };
        assert_eq!(s.resource(GpuResource::Sm), 1.0);
        assert_eq!(s.resource(GpuResource::Memory), 2.0);
        assert_eq!(s.resource(GpuResource::MemorySize), 3.0);
        assert_eq!(s.resource(GpuResource::PcieTx), 4.0);
        assert_eq!(s.resource(GpuResource::PcieRx), 5.0);
        assert_eq!(s.resource(GpuResource::Power), 6.0);
    }

    #[test]
    fn validity_rejects_out_of_range() {
        let mut s = GpuMetricSample { sm_util: 101.0, ..Default::default() };
        assert!(!s.is_valid());
        s.sm_util = 50.0;
        s.power_w = -1.0;
        assert!(!s.is_valid());
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = GpuResource::UTILIZATION.iter().map(|r| r.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        assert_eq!(GpuResource::Power.to_string(), "Power");
    }
}
