//! Seeded data-quality fault injection: the lossy collection pipeline.
//!
//! The paper's dataset came from a real pipeline — Slurm prolog/epilog
//! hooks plus 100 ms `nvidia-smi` sampling — and such pipelines lose
//! data in production: killed jobs never run their epilog, collectors
//! restart and drop sample windows, node clocks skew, accounting logs
//! duplicate and reorder records, and sensors emit NaN or spike
//! readings. This module injects exactly those faults into an already
//! synthesized (ground-truth-fixed) dataset, deterministically: every
//! coin flip is a salted hash of the job id and the corruptor seed, so
//! the corrupted stream is byte-identical across runs and thread
//! budgets.
//!
//! The injector only applies a fault when the fault is *detectable* by
//! the ingest stage's published detectors (e.g. a clock skew is only
//! applied when it pulls `start` before `submit`). That discipline is
//! what lets the repair ledger balance exactly:
//! `injected == detected == repaired + quarantined` per fault class.

use crate::aggregate::GpuAggregates;
use crate::dataset::Dataset;
use crate::metrics::GpuMetricSample;
use crate::record::{GpuJobRecord, JobId, SchedulerRecord};
use crate::sampler::GpuTimeSeries;
use serde::{Deserialize, Serialize};

/// How dirty the simulated collection pipeline is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataQualityProfile {
    /// Byte-perfect collection: the injector is a no-op.
    Off,
    /// The low fault rates a well-run production cluster still sees
    /// (the MIT Supercloud collection machinery).
    Supercloud,
    /// A degraded quarter: collector restarts, killed-job epilogs and
    /// clock drift at rates that visibly dent the raw stream.
    Lossy,
    /// An adversarial stress profile, including conflicting duplicate
    /// records; used to exercise the quarantine path, not to model a
    /// real site.
    Hostile,
}

impl DataQualityProfile {
    /// All profiles, mildest first.
    pub const ALL: [DataQualityProfile; 4] = [
        DataQualityProfile::Off,
        DataQualityProfile::Supercloud,
        DataQualityProfile::Lossy,
        DataQualityProfile::Hostile,
    ];

    /// CLI names accepted by [`DataQualityProfile::parse`].
    pub const NAMES: &'static str = "off|supercloud|lossy|hostile";

    /// Parses a CLI profile name.
    pub fn parse(name: &str) -> Option<DataQualityProfile> {
        match name {
            "off" => Some(DataQualityProfile::Off),
            "supercloud" => Some(DataQualityProfile::Supercloud),
            "lossy" => Some(DataQualityProfile::Lossy),
            "hostile" => Some(DataQualityProfile::Hostile),
            _ => None,
        }
    }

    /// Display label (also the CLI name).
    pub fn label(&self) -> &'static str {
        match self {
            DataQualityProfile::Off => "off",
            DataQualityProfile::Supercloud => "supercloud",
            DataQualityProfile::Lossy => "lossy",
            DataQualityProfile::Hostile => "hostile",
        }
    }

    /// The per-fault rates this profile injects at.
    pub fn config(&self) -> CorruptionConfig {
        match self {
            DataQualityProfile::Off => CorruptionConfig::default(),
            DataQualityProfile::Supercloud => CorruptionConfig {
                duplicate: 0.002,
                conflicting_duplicate: 0.0,
                missing_epilog: 0.005,
                truncated_epilog: 0.003,
                clock_skew: 0.02,
                max_skew_secs: 90.0,
                out_of_order: 0.01,
                shuffle_window: 4.0,
                nan_power: 0.003,
                power_spike: 0.001,
                dropped_window: 0.02,
                truncated_series: 0.01,
                max_truncated_frac: 0.10,
            },
            DataQualityProfile::Lossy => CorruptionConfig {
                duplicate: 0.01,
                conflicting_duplicate: 0.0,
                missing_epilog: 0.03,
                truncated_epilog: 0.02,
                clock_skew: 0.05,
                max_skew_secs: 600.0,
                out_of_order: 0.05,
                shuffle_window: 16.0,
                nan_power: 0.02,
                power_spike: 0.01,
                dropped_window: 0.10,
                truncated_series: 0.05,
                max_truncated_frac: 0.25,
            },
            DataQualityProfile::Hostile => CorruptionConfig {
                duplicate: 0.05,
                conflicting_duplicate: 0.5,
                missing_epilog: 0.10,
                truncated_epilog: 0.08,
                clock_skew: 0.20,
                max_skew_secs: 3600.0,
                out_of_order: 0.20,
                shuffle_window: 64.0,
                nan_power: 0.10,
                power_spike: 0.05,
                dropped_window: 0.25,
                truncated_series: 0.15,
                max_truncated_frac: 0.40,
            },
        }
    }
}

impl std::fmt::Display for DataQualityProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-fault injection rates. All rates are per-record (or per-series
/// segment for [`CorruptionConfig::dropped_window`]) probabilities in
/// `[0, 1]`; the all-zero default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// Probability a scheduler record is emitted twice.
    pub duplicate: f64,
    /// Fraction of duplicates whose copy carries a *conflicting*
    /// payload (a perturbed end time) instead of identical bytes.
    pub conflicting_duplicate: f64,
    /// Probability a GPU job's epilog (its telemetry record) is lost.
    pub missing_epilog: f64,
    /// Probability a record's accounting end time is lost (killed job:
    /// the epilog that stamps `end_time` never ran).
    pub truncated_epilog: f64,
    /// Probability a record's node clock is skewed backwards.
    pub clock_skew: f64,
    /// Largest clock skew, seconds.
    pub max_skew_secs: f64,
    /// Probability a record is displaced in the log.
    pub out_of_order: f64,
    /// Largest displacement, in record positions.
    pub shuffle_window: f64,
    /// Probability a power aggregate is replaced by NaN.
    pub nan_power: f64,
    /// Probability a power-max aggregate records a sensor spike far
    /// above the board limit.
    pub power_spike: f64,
    /// Per-segment probability a sample window is dropped from a
    /// detailed time series (collector restart).
    pub dropped_window: f64,
    /// Probability a detailed time series loses its tail.
    pub truncated_series: f64,
    /// Largest fraction of a series the tail loss removes.
    pub max_truncated_frac: f64,
}

/// One class of collection fault — the unit of the repair ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// A scheduler record emitted more than once.
    DuplicateRecord,
    /// A GPU job's telemetry record lost (epilog never ran).
    MissingEpilog,
    /// A record's accounting end time lost (killed job).
    TruncatedEpilog,
    /// A record's timestamps shifted by a per-node clock offset.
    ClockSkew,
    /// A record displaced from canonical log order.
    OutOfOrder,
    /// A power aggregate replaced by NaN.
    NanPower,
    /// A power-max aggregate far above the board limit.
    PowerSpike,
    /// A window of samples missing from a detailed time series.
    DroppedWindow,
    /// A detailed time series missing its tail.
    TruncatedSeries,
}

impl FaultClass {
    /// All classes, in ledger order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::DuplicateRecord,
        FaultClass::MissingEpilog,
        FaultClass::TruncatedEpilog,
        FaultClass::ClockSkew,
        FaultClass::OutOfOrder,
        FaultClass::NanPower,
        FaultClass::PowerSpike,
        FaultClass::DroppedWindow,
        FaultClass::TruncatedSeries,
    ];

    /// Number of classes (the ledger width).
    pub const COUNT: usize = Self::ALL.len();

    /// Index into [`FaultClass::ALL`] — the ledger slot.
    pub fn index(&self) -> usize {
        match self {
            FaultClass::DuplicateRecord => 0,
            FaultClass::MissingEpilog => 1,
            FaultClass::TruncatedEpilog => 2,
            FaultClass::ClockSkew => 3,
            FaultClass::OutOfOrder => 4,
            FaultClass::NanPower => 5,
            FaultClass::PowerSpike => 6,
            FaultClass::DroppedWindow => 7,
            FaultClass::TruncatedSeries => 8,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::DuplicateRecord => "duplicate-record",
            FaultClass::MissingEpilog => "missing-epilog",
            FaultClass::TruncatedEpilog => "truncated-epilog",
            FaultClass::ClockSkew => "clock-skew",
            FaultClass::OutOfOrder => "out-of-order",
            FaultClass::NanPower => "nan-power",
            FaultClass::PowerSpike => "power-spike",
            FaultClass::DroppedWindow => "dropped-window",
            FaultClass::TruncatedSeries => "truncated-series",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-class fault ledger: one counter slot per [`FaultClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CorruptionCounters {
    counts: [u64; FaultClass::COUNT],
}

impl CorruptionCounters {
    /// An all-zero ledger.
    pub fn new() -> Self {
        CorruptionCounters::default()
    }

    /// Adds one fault of `class`.
    pub fn record(&mut self, class: FaultClass) {
        self.counts[class.index()] += 1;
    }

    /// Reads one class's count.
    pub fn get(&self, class: FaultClass) -> u64 {
        self.counts[class.index()]
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &CorruptionCounters) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Iterates `(class, count)` in ledger order.
    pub fn iter(&self) -> impl Iterator<Item = (FaultClass, u64)> + '_ {
        FaultClass::ALL.iter().map(|c| (*c, self.get(*c)))
    }
}

/// The raw (possibly corrupted) collection output: the two streams the
/// real pipeline joins, plus the injection ledger. Canonical order is
/// by `(submit_time, job_id)` — the shape of a sorted accounting log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawCollection {
    /// Scheduler-side accounting records (may hold duplicates, skewed
    /// or missing timestamps, and out-of-order entries).
    pub sched: Vec<SchedulerRecord>,
    /// GPU-side epilog records (may hold duplicates or NaN/spiked
    /// power aggregates; missing-epilog jobs are absent).
    pub gpu: Vec<GpuJobRecord>,
    /// What the injector actually did, per fault class.
    pub injected: CorruptionCounters,
}

impl RawCollection {
    /// Decomposes a clean joined dataset back into the two collection
    /// streams, in canonical `(submit_time, job_id)` order, with an
    /// empty injection ledger — the byte-perfect archive.
    pub fn from_dataset(dataset: &Dataset) -> RawCollection {
        let mut sched: Vec<SchedulerRecord> =
            dataset.records().iter().map(|r| r.sched.clone()).collect();
        sort_canonical(&mut sched);
        let mut gpu: Vec<GpuJobRecord> =
            dataset.records().iter().filter_map(|r| r.gpu.clone()).collect();
        gpu.sort_by_key(|g| g.job_id);
        RawCollection { sched, gpu, injected: CorruptionCounters::new() }
    }
}

/// Sorts scheduler records into canonical `(submit_time, job_id)` order.
pub fn sort_canonical(records: &mut [SchedulerRecord]) {
    records.sort_by(|a, b| {
        a.submit_time.total_cmp(&b.submit_time).then_with(|| a.job_id.cmp(&b.job_id))
    });
}

/// Counts records that sit below the running submit-time maximum — the
/// shared out-of-order definition the injector and the ingest detector
/// both use, so their ledgers agree by construction.
pub fn out_of_order_count(records: &[SchedulerRecord]) -> u64 {
    out_of_order_ids(records).len() as u64
}

/// Job ids of records that sit below the running submit-time maximum.
/// An id can appear more than once (a duplicated record may be
/// displaced twice).
pub fn out_of_order_ids(records: &[SchedulerRecord]) -> Vec<JobId> {
    let mut max_submit = f64::NEG_INFINITY;
    let mut ids = Vec::new();
    for r in records {
        if r.submit_time < max_submit {
            ids.push(r.job_id);
        } else {
            max_submit = r.submit_time;
        }
    }
    ids
}

/// NaN-aware scheduler-record equality: two byte-identical copies of a
/// truncated record (both with a NaN end time) are still *exact*
/// duplicates, not conflicting ones.
pub fn records_equivalent(a: &SchedulerRecord, b: &SchedulerRecord) -> bool {
    let eq = |x: f64, y: f64| x.to_bits() == y.to_bits();
    a.job_id == b.job_id
        && a.user == b.user
        && a.interface == b.interface
        && a.gpus_requested == b.gpus_requested
        && a.cpus_requested == b.cpus_requested
        && eq(a.mem_requested_gib, b.mem_requested_gib)
        && eq(a.submit_time, b.submit_time)
        && eq(a.start_time, b.start_time)
        && eq(a.end_time, b.end_time)
        && eq(a.time_limit, b.time_limit)
        && a.exit == b.exit
}

// Distinct salts so each fault class draws an independent coin per job.
const SALT_DUP: u64 = 0x6475_706c;
const SALT_DUP_CONFLICT: u64 = 0x636f_6e66;
const SALT_DUP_SHIFT: u64 = 0x7368_6966;
const SALT_MISSING: u64 = 0x6d69_7373;
const SALT_TRUNC: u64 = 0x7472_756e;
const SALT_SKEW: u64 = 0x736b_6577;
const SALT_SKEW_AMT: u64 = 0x616d_6f75;
const SALT_OOO: u64 = 0x6f72_6465;
const SALT_OOO_AMT: u64 = 0x6a69_7474;
const SALT_SPIKE: u64 = 0x7370_696b;
const SALT_SPIKE_AMT: u64 = 0x6d61_676e;
const SALT_NAN: u64 = 0x6e61_6e70;
const SALT_WINDOW: u64 = 0x7769_6e64;
const SALT_WINDOW_POS: u64 = 0x7770_6f73;
const SALT_WINDOW_LEN: u64 = 0x776c_656e;
const SALT_TAIL: u64 = 0x7461_696c;
const SALT_TAIL_AMT: u64 = 0x7466_7263;

/// The same 64-bit finalizer the simulator uses for per-job draws:
/// deterministic, order-free, thread-count-free.
fn hash_unit(mut x: u64) -> f64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    x = (x ^ (x >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// The seeded fault injector.
#[derive(Debug, Clone, Copy)]
pub struct Corruptor {
    profile: DataQualityProfile,
    cfg: CorruptionConfig,
    seed: u64,
}

impl Corruptor {
    /// Builds an injector for `profile` with the given seed.
    pub fn new(profile: DataQualityProfile, seed: u64) -> Corruptor {
        Corruptor { profile, cfg: profile.config(), seed }
    }

    /// The injector's profile.
    pub fn profile(&self) -> DataQualityProfile {
        self.profile
    }

    /// The effective per-fault rates.
    pub fn config(&self) -> &CorruptionConfig {
        &self.cfg
    }

    fn unit(&self, job: JobId, salt: u64) -> f64 {
        hash_unit(job.0 ^ self.seed.rotate_left(17) ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Corrupts a clean dataset into the raw stream a lossy collection
    /// pipeline would have produced. Ground truth is already fixed:
    /// corruption happens strictly downstream of synthesis, exactly
    /// like a real collection fault.
    pub fn corrupt(&self, clean: &Dataset) -> RawCollection {
        let mut raw = RawCollection::from_dataset(clean);
        if self.profile == DataQualityProfile::Off {
            return raw;
        }
        let mut counters = CorruptionCounters::new();
        let mut drop_gpu: Vec<JobId> = Vec::new();

        // Pass 1: per-record timestamp and epilog faults, in canonical
        // order. The missing-epilog and truncated-epilog coins are
        // mutually exclusive so every injected fault stays repairable
        // or cleanly quarantinable by exactly one detector.
        let has_gpu_record: std::collections::HashSet<JobId> =
            raw.gpu.iter().map(|g| g.job_id).collect();
        for rec in &mut raw.sched {
            let id = rec.job_id;
            if self.unit(id, SALT_SKEW) < self.cfg.clock_skew {
                let offset = 30.0 + self.unit(id, SALT_SKEW_AMT) * (self.cfg.max_skew_secs - 30.0);
                // Only detectable (hence only injected) when the skew
                // pulls the start before the submit stamp.
                if offset > rec.queue_wait() + 1e-6 {
                    rec.start_time -= offset;
                    rec.end_time -= offset;
                    counters.record(FaultClass::ClockSkew);
                }
            }
            let truncated = self.unit(id, SALT_TRUNC) < self.cfg.truncated_epilog;
            if truncated {
                rec.end_time = f64::NAN;
                counters.record(FaultClass::TruncatedEpilog);
            }
            if !truncated
                && has_gpu_record.contains(&id)
                && self.unit(id, SALT_MISSING) < self.cfg.missing_epilog
            {
                drop_gpu.push(id);
                counters.record(FaultClass::MissingEpilog);
            }
        }
        raw.gpu.retain(|g| !drop_gpu.contains(&g.job_id));

        // Pass 2: power-sensor faults on the surviving epilog records.
        for g in &mut raw.gpu {
            let id = g.job_id;
            if self.unit(id, SALT_NAN) < self.cfg.nan_power {
                for agg in &mut g.per_gpu {
                    agg.power_w.min = f64::NAN;
                    agg.power_w.mean = f64::NAN;
                    agg.power_w.max = f64::NAN;
                }
                counters.record(FaultClass::NanPower);
            } else if self.unit(id, SALT_SPIKE) < self.cfg.power_spike {
                let magnitude = 2.0 + 6.0 * self.unit(id, SALT_SPIKE_AMT);
                for agg in &mut g.per_gpu {
                    agg.power_w.max = crate::gpu_power::V100_TDP_W * magnitude;
                }
                counters.record(FaultClass::PowerSpike);
            }
        }

        // Pass 3: duplication. Copies inherit the faults above; under
        // a hostile profile some copies carry a conflicting end time.
        let mut dup_sched = Vec::new();
        let mut dup_gpu = Vec::new();
        for rec in &raw.sched {
            let id = rec.job_id;
            if self.unit(id, SALT_DUP) < self.cfg.duplicate {
                let mut copy = rec.clone();
                if self.unit(id, SALT_DUP_CONFLICT) < self.cfg.conflicting_duplicate {
                    copy.end_time += 3600.0 * (1.0 + 10.0 * self.unit(id, SALT_DUP_SHIFT));
                }
                dup_sched.push(copy);
                if let Some(g) = raw.gpu.iter().find(|g| g.job_id == id) {
                    dup_gpu.push(g.clone());
                }
                counters.record(FaultClass::DuplicateRecord);
            }
        }
        raw.sched.extend(dup_sched);
        raw.gpu.extend(dup_gpu);
        sort_canonical(&mut raw.sched);
        raw.gpu.sort_by_key(|g| g.job_id);

        // Pass 4: log-order scramble. Each displaced record's sort key
        // is jittered by up to `shuffle_window` positions; the injected
        // count is then read off the final stream with the *same*
        // running-maximum definition the ingest detector uses.
        let mut keyed: Vec<(f64, SchedulerRecord)> = raw
            .sched
            .drain(..)
            .enumerate()
            .map(|(i, rec)| {
                let jitter = if self.unit(rec.job_id, SALT_OOO) < self.cfg.out_of_order {
                    (self.unit(rec.job_id, SALT_OOO_AMT) * 2.0 - 1.0) * self.cfg.shuffle_window
                } else {
                    0.0
                };
                (i as f64 + jitter, rec)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
        raw.sched = keyed.into_iter().map(|(_, rec)| rec).collect();
        for _ in 0..out_of_order_count(&raw.sched) {
            counters.record(FaultClass::OutOfOrder);
        }

        raw.injected = counters;
        raw
    }

    /// Corrupts one detailed GPU time series in place, returning the
    /// injection ledger (dropped windows and tail truncations).
    ///
    /// Missing samples are marked by [`missing_sample`] — the NaN rows
    /// a re-gridded collector log shows where the sampler was down.
    /// Tail loss is applied first, and interior windows are then placed
    /// strictly inside the surviving prefix with at least one valid
    /// sample between them, so every injected fault is recoverable as
    /// one distinct detection.
    pub fn corrupt_series(&self, series: &mut GpuTimeSeries, job: JobId) -> CorruptionCounters {
        let mut counters = CorruptionCounters::new();
        if self.profile == DataQualityProfile::Off {
            return counters;
        }
        for (gpu_idx, samples) in series.per_gpu.iter_mut().enumerate() {
            let gpu_salt = (gpu_idx as u64 + 1).wrapping_mul(0x5851_f42d_4c95_7f2d);
            let id = JobId(job.0 ^ gpu_salt);
            if samples.len() < 8 {
                continue;
            }
            if self.unit(id, SALT_TAIL) < self.cfg.truncated_series {
                let frac = self.unit(id, SALT_TAIL_AMT) * self.cfg.max_truncated_frac;
                let cut = ((samples.len() as f64 * frac) as usize).min(samples.len() - 4);
                if cut > 0 {
                    samples.truncate(samples.len() - cut);
                    counters.record(FaultClass::TruncatedSeries);
                }
            }
            // One candidate window per segment, strictly interior and
            // separated, so maximal NaN runs map 1:1 to injections.
            let seg = 16usize;
            let mut k = 0;
            while (k + 1) * seg + 1 < samples.len() {
                let seg_id = JobId(id.0 ^ ((k as u64 + 1) << 32));
                if self.unit(seg_id, SALT_WINDOW) < self.cfg.dropped_window {
                    let len =
                        1 + (self.unit(seg_id, SALT_WINDOW_LEN) * (seg as f64 - 2.0)) as usize;
                    let start = k * seg
                        + 1
                        + (self.unit(seg_id, SALT_WINDOW_POS) * (seg - len - 1) as f64) as usize;
                    let end = (start + len).min(samples.len() - 1);
                    if start < end {
                        for s in &mut samples[start..end] {
                            *s = missing_sample();
                        }
                        counters.record(FaultClass::DroppedWindow);
                    }
                }
                k += 2; // skip a segment so windows never touch
            }
        }
        counters
    }
}

/// The all-NaN marker a re-gridded collector log carries where the
/// sampler was down.
pub fn missing_sample() -> GpuMetricSample {
    GpuMetricSample {
        sm_util: f64::NAN,
        mem_util: f64::NAN,
        mem_size_util: f64::NAN,
        pcie_tx: f64::NAN,
        pcie_rx: f64::NAN,
        power_w: f64::NAN,
    }
}

/// Whether a sample is the [`missing_sample`] marker.
pub fn is_missing(sample: &GpuMetricSample) -> bool {
    sample.sm_util.is_nan()
}

/// Whether any power field of any per-GPU aggregate is non-finite.
pub fn has_nan_power(record: &GpuJobRecord) -> bool {
    record.per_gpu.iter().any(|a| {
        !a.power_w.min.is_finite() || !a.power_w.mean.is_finite() || !a.power_w.max.is_finite()
    })
}

/// Whether any per-GPU power maximum exceeds the board limit by more
/// than the detector's 5% guard band. Clean synthesis clamps power at
/// TDP, so this never fires on uncorrupted data.
pub fn has_power_spike(record: &GpuJobRecord) -> bool {
    record
        .per_gpu
        .iter()
        .any(|a| a.power_w.max.is_finite() && a.power_w.max > crate::gpu_power::V100_TDP_W * 1.05)
}

/// Repairs a power aggregate from the job's utilization aggregates via
/// the linear V100 power model — the imputation the ingest stage uses
/// for NaN readings and spike clamping.
pub fn impute_power(agg: &GpuAggregates) -> crate::aggregate::Aggregate {
    let model = |sm: f64, mem: f64, msz: f64| {
        (crate::gpu_power::V100_IDLE_W + 1.3 * sm + 0.7 * mem + 0.3 * msz)
            .clamp(crate::gpu_power::V100_IDLE_W, crate::gpu_power::V100_TDP_W)
    };
    crate::aggregate::Aggregate {
        min: model(agg.sm_util.min, agg.mem_util.min, agg.mem_size_util.min),
        mean: model(agg.sm_util.mean, agg.mem_util.mean, agg.mem_size_util.mean),
        max: model(agg.sm_util.max, agg.mem_util.max, agg.mem_size_util.max),
        count: agg.power_w.count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::GpuAggregates;
    use crate::record::{ExitStatus, SubmissionInterface, UserId};

    fn sched(id: u64, submit: f64, start: f64, end: f64, gpus: u32) -> SchedulerRecord {
        SchedulerRecord {
            job_id: JobId(id),
            user: UserId(id as u32 % 7),
            interface: SubmissionInterface::Other,
            gpus_requested: gpus,
            cpus_requested: 4,
            mem_requested_gib: 16.0,
            submit_time: submit,
            start_time: start,
            end_time: end,
            time_limit: 86_400.0,
            exit: ExitStatus::Completed,
        }
    }

    fn gpu_record(id: u64, secs: f64) -> GpuJobRecord {
        let mut agg = GpuAggregates::new();
        let count = (secs / 0.1).ceil() as u64;
        for field in [
            &mut agg.sm_util,
            &mut agg.mem_util,
            &mut agg.mem_size_util,
            &mut agg.pcie_tx,
            &mut agg.pcie_rx,
        ] {
            *field = crate::aggregate::Aggregate { min: 5.0, mean: 30.0, max: 80.0, count };
        }
        agg.power_w = crate::aggregate::Aggregate { min: 25.0, mean: 80.0, max: 200.0, count };
        GpuJobRecord { job_id: JobId(id), per_gpu: vec![agg] }
    }

    fn small_dataset(n: u64) -> Dataset {
        let mut s = Vec::new();
        let mut g = Vec::new();
        for i in 0..n {
            let submit = i as f64 * 10.0;
            let run = 120.0 + i as f64;
            let gpus = if i % 3 == 0 { 0 } else { 1 };
            s.push(sched(i, submit, submit + 5.0, submit + 5.0 + run, gpus));
            if gpus > 0 {
                g.push(gpu_record(i, run));
            }
        }
        Dataset::join(s, g)
    }

    #[test]
    fn profile_parse_round_trips() {
        for p in DataQualityProfile::ALL {
            assert_eq!(DataQualityProfile::parse(p.label()), Some(p));
        }
        assert_eq!(DataQualityProfile::parse("dirty"), None);
    }

    #[test]
    fn fault_class_indices_match_all_order() {
        for (i, c) in FaultClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn off_profile_injects_nothing() {
        let ds = small_dataset(50);
        let raw = Corruptor::new(DataQualityProfile::Off, 7).corrupt(&ds);
        let clean = RawCollection::from_dataset(&ds);
        assert_eq!(raw, clean);
        assert_eq!(raw.injected.total(), 0);
    }

    #[test]
    fn corruption_is_deterministic() {
        let ds = small_dataset(200);
        let a = Corruptor::new(DataQualityProfile::Lossy, 42).corrupt(&ds);
        let b = Corruptor::new(DataQualityProfile::Lossy, 42).corrupt(&ds);
        // Debug formatting is NaN-stable, unlike `PartialEq` on the
        // truncated (NaN end time) records.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = Corruptor::new(DataQualityProfile::Lossy, 43).corrupt(&ds);
        assert_ne!(a.injected, c.injected);
    }

    #[test]
    fn lossy_injects_every_record_class() {
        let ds = small_dataset(2000);
        let raw = Corruptor::new(DataQualityProfile::Lossy, 42).corrupt(&ds);
        for class in [
            FaultClass::DuplicateRecord,
            FaultClass::MissingEpilog,
            FaultClass::TruncatedEpilog,
            FaultClass::ClockSkew,
            FaultClass::OutOfOrder,
            FaultClass::NanPower,
            FaultClass::PowerSpike,
        ] {
            assert!(raw.injected.get(class) > 0, "no {class} faults at n=2000");
        }
    }

    #[test]
    fn skew_is_always_detectable() {
        let ds = small_dataset(500);
        let raw = Corruptor::new(DataQualityProfile::Lossy, 1).corrupt(&ds);
        let skewed = raw
            .sched
            .iter()
            .filter(|r| r.start_time.is_finite() && r.start_time < r.submit_time - 1e-9)
            .count() as u64;
        assert_eq!(skewed, raw.injected.get(FaultClass::ClockSkew));
    }

    #[test]
    fn out_of_order_ledger_matches_detector_definition() {
        let ds = small_dataset(500);
        let raw = Corruptor::new(DataQualityProfile::Lossy, 9).corrupt(&ds);
        assert_eq!(out_of_order_count(&raw.sched), raw.injected.get(FaultClass::OutOfOrder));
        assert!(raw.injected.get(FaultClass::OutOfOrder) > 0);
    }

    #[test]
    fn series_corruption_marks_recoverable_runs() {
        let samples: Vec<GpuMetricSample> = (0..2000)
            .map(|i| GpuMetricSample { sm_util: i as f64 % 100.0, ..Default::default() })
            .collect();
        let mut series = GpuTimeSeries { period_secs: 1.0, per_gpu: vec![samples] };
        let corr = Corruptor::new(DataQualityProfile::Hostile, 5);
        let injected = corr.corrupt_series(&mut series, JobId(11));
        assert!(injected.get(FaultClass::DroppedWindow) > 0, "no windows dropped");
        // Count maximal NaN runs: they must equal the injected windows.
        let mut runs = 0u64;
        let mut in_run = false;
        for s in &series.per_gpu[0] {
            if is_missing(s) {
                if !in_run {
                    runs += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        assert_eq!(runs, injected.get(FaultClass::DroppedWindow));
    }

    #[test]
    fn power_imputation_stays_in_model_range() {
        let g = gpu_record(1, 100.0);
        let imputed = impute_power(&g.per_gpu[0]);
        assert!(imputed.min >= crate::gpu_power::V100_IDLE_W);
        assert!(imputed.max <= crate::gpu_power::V100_TDP_W);
        assert!(imputed.min <= imputed.mean && imputed.mean <= imputed.max);
        assert_eq!(imputed.count, g.per_gpu[0].power_w.count);
    }

    #[test]
    fn records_equivalent_is_nan_aware() {
        let mut a = sched(1, 0.0, 1.0, 2.0, 1);
        let mut b = a.clone();
        assert!(records_equivalent(&a, &b));
        a.end_time = f64::NAN;
        b.end_time = f64::NAN;
        assert!(records_equivalent(&a, &b));
        b.end_time = 5.0;
        assert!(!records_equivalent(&a, &b));
    }
}
