//! Single source of truth for the GPU power constants of Table I /
//! Fig. 9.
//!
//! The V100 idle floor, board power limit, and DVFS sensitivity used to
//! be duplicated across the workload power model, the cluster hardware
//! spec, the opportunity studies, and the figure pipeline; every
//! consumer now imports them from here. The telemetry crate is the
//! lowest layer all of those depend on, which is what makes it the
//! natural home.

use crate::aggregate::GpuAggregates;

/// V100 idle power floor, watts (the board idles in the low tens of
/// watts; Fig. 9a's distributions bottom out here).
pub const V100_IDLE_W: f64 = 20.0;

/// V100 board power limit, watts (Table I / Fig. 9's TDP line).
pub const V100_TDP_W: f64 = 300.0;

/// DVFS sensitivity: fractional performance lost per fractional power
/// clipped. Volta performance scales roughly with the cube root of
/// power near the TDP, so clipping x% of power costs ≈ x/3 % of
/// performance.
pub const DVFS_PERF_PER_POWER: f64 = 1.0 / 3.0;

/// GPUs in the Supercloud fleet (Table I: 224 nodes × 2).
pub const SUPERCLOUD_GPUS: u32 = 448;

/// Facility power provisioned for the GPU fleet, watts: every GPU at
/// TDP. The over-provisioning studies redistribute this fixed budget.
pub const FACILITY_BUDGET_W: f64 = SUPERCLOUD_GPUS as f64 * V100_TDP_W;

/// Energy drawn by one job over its run, kWh, from its per-GPU power
/// aggregates: the mean board power of each GPU integrated over the
/// run. Exact under the linear power model (the mean is exact), and
/// cap-aware whenever the aggregates were clamped with
/// [`GpuAggregates::with_power_cap`].
pub fn gpu_energy_kwh(per_gpu: &[GpuAggregates], run_secs: f64) -> f64 {
    per_gpu.iter().map(|a| a.power_w.mean * run_secs.max(0.0)).sum::<f64>() / 3.6e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;

    fn agg(mean: f64, max: f64) -> GpuAggregates {
        GpuAggregates {
            power_w: Aggregate { min: V100_IDLE_W, mean, max, count: 10 },
            ..Default::default()
        }
    }

    #[test]
    fn facility_budget_matches_table1() {
        assert_eq!(FACILITY_BUDGET_W, 448.0 * 300.0);
    }

    #[test]
    fn energy_integrates_mean_power() {
        // One GPU at a constant 100 W for an hour is 0.1 kWh.
        let kwh = gpu_energy_kwh(&[agg(100.0, 100.0)], 3600.0);
        assert!((kwh - 0.1).abs() < 1e-12, "kwh {kwh}");
        // Two GPUs double it.
        let kwh2 = gpu_energy_kwh(&[agg(100.0, 100.0), agg(100.0, 100.0)], 3600.0);
        assert!((kwh2 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn capped_aggregates_reduce_energy() {
        let raw = agg(200.0, 280.0);
        let capped = raw.with_power_cap(150.0);
        assert!(
            gpu_energy_kwh(&[capped], 3600.0) < gpu_energy_kwh(&[raw], 3600.0),
            "cap must cut energy"
        );
    }
}
