//! Prolog/epilog monitoring lifecycle and node-local buffering.
//!
//! "The Slurm prolog is used to start the collection of CPU-based time
//! series data on every node assigned to a job … if the job requests one
//! or more GPUs, the prolog also launches the nvidia-smi utility … Both
//! time series are written to independent files on the local storage on
//! each compute node as a way to avoid overloading the cluster-wide
//! shared file system. … The epilog is also responsible for copying the
//! collected data back to the central file system" (Sec. II).

use crate::aggregate::GpuAggregates;
use crate::record::{GpuJobRecord, JobId};
use crate::sampler::{CpuSampler, GpuSampler, GpuTimeSeries};
use crate::source::MetricSource;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Monitoring configuration applied by the prolog.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonitorConfig {
    /// GPU sampler (production default: 100 ms).
    pub gpu_sampler: GpuSampler,
    /// CPU sampler (production default: 10 s).
    pub cpu_sampler: CpuSampler,
    /// Whether to retain the full time series for this job (true only for
    /// the detailed-logging subset — 2,149 jobs in the paper) rather than
    /// just the streaming aggregates.
    pub retain_series: bool,
}

/// What the epilog ships back to the central file system for one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedJob {
    /// Per-GPU aggregates (always present for GPU jobs).
    pub aggregates: Vec<GpuAggregates>,
    /// Full series, present only when the job was in the detailed subset.
    pub series: Option<GpuTimeSeries>,
}

impl CollectedJob {
    /// Converts to the GPU-side join record.
    pub fn into_record(self, job_id: JobId) -> GpuJobRecord {
        GpuJobRecord { job_id, per_gpu: self.aggregates }
    }
}

/// The per-job monitor: prolog starts it, epilog finalizes it.
///
/// # Example
///
/// ```
/// use sc_telemetry::{JobMonitor, MonitorConfig, JobId};
/// use sc_telemetry::source::ConstantSource;
/// use sc_telemetry::{CpuMetricSample, GpuMetricSample};
///
/// let src = ConstantSource {
///     gpus: 2,
///     gpu: GpuMetricSample { sm_util: 60.0, ..Default::default() },
///     cpu: CpuMetricSample::default(),
/// };
/// let monitor = JobMonitor::prolog(JobId(1), MonitorConfig::default());
/// let collected = monitor.epilog(&src, 10.0);
/// assert_eq!(collected.aggregates.len(), 2);
/// assert!(collected.series.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobMonitor {
    job_id: JobId,
    config: MonitorConfig,
}

impl JobMonitor {
    /// Starts monitoring a job (the prolog hook).
    pub fn prolog(job_id: JobId, config: MonitorConfig) -> Self {
        JobMonitor { job_id, config }
    }

    /// The monitored job.
    pub fn job_id(&self) -> JobId {
        self.job_id
    }

    /// Stops monitoring at job end and produces the collected data
    /// (the epilog hook). `duration_secs` is the job's run time.
    pub fn epilog<S: MetricSource + ?Sized>(&self, source: &S, duration_secs: f64) -> CollectedJob {
        if self.config.retain_series {
            let series = self.config.gpu_sampler.sample_series(source, duration_secs);
            CollectedJob { aggregates: series.aggregates(), series: Some(series) }
        } else {
            CollectedJob {
                aggregates: self.config.gpu_sampler.sample_aggregates(source, duration_secs),
                series: None,
            }
        }
    }
}

/// Node-local staging buffer: collected job data parked on the node's
/// SSD until the epilog copies it to the central store. Modeling this
/// keeps the data path honest (the paper calls out that naive logging
/// "can easily overload the metadata server and shared file system").
#[derive(Debug, Clone, Default)]
pub struct NodeLocalBuffer {
    staged: HashMap<JobId, CollectedJob>,
}

impl NodeLocalBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        NodeLocalBuffer::default()
    }

    /// Stages a finished job's data on local storage. Returns the
    /// previously staged data for the same job, if any (a re-run after a
    /// node failure overwrites the stale attempt).
    pub fn stage(&mut self, job_id: JobId, data: CollectedJob) -> Option<CollectedJob> {
        self.staged.insert(job_id, data)
    }

    /// Number of staged jobs.
    pub fn staged_count(&self) -> usize {
        self.staged.len()
    }

    /// Drains everything to the central file system, emptying the buffer.
    pub fn drain_to_central(&mut self) -> Vec<(JobId, CollectedJob)> {
        let mut out: Vec<(JobId, CollectedJob)> = self.staged.drain().collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CpuMetricSample, GpuMetricSample};
    use crate::source::ConstantSource;

    fn source() -> ConstantSource {
        ConstantSource {
            gpus: 1,
            gpu: GpuMetricSample { sm_util: 25.0, power_w: 90.0, ..Default::default() },
            cpu: CpuMetricSample::default(),
        }
    }

    #[test]
    fn detailed_subset_retains_series() {
        let cfg = MonitorConfig { retain_series: true, ..Default::default() };
        let m = JobMonitor::prolog(JobId(9), cfg);
        let c = m.epilog(&source(), 1.0);
        let series = c.series.expect("series retained");
        assert_eq!(series.len(), 10);
        assert_eq!(c.aggregates[0].sm_util.mean, 25.0);
        assert_eq!(m.job_id(), JobId(9));
    }

    #[test]
    fn default_path_streams_aggregates_only() {
        let m = JobMonitor::prolog(JobId(1), MonitorConfig::default());
        let c = m.epilog(&source(), 1.0);
        assert!(c.series.is_none());
        assert_eq!(c.aggregates[0].power_w.max, 90.0);
    }

    #[test]
    fn buffer_stages_and_drains_sorted() {
        let m = JobMonitor::prolog(JobId(2), MonitorConfig::default());
        let mut buf = NodeLocalBuffer::new();
        buf.stage(JobId(2), m.epilog(&source(), 0.5));
        buf.stage(JobId(1), m.epilog(&source(), 0.5));
        assert_eq!(buf.staged_count(), 2);
        let drained = buf.drain_to_central();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, JobId(1));
        assert_eq!(buf.staged_count(), 0);
    }

    #[test]
    fn restaging_replaces_previous_attempt() {
        let m = JobMonitor::prolog(JobId(3), MonitorConfig::default());
        let mut buf = NodeLocalBuffer::new();
        assert!(buf.stage(JobId(3), m.epilog(&source(), 0.5)).is_none());
        assert!(buf.stage(JobId(3), m.epilog(&source(), 1.0)).is_some());
        assert_eq!(buf.staged_count(), 1);
    }

    #[test]
    fn collected_into_record_carries_job_id() {
        let m = JobMonitor::prolog(JobId(4), MonitorConfig::default());
        let rec = m.epilog(&source(), 1.0).into_record(JobId(4));
        assert_eq!(rec.job_id, JobId(4));
        assert_eq!(rec.gpu_count(), 1);
    }
}
