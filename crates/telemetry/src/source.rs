//! The ground-truth process a running job exposes to the samplers.
//!
//! In production the "source" is the physical GPU; here it is a model
//! implemented by the workload crate. Separating the trait from its
//! implementations keeps the telemetry pipeline identical whether it
//! observes a synthetic job or (hypothetically) replayed hardware data.

use crate::metrics::{CpuMetricSample, GpuMetricSample};

/// A process that can be observed by [`crate::GpuSampler`] and
/// [`crate::CpuSampler`] at arbitrary job-relative times.
///
/// Implementations must be deterministic in `t`: sampling the same
/// instant twice yields the same value. This mirrors physical reality
/// (the GPU has one true state at each instant) and is what makes the
/// whole reproduction replayable from a seed.
pub trait MetricSource {
    /// Number of GPUs allocated to the job.
    fn gpu_count(&self) -> u32;

    /// Ground-truth GPU state of GPU `gpu_index` at job-relative time
    /// `t` seconds.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `gpu_index >= gpu_count()`.
    fn gpu_state(&self, gpu_index: u32, t: f64) -> GpuMetricSample;

    /// If the state of `gpu_index` is known to be constant over a span
    /// starting at `t`, returns `Some(end)` such that `gpu_state(g, t')
    /// == gpu_state(g, t)` for every `t <= t' < end`. Returns `None`
    /// when no such span is known (the conservative default).
    ///
    /// This is purely an optimization contract: the samplers use it to
    /// reuse one `gpu_state` call across every tick inside the span, so
    /// a wrong span changes results while a `None` merely costs speed.
    fn gpu_constant_until(&self, _gpu_index: u32, _t: f64) -> Option<f64> {
        None
    }

    /// Ground-truth CPU-side state at job-relative time `t` seconds.
    fn cpu_state(&self, t: f64) -> CpuMetricSample;
}

/// A trivial source with constant utilization on every GPU — useful in
/// tests and as the simplest possible workload model.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantSource {
    /// Number of GPUs.
    pub gpus: u32,
    /// The state every GPU reports at every instant.
    pub gpu: GpuMetricSample,
    /// The CPU state reported at every instant.
    pub cpu: CpuMetricSample,
}

impl MetricSource for ConstantSource {
    fn gpu_count(&self) -> u32 {
        self.gpus
    }

    fn gpu_state(&self, gpu_index: u32, _t: f64) -> GpuMetricSample {
        assert!(gpu_index < self.gpus, "gpu index {gpu_index} out of range");
        self.gpu
    }

    fn gpu_constant_until(&self, _gpu_index: u32, _t: f64) -> Option<f64> {
        Some(f64::INFINITY)
    }

    fn cpu_state(&self, _t: f64) -> CpuMetricSample {
        self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_source_is_deterministic() {
        let src = ConstantSource {
            gpus: 2,
            gpu: GpuMetricSample { sm_util: 42.0, ..Default::default() },
            cpu: CpuMetricSample::default(),
        };
        assert_eq!(src.gpu_state(0, 0.0), src.gpu_state(0, 100.0));
        assert_eq!(src.gpu_state(1, 5.0).sm_util, 42.0);
        assert_eq!(src.gpu_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn constant_source_bounds_checked() {
        let src = ConstantSource {
            gpus: 1,
            gpu: GpuMetricSample::default(),
            cpu: CpuMetricSample::default(),
        };
        let _ = src.gpu_state(1, 0.0);
    }
}
