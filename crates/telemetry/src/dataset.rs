//! The joined dataset and the paper's filtering funnel.
//!
//! "Over the duration of our study of 125 days, 191 unique users executed
//! 74,820 jobs in total … For GPU analysis, jobs running for less than 30
//! seconds are filtered out since no activity is observed for these very
//! short jobs, and 47,120 jobs are considered. … both datasets are
//! combined using job Ids to create a single dataset" (Sec. II).

use crate::record::{GpuJobRecord, JobRecord, SchedulerRecord, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Minimum run time for a GPU job to enter the analysis, in seconds.
pub const MIN_GPU_JOB_RUNTIME_SECS: f64 = 30.0;

/// Counts at each stage of the dataset-construction funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DatasetFunnel {
    /// All jobs in the scheduler log (74,820 in the paper).
    pub total_jobs: usize,
    /// CPU-only jobs among them.
    pub cpu_jobs: usize,
    /// GPU jobs before the 30 s filter.
    pub gpu_jobs_unfiltered: usize,
    /// GPU jobs shorter than 30 s that were dropped.
    pub gpu_jobs_filtered_out: usize,
    /// GPU jobs in the analysis set (47,120 in the paper).
    pub gpu_jobs: usize,
    /// GPU jobs whose telemetry record was missing at join time
    /// (monitoring failure; kept out of GPU analyses).
    pub gpu_jobs_missing_telemetry: usize,
    /// Unique users across all jobs (191 in the paper).
    pub unique_users: usize,
}

/// The joined analysis dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    records: Vec<JobRecord>,
    funnel: DatasetFunnel,
}

impl Dataset {
    /// Joins scheduler records with GPU telemetry records by job id and
    /// applies the paper's 30-second GPU-job filter.
    ///
    /// CPU-only jobs are retained (Fig. 3 compares GPU and CPU jobs);
    /// GPU jobs shorter than [`MIN_GPU_JOB_RUNTIME_SECS`] are dropped
    /// entirely, as in the paper.
    pub fn join(sched: Vec<SchedulerRecord>, gpu: Vec<GpuJobRecord>) -> Self {
        let mut gpu_by_id: HashMap<_, _> = gpu.into_iter().map(|g| (g.job_id, g)).collect();
        let mut funnel = DatasetFunnel { total_jobs: sched.len(), ..Default::default() };
        let mut users: Vec<UserId> = Vec::new();
        let mut records = Vec::with_capacity(sched.len());
        for s in sched {
            users.push(s.user);
            if !s.is_gpu_job() {
                funnel.cpu_jobs += 1;
                records.push(JobRecord { sched: s, gpu: None });
                continue;
            }
            funnel.gpu_jobs_unfiltered += 1;
            if s.run_time() < MIN_GPU_JOB_RUNTIME_SECS {
                funnel.gpu_jobs_filtered_out += 1;
                gpu_by_id.remove(&s.job_id);
                continue;
            }
            let telemetry = gpu_by_id.remove(&s.job_id);
            if telemetry.is_none() {
                funnel.gpu_jobs_missing_telemetry += 1;
            }
            funnel.gpu_jobs += 1;
            records.push(JobRecord { sched: s, gpu: telemetry });
        }
        users.sort();
        users.dedup();
        funnel.unique_users = users.len();
        Dataset { records, funnel }
    }

    /// All retained records (CPU and GPU jobs).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// The funnel counts.
    pub fn funnel(&self) -> DatasetFunnel {
        self.funnel
    }

    /// GPU jobs with telemetry — the population of every GPU figure.
    pub fn gpu_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| r.gpu.is_some())
    }

    /// CPU-only jobs (Fig. 3 comparison population).
    pub fn cpu_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| !r.sched.is_gpu_job())
    }

    /// Groups GPU jobs by user, preserving record references.
    pub fn gpu_jobs_by_user(&self) -> HashMap<UserId, Vec<&JobRecord>> {
        let mut map: HashMap<UserId, Vec<&JobRecord>> = HashMap::new();
        for r in self.gpu_jobs() {
            map.entry(r.sched.user).or_default().push(r);
        }
        map
    }

    /// Serializes the dataset to JSON — the anonymized release format
    /// (the paper published its dataset at dcc.mit.edu; this is the
    /// equivalent artifact for the synthetic reproduction).
    ///
    /// # Errors
    ///
    /// Propagates serialization errors (practically unreachable for
    /// this schema).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a dataset previously written by [`Dataset::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed input.
    pub fn from_json(json: &str) -> serde_json::Result<Dataset> {
        serde_json::from_str(json)
    }

    /// Serializes the dataset as a flat CSV table, one row per job with
    /// the job-level min/mean/max of every GPU metric — the shape of the
    /// per-job summary the paper's release distributes. CPU-only jobs
    /// have empty GPU columns.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "job_id,user,interface,gpus,cpus,mem_gib,submit,start,end,time_limit,exit,\
             sm_min,sm_mean,sm_max,mem_min,mem_mean,mem_max,\
             memsize_min,memsize_mean,memsize_max,\
             pcie_tx_mean,pcie_tx_max,pcie_rx_mean,pcie_rx_max,\
             power_min,power_mean,power_max\n",
        );
        for r in &self.records {
            let j = &r.sched;
            s.push_str(&format!(
                "{},{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.0},{}",
                j.job_id.0,
                j.user.0,
                j.interface,
                j.gpus_requested,
                j.cpus_requested,
                j.mem_requested_gib,
                j.submit_time,
                j.start_time,
                j.end_time,
                j.time_limit,
                j.exit
            ));
            let tail = match r.gpu_job_level() {
                Some(a) => {
                    let f = |x: f64| if x.is_finite() { format!("{x:.3}") } else { String::new() };
                    format!(
                        ",{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        f(a.sm_util.min),
                        f(a.sm_util.mean),
                        f(a.sm_util.max),
                        f(a.mem_util.min),
                        f(a.mem_util.mean),
                        f(a.mem_util.max),
                        f(a.mem_size_util.min),
                        f(a.mem_size_util.mean),
                        f(a.mem_size_util.max),
                        f(a.pcie_tx.mean),
                        f(a.pcie_tx.max),
                        f(a.pcie_rx.mean),
                        f(a.pcie_rx.max),
                        f(a.power_w.min),
                        f(a.power_w.mean),
                        f(a.power_w.max),
                    )
                }
                None => ",".repeat(16),
            };
            s.push_str(&tail);
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::GpuAggregates;
    use crate::record::{ExitStatus, JobId, SubmissionInterface};

    fn sched(id: u64, user: u32, gpus: u32, run_secs: f64) -> SchedulerRecord {
        SchedulerRecord {
            job_id: JobId(id),
            user: UserId(user),
            interface: SubmissionInterface::Other,
            gpus_requested: gpus,
            cpus_requested: 4,
            mem_requested_gib: 16.0,
            submit_time: 0.0,
            start_time: 10.0,
            end_time: 10.0 + run_secs,
            time_limit: 86_400.0,
            exit: ExitStatus::Completed,
        }
    }

    fn gpu_rec(id: u64, gpus: usize) -> GpuJobRecord {
        GpuJobRecord { job_id: JobId(id), per_gpu: vec![GpuAggregates::new(); gpus] }
    }

    #[test]
    fn join_filters_short_gpu_jobs() {
        let sched_recs = vec![
            sched(1, 1, 1, 600.0),
            sched(2, 1, 1, 10.0), // < 30 s: dropped
            sched(3, 2, 0, 5.0),  // CPU job: kept regardless of duration
        ];
        let gpu_recs = vec![gpu_rec(1, 1), gpu_rec(2, 1)];
        let ds = Dataset::join(sched_recs, gpu_recs);
        let f = ds.funnel();
        assert_eq!(f.total_jobs, 3);
        assert_eq!(f.cpu_jobs, 1);
        assert_eq!(f.gpu_jobs_unfiltered, 2);
        assert_eq!(f.gpu_jobs_filtered_out, 1);
        assert_eq!(f.gpu_jobs, 1);
        assert_eq!(f.unique_users, 2);
        assert_eq!(ds.records().len(), 2);
        assert_eq!(ds.gpu_jobs().count(), 1);
        assert_eq!(ds.cpu_jobs().count(), 1);
    }

    #[test]
    fn missing_telemetry_is_counted() {
        let ds = Dataset::join(vec![sched(1, 1, 2, 600.0)], vec![]);
        assert_eq!(ds.funnel().gpu_jobs_missing_telemetry, 1);
        assert_eq!(ds.funnel().gpu_jobs, 1);
        // Record retained but without GPU data, so GPU analyses skip it.
        assert_eq!(ds.gpu_jobs().count(), 0);
    }

    #[test]
    fn by_user_grouping() {
        let sched_recs = vec![sched(1, 7, 1, 100.0), sched(2, 7, 1, 100.0), sched(3, 8, 1, 100.0)];
        let gpu_recs = vec![gpu_rec(1, 1), gpu_rec(2, 1), gpu_rec(3, 1)];
        let ds = Dataset::join(sched_recs, gpu_recs);
        let by_user = ds.gpu_jobs_by_user();
        assert_eq!(by_user[&UserId(7)].len(), 2);
        assert_eq!(by_user[&UserId(8)].len(), 1);
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let sched_recs = vec![sched(1, 1, 1, 600.0), sched(2, 2, 0, 120.0)];
        let gpu_recs = vec![gpu_rec(1, 1)];
        let ds = Dataset::join(sched_recs, gpu_recs);
        let json = ds.to_json().expect("serializable");
        let back = Dataset::from_json(&json).expect("parseable");
        assert_eq!(back.funnel(), ds.funnel());
        assert_eq!(back.records().len(), ds.records().len());
        for (a, b) in back.records().iter().zip(ds.records()) {
            assert_eq!(a.sched, b.sched);
            assert_eq!(a.gpu, b.gpu);
        }
        assert!(Dataset::from_json("not json").is_err());
    }

    #[test]
    fn csv_has_one_row_per_job_and_consistent_columns() {
        let sched_recs = vec![sched(1, 1, 1, 600.0), sched(2, 2, 0, 120.0)];
        let gpu_recs = vec![gpu_rec(1, 1)];
        let ds = Dataset::join(sched_recs, gpu_recs);
        let csv = ds.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 1 + ds.records().len());
        let cols = lines[0].matches(',').count();
        for l in &lines[1..] {
            assert_eq!(l.matches(',').count(), cols, "ragged row: {l}");
        }
        assert!(lines[0].starts_with("job_id,user,interface"));
    }

    #[test]
    fn boundary_runtime_is_kept() {
        let ds = Dataset::join(vec![sched(1, 1, 1, 30.0)], vec![gpu_rec(1, 1)]);
        assert_eq!(ds.funnel().gpu_jobs, 1);
        assert_eq!(ds.funnel().gpu_jobs_filtered_out, 0);
    }
}
