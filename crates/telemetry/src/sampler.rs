//! The 100 ms GPU sampler and 10 s CPU sampler of Sec. II.
//!
//! "The CPU time series data is collected at 10-second intervals and the
//! GPU time series data is collected at an interval of 100ms. Both time
//! intervals were empirically chosen as a compromise between data volume
//! and usability."

use crate::aggregate::GpuAggregates;
use crate::metrics::{CpuMetricSample, GpuMetricSample};
use crate::source::MetricSource;
use serde::{Deserialize, Serialize};

/// Default GPU sampling period: 100 ms.
pub const GPU_SAMPLE_PERIOD_SECS: f64 = 0.1;

/// Default CPU sampling period: 10 s.
pub const CPU_SAMPLE_PERIOD_SECS: f64 = 10.0;

/// The sampled GPU series of one job: one vector of samples per GPU,
/// taken at a fixed period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuTimeSeries {
    /// Sampling period in seconds.
    pub period_secs: f64,
    /// `per_gpu[g][k]` is the sample of GPU `g` at time `k * period`.
    pub per_gpu: Vec<Vec<GpuMetricSample>>,
}

impl GpuTimeSeries {
    /// Number of samples per GPU (all GPUs are sampled in lockstep).
    pub fn len(&self) -> usize {
        self.per_gpu.first().map_or(0, Vec::len)
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts one metric of one GPU as a scalar series.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn metric_series(&self, gpu: usize, f: impl Fn(&GpuMetricSample) -> f64) -> Vec<f64> {
        self.per_gpu[gpu].iter().map(f).collect()
    }

    /// Per-GPU end-of-job aggregates — what the epilog reduces the series
    /// to for the main dataset.
    pub fn aggregates(&self) -> Vec<GpuAggregates> {
        self.per_gpu.iter().map(|s| GpuAggregates::from_samples(s)).collect()
    }

    /// The job-level series: each instant averaged across GPUs.
    pub fn job_level_series(&self, f: impl Fn(&GpuMetricSample) -> f64) -> Vec<f64> {
        if self.per_gpu.is_empty() {
            return Vec::new();
        }
        let n = self.len();
        let g = self.per_gpu.len() as f64;
        (0..n).map(|k| self.per_gpu.iter().map(|gpu| f(&gpu[k])).sum::<f64>() / g).collect()
    }
}

/// Samples a job's GPUs at a fixed period, as the prolog-launched
/// `nvidia-smi` process does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSampler {
    period_secs: f64,
}

impl Default for GpuSampler {
    fn default() -> Self {
        GpuSampler::new()
    }
}

impl GpuSampler {
    /// A sampler at the production period of 100 ms.
    pub fn new() -> Self {
        GpuSampler { period_secs: GPU_SAMPLE_PERIOD_SECS }
    }

    /// A sampler with a custom period (the paper calls the period an
    /// empirical "compromise between data volume and usability"; the
    /// benches sweep it).
    ///
    /// # Panics
    ///
    /// Panics if `period_secs` is not strictly positive.
    pub fn with_period(period_secs: f64) -> Self {
        assert!(period_secs > 0.0, "sampling period must be positive");
        GpuSampler { period_secs }
    }

    /// Sampling period in seconds.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// Samples `source` from t = 0 to `duration_secs`, producing the full
    /// per-GPU time series. The sample at `k * period` is taken while
    /// `k * period < duration`, matching a poller that starts with the
    /// job and is killed by the epilog.
    pub fn sample_series<S: MetricSource + ?Sized>(
        &self,
        source: &S,
        duration_secs: f64,
    ) -> GpuTimeSeries {
        let n = self.sample_count(duration_secs);
        let per_gpu = (0..source.gpu_count())
            .map(|g| {
                let mut samples = Vec::with_capacity(n);
                let mut k = 0;
                while k < n {
                    let t = k as f64 * self.period_secs;
                    let sample = source.gpu_state(g, t);
                    samples.push(sample);
                    k += 1;
                    // Constant-span fast path: reuse the sample for
                    // every tick the source guarantees is identical.
                    if let Some(end) = source.gpu_constant_until(g, t) {
                        while k < n && (k as f64) * self.period_secs < end {
                            samples.push(sample);
                            k += 1;
                        }
                    }
                }
                samples
            })
            .collect();
        GpuTimeSeries { period_secs: self.period_secs, per_gpu }
    }

    /// Streams the samples straight into per-GPU aggregates without
    /// materializing the series — what production does for every job
    /// outside the 2,149-job time-series subset. For a 20-hour job this
    /// is 720,000 samples per GPU; the streaming path is the difference
    /// between a 42 GB dataset and an unusable one.
    pub fn sample_aggregates<S: MetricSource + ?Sized>(
        &self,
        source: &S,
        duration_secs: f64,
    ) -> Vec<GpuAggregates> {
        let n = self.sample_count(duration_secs);
        (0..source.gpu_count())
            .map(|g| {
                let mut agg = GpuAggregates::new();
                let mut k = 0;
                while k < n {
                    let t = k as f64 * self.period_secs;
                    let sample = source.gpu_state(g, t);
                    agg.update(&sample);
                    k += 1;
                    // Constant-span fast path. The repeated sample is
                    // still folded through the same update loop, so the
                    // aggregates are bit-identical to the slow path —
                    // only the `gpu_state` calls are skipped.
                    if let Some(end) = source.gpu_constant_until(g, t) {
                        while k < n && (k as f64) * self.period_secs < end {
                            agg.update(&sample);
                            k += 1;
                        }
                    }
                }
                agg
            })
            .collect()
    }

    fn sample_count(&self, duration_secs: f64) -> usize {
        tick_count(duration_secs, self.period_secs)
    }
}

/// Samples the CPU-side metrics at 10-second intervals via the Slurm
/// plugin path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSampler {
    period_secs: f64,
}

impl Default for CpuSampler {
    fn default() -> Self {
        CpuSampler::new()
    }
}

impl CpuSampler {
    /// A sampler at the production period of 10 s.
    pub fn new() -> Self {
        CpuSampler { period_secs: CPU_SAMPLE_PERIOD_SECS }
    }

    /// Sampling period in seconds.
    pub fn period_secs(&self) -> f64 {
        self.period_secs
    }

    /// Samples the CPU series over the job duration.
    pub fn sample_series<S: MetricSource + ?Sized>(
        &self,
        source: &S,
        duration_secs: f64,
    ) -> Vec<CpuMetricSample> {
        let n = tick_count(duration_secs, self.period_secs);
        (0..n).map(|k| source.cpu_state(k as f64 * self.period_secs)).collect()
    }
}

/// Number of ticks `k` (from 0) with `k * period < duration` — the
/// samples a poller started with the job and killed by the epilog takes.
///
/// `ceil(duration / period)` alone overshoots when the float quotient of
/// an exact tick multiple lands just above the integer (e.g. a duration
/// computed as `3.0 * 0.1` divided by `0.1` gives 3.0000000000000004,
/// whose ceil would schedule a 4th sample *at* the kill instant), so the
/// result is corrected against the defining inequality.
///
/// Public because the streaming producers ([`crate::stream`]) must
/// enumerate exactly the ticks the batch sampler would take.
pub fn tick_count(duration_secs: f64, period_secs: f64) -> usize {
    if duration_secs <= 0.0 {
        return 0;
    }
    let mut n = (duration_secs / period_secs).ceil() as usize;
    while n > 0 && (n - 1) as f64 * period_secs >= duration_secs {
        n -= 1;
    }
    while (n as f64) * period_secs < duration_secs {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ConstantSource;

    fn source(gpus: u32, sm: f64) -> ConstantSource {
        ConstantSource {
            gpus,
            gpu: GpuMetricSample { sm_util: sm, ..Default::default() },
            cpu: CpuMetricSample { cpu_util: 50.0, ..Default::default() },
        }
    }

    #[test]
    fn sample_count_matches_duration() {
        let s = GpuSampler::new();
        let series = s.sample_series(&source(1, 10.0), 1.0);
        assert_eq!(series.len(), 10);
        let series = s.sample_series(&source(1, 10.0), 0.95);
        assert_eq!(series.len(), 10); // ceil(9.5)
        let series = s.sample_series(&source(1, 10.0), 0.0);
        assert!(series.is_empty());
    }

    #[test]
    fn exact_multiple_durations_do_not_gain_a_sample() {
        // `3.0 * 0.1 = 0.30000000000000004` divided by `0.1` is
        // 3.0000000000000004, whose bare ceil would schedule a 4th
        // sample at the kill instant. The tick contract is strictly
        // `k * period < duration`.
        let s = GpuSampler::with_period(0.1);
        let duration = 3.0 * 0.1;
        let series = s.sample_series(&source(1, 10.0), duration);
        let expected = (0..).take_while(|&k| k as f64 * 0.1 < duration).count();
        assert_eq!(series.len(), expected);
        assert_eq!(series.len(), 3);
        // An exactly-representable multiple stays exact.
        let series = s.sample_series(&source(1, 10.0), 0.5);
        assert_eq!(series.len(), 5);
        // CPU sampler shares the same tick arithmetic.
        let c = CpuSampler::new();
        let duration = 7.0 * 10.0;
        assert_eq!(c.sample_series(&source(1, 0.0), duration).len(), 7);
    }

    #[test]
    fn aggregates_match_series_reduction() {
        let s = GpuSampler::new();
        let src = source(2, 33.0);
        let series = s.sample_series(&src, 2.0);
        let from_series = series.aggregates();
        let streamed = s.sample_aggregates(&src, 2.0);
        assert_eq!(from_series, streamed);
        assert_eq!(streamed[0].sm_util.mean, 33.0);
        assert_eq!(streamed.len(), 2);
    }

    #[test]
    fn job_level_series_averages_gpus() {
        let series = GpuTimeSeries {
            period_secs: 0.1,
            per_gpu: vec![
                vec![GpuMetricSample { sm_util: 100.0, ..Default::default() }],
                vec![GpuMetricSample { sm_util: 0.0, ..Default::default() }],
            ],
        };
        let job = series.job_level_series(|s| s.sm_util);
        assert_eq!(job, vec![50.0]);
    }

    #[test]
    fn cpu_sampler_period() {
        let s = CpuSampler::new();
        let samples = s.sample_series(&source(1, 0.0), 60.0);
        assert_eq!(samples.len(), 6);
        assert_eq!(samples[0].cpu_util, 50.0);
    }

    #[test]
    #[should_panic(expected = "sampling period must be positive")]
    fn rejects_zero_period() {
        let _ = GpuSampler::with_period(0.0);
    }
}
