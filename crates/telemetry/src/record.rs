//! The per-job record schema: Slurm-side scheduling facts, GPU-side
//! telemetry aggregates, and the joined record the analysis consumes.

use crate::aggregate::GpuAggregates;
use serde::{Deserialize, Serialize};

/// Cluster-wide unique job identifier (Slurm job id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Anonymized user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user-{}", self.0)
    }
}

/// How the job was submitted. "We are able to identify map-reduce,
/// batch, and interactive jobs as they are submitted using their
/// individual interfaces. Other jobs (mostly deep learning jobs …) are
/// submitted via the general Slurm interface" (Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubmissionInterface {
    /// Map-reduce interface (1% of jobs).
    MapReduce,
    /// Batch interface (30% of jobs).
    Batch,
    /// Interactive interface (4% of jobs).
    Interactive,
    /// General Slurm interface — mostly deep learning (65% of jobs).
    Other,
}

impl SubmissionInterface {
    /// All interfaces in the paper's Fig. 5 order.
    pub const ALL: [SubmissionInterface; 4] = [
        SubmissionInterface::MapReduce,
        SubmissionInterface::Batch,
        SubmissionInterface::Interactive,
        SubmissionInterface::Other,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            SubmissionInterface::MapReduce => "map-reduce",
            SubmissionInterface::Batch => "batch",
            SubmissionInterface::Interactive => "interactive",
            SubmissionInterface::Other => "other",
        }
    }
}

impl std::fmt::Display for SubmissionInterface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the job ended. Sec. VI classifies the algorithm-development
/// life-cycle from exactly these outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExitStatus {
    /// Exit code zero — the paper's *mature* jobs.
    Completed,
    /// Cancelled by the user before completion (e.g. a hyper-parameter
    /// trial deemed sub-optimal) — *exploratory* jobs.
    Cancelled,
    /// Non-zero exit code (crash, debug iteration) — *development* jobs.
    Failed,
    /// Hit the wall-clock limit (12 h / 24 h) — long-running sessions;
    /// interactive ones are the paper's *IDE* jobs.
    Timeout,
    /// Terminated by a hardware failure (<0.5% of jobs on Supercloud).
    NodeFailure,
}

impl ExitStatus {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ExitStatus::Completed => "completed",
            ExitStatus::Cancelled => "cancelled",
            ExitStatus::Failed => "failed",
            ExitStatus::Timeout => "timeout",
            ExitStatus::NodeFailure => "node-failure",
        }
    }
}

impl std::fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Root cause of an infrastructure-induced job death — the failure
/// taxonomy reliability studies attribute wasted GPU-hours to. The
/// Slurm-side [`ExitStatus`] only records *that* a job died to hardware
/// (`NodeFailure`); the cause is what the failure-injection subsystem
/// and the goodput report attribute losses by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureCause {
    /// A single GPU faults (Xid error: uncorrectable ECC, falling off
    /// the bus) and kills the one job bound to it; the GPU resets
    /// without taking the node down.
    GpuXid,
    /// Whole-node hardware failure: every resident job dies and the
    /// node leaves service for repair.
    NodeHardware,
    /// Transient infrastructure blip (network partition, filesystem
    /// hiccup): residents die but the node returns within minutes.
    InfraTransient,
}

impl FailureCause {
    /// All causes, in taxonomy order (the order goodput reports use).
    pub const ALL: [FailureCause; 3] =
        [FailureCause::GpuXid, FailureCause::NodeHardware, FailureCause::InfraTransient];

    /// Index into [`FailureCause::ALL`] — the per-cause accounting slot.
    pub fn index(&self) -> usize {
        match self {
            FailureCause::GpuXid => 0,
            FailureCause::NodeHardware => 1,
            FailureCause::InfraTransient => 2,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            FailureCause::GpuXid => "gpu-xid",
            FailureCause::NodeHardware => "node-hardware",
            FailureCause::InfraTransient => "infra-transient",
        }
    }
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Scheduler-side facts about one job, as recorded in the Slurm
/// accounting log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerRecord {
    /// Job identifier.
    pub job_id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Submission interface used.
    pub interface: SubmissionInterface,
    /// GPUs requested (0 for CPU-only jobs).
    pub gpus_requested: u32,
    /// CPU cores requested.
    pub cpus_requested: u32,
    /// Host memory requested (GiB).
    pub mem_requested_gib: f64,
    /// Submission time (seconds since trace start).
    pub submit_time: f64,
    /// Start of execution (seconds since trace start).
    pub start_time: f64,
    /// End of execution (seconds since trace start).
    pub end_time: f64,
    /// Requested wall-clock limit in seconds.
    pub time_limit: f64,
    /// How the job terminated.
    pub exit: ExitStatus,
}

impl SchedulerRecord {
    /// Queue wait: `start - submit`.
    pub fn queue_wait(&self) -> f64 {
        self.start_time - self.submit_time
    }

    /// Run time: `end - start`.
    pub fn run_time(&self) -> f64 {
        self.end_time - self.start_time
    }

    /// Service time: queue wait + run time (Fig. 3b denominator).
    pub fn service_time(&self) -> f64 {
        self.end_time - self.submit_time
    }

    /// Queue wait as a percentage of service time (Fig. 3b). Zero-length
    /// service degenerates to 0%.
    pub fn queue_wait_percent(&self) -> f64 {
        let service = self.service_time();
        if service <= 0.0 {
            0.0
        } else {
            self.queue_wait() / service * 100.0
        }
    }

    /// GPU hours consumed: `gpus × run_time`.
    pub fn gpu_hours(&self) -> f64 {
        self.gpus_requested as f64 * self.run_time() / 3600.0
    }

    /// Whether this is a GPU job.
    pub fn is_gpu_job(&self) -> bool {
        self.gpus_requested > 0
    }
}

/// GPU-side telemetry summary for one job: one aggregate set per GPU,
/// as produced by the epilog from the `nvidia-smi` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuJobRecord {
    /// Job identifier (the join key).
    pub job_id: JobId,
    /// Per-GPU aggregates, indexed by the job's GPU ordinal.
    pub per_gpu: Vec<GpuAggregates>,
}

impl GpuJobRecord {
    /// Job-level aggregates: "the average over multiple GPUs was computed
    /// to get a single number for multi-GPU jobs" (Sec. II).
    pub fn job_level(&self) -> GpuAggregates {
        GpuAggregates::average_of(&self.per_gpu)
    }

    /// Number of GPUs with telemetry.
    pub fn gpu_count(&self) -> usize {
        self.per_gpu.len()
    }
}

/// A fully joined job record: scheduler facts plus (for GPU jobs) the
/// telemetry summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Scheduler-side facts.
    pub sched: SchedulerRecord,
    /// GPU-side aggregates; `None` for CPU-only jobs.
    pub gpu: Option<GpuJobRecord>,
}

impl JobRecord {
    /// Job-level GPU aggregates if this is a GPU job with telemetry.
    pub fn gpu_job_level(&self) -> Option<GpuAggregates> {
        self.gpu.as_ref().map(GpuJobRecord::job_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(submit: f64, start: f64, end: f64) -> SchedulerRecord {
        SchedulerRecord {
            job_id: JobId(1),
            user: UserId(1),
            interface: SubmissionInterface::Other,
            gpus_requested: 2,
            cpus_requested: 8,
            mem_requested_gib: 64.0,
            submit_time: submit,
            start_time: start,
            end_time: end,
            time_limit: 86_400.0,
            exit: ExitStatus::Completed,
        }
    }

    #[test]
    fn derived_times() {
        let r = record(0.0, 60.0, 3660.0);
        assert_eq!(r.queue_wait(), 60.0);
        assert_eq!(r.run_time(), 3600.0);
        assert_eq!(r.service_time(), 3660.0);
        assert!((r.queue_wait_percent() - 60.0 / 3660.0 * 100.0).abs() < 1e-12);
        assert!((r.gpu_hours() - 2.0).abs() < 1e-12);
        assert!(r.is_gpu_job());
    }

    #[test]
    fn zero_service_time_degenerates() {
        let r = record(5.0, 5.0, 5.0);
        assert_eq!(r.queue_wait_percent(), 0.0);
    }

    #[test]
    fn ids_display() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(UserId(3).to_string(), "user-3");
        assert_eq!(SubmissionInterface::MapReduce.to_string(), "map-reduce");
        assert_eq!(ExitStatus::Timeout.to_string(), "timeout");
    }

    #[test]
    fn interface_all_covers_every_variant() {
        assert_eq!(SubmissionInterface::ALL.len(), 4);
    }

    #[test]
    fn failure_cause_indices_match_all_order() {
        for (i, cause) in FailureCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        assert_eq!(FailureCause::GpuXid.to_string(), "gpu-xid");
        assert_eq!(FailureCause::NodeHardware.to_string(), "node-hardware");
        assert_eq!(FailureCause::InfraTransient.to_string(), "infra-transient");
    }
}
