//! Telemetry substrate: the monitoring pipeline of Sec. II of the paper.
//!
//! The Supercloud study collected two time series per job — CPU metrics
//! at 10-second intervals via Slurm plugins and GPU metrics at 100 ms via
//! `nvidia-smi` started from the job prolog — buffered them on node-local
//! storage, copied them to the central file system in the epilog, and
//! finally joined the scheduler-side and GPU-side datasets by job id.
//!
//! This crate models that pipeline faithfully:
//!
//! - [`metrics`]: the sample schema (`nvidia-smi` fields the paper uses:
//!   SM %, memory-bandwidth %, memory-size %, PCIe Tx/Rx, power).
//! - [`source`]: the [`MetricSource`] trait — the ground-truth process a
//!   running job exposes; the workload crate provides implementations.
//! - [`sampler`]: [`GpuSampler`] (100 ms) and [`CpuSampler`] (10 s).
//! - [`aggregate`]: streaming min/mean/max aggregation, the only thing
//!   retained for most jobs ("the minimum, mean, and maximum resource
//!   utilization during the run were reported at the end of the job").
//! - [`record`]: the per-job record schema joining Slurm-side and
//!   GPU-side information.
//! - [`collector`]: prolog/epilog lifecycle and node-local buffering.
//! - [`dataset`]: the joined dataset with the paper's 30-second filter.
//! - [`phases`]: active/idle phase analysis over sampled series.
//! - [`stream`]: streaming ingestion — the [`stream::Util3Sink`]
//!   producer/consumer contract, one-pass detail reduction that is
//!   bit-identical to the batch path, and mergeable run-level
//!   summaries.
//! - [`corruption`]: seeded data-quality fault injection — the lossy
//!   version of the same pipeline, for ingest-hardening studies.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface degenerate inputs as typed errors, not
// panics; tests are exempt (unwrap there is an assertion).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod aggregate;
pub mod collector;
pub mod corruption;
pub mod dataset;
pub mod gpu_power;
pub mod metrics;
pub mod phases;
pub mod record;
pub mod sampler;
pub mod source;
pub mod stream;

pub use aggregate::{Aggregate, GpuAggregates};
pub use collector::{JobMonitor, MonitorConfig, NodeLocalBuffer};
pub use corruption::{
    CorruptionConfig, CorruptionCounters, Corruptor, DataQualityProfile, FaultClass, RawCollection,
};
pub use dataset::{Dataset, DatasetFunnel};
pub use gpu_power::{
    gpu_energy_kwh, DVFS_PERF_PER_POWER, FACILITY_BUDGET_W, SUPERCLOUD_GPUS, V100_IDLE_W,
    V100_TDP_W,
};
pub use metrics::{CpuMetricSample, GpuMetricSample, GpuResource};
pub use record::{
    ExitStatus, FailureCause, GpuJobRecord, JobId, JobRecord, SchedulerRecord, SubmissionInterface,
    UserId,
};
pub use sampler::{CpuSampler, GpuSampler, GpuTimeSeries};
pub use source::MetricSource;
pub use stream::{stream_detail, DetailSink, TelemetryStreamSummary, Util3Sink};
