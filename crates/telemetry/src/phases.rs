//! Active/idle phase analysis over sampled GPU series (Figs. 6–7).
//!
//! "Our analysis of the logs reveals that the GPU jobs have 'active
//! phases' and 'idle phases.' GPU resources are used during the active
//! phases and they remain unused during the idle phases" (Sec. III).

use crate::metrics::GpuResource;
use crate::sampler::GpuTimeSeries;
use sc_stats::segment::{segment_intervals, IntervalKind, Segmentation};
use sc_stats::{coefficient_of_variation, StatsError};
use serde::{Deserialize, Serialize};

/// SM-utilization threshold separating active from idle samples (%).
/// `nvidia-smi` reports integer percentages, so any strictly positive
/// reading means the SMs did work in that window.
pub const ACTIVE_SM_THRESHOLD: f64 = 0.5;

/// Minimum phase length in samples (at 100 ms this is 1 s), suppressing
/// single-sample flicker between kernel launches.
pub const MIN_PHASE_SAMPLES: usize = 10;

/// Per-job phase statistics extracted from the detailed time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Fraction of run time spent in active phases, `[0, 1]` (Fig. 6a).
    pub active_fraction: f64,
    /// CoV (%) of active-interval lengths; `None` with fewer than two
    /// active intervals (Fig. 6b).
    pub active_interval_cov: Option<f64>,
    /// CoV (%) of idle-interval lengths; `None` with fewer than two idle
    /// intervals (Fig. 6b).
    pub idle_interval_cov: Option<f64>,
    /// Number of active intervals.
    pub active_intervals: usize,
    /// Number of idle intervals.
    pub idle_intervals: usize,
}

/// Per-job utilization variability during active phases (Fig. 7a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveVariability {
    /// CoV (%) of SM utilization across active-phase samples.
    pub sm_cov: f64,
    /// CoV (%) of memory-bandwidth utilization across active-phase samples.
    pub mem_cov: f64,
    /// CoV (%) of memory-size utilization across active-phase samples.
    pub mem_size_cov: f64,
}

/// Analyzes one job's time series into phase statistics.
///
/// The job-level SM series (averaged across GPUs, as the paper does for
/// multi-GPU jobs) is segmented with [`ACTIVE_SM_THRESHOLD`] and
/// [`MIN_PHASE_SAMPLES`].
///
/// # Errors
///
/// Returns an error if the series is empty.
pub fn phase_stats(series: &GpuTimeSeries) -> Result<PhaseStats, StatsError> {
    let seg = segment_job(series)?;
    Ok(PhaseStats {
        active_fraction: seg.active_fraction(),
        active_interval_cov: seg.interval_cov(IntervalKind::Active),
        idle_interval_cov: seg.interval_cov(IntervalKind::Idle),
        active_intervals: seg.count_of(IntervalKind::Active),
        idle_intervals: seg.count_of(IntervalKind::Idle),
    })
}

/// Segments the job-level SM series into active/idle intervals.
///
/// # Errors
///
/// Returns an error if the series is empty.
pub fn segment_job(series: &GpuTimeSeries) -> Result<Segmentation, StatsError> {
    let sm = series.job_level_series(|s| s.sm_util);
    segment_intervals(&sm, ACTIVE_SM_THRESHOLD, MIN_PHASE_SAMPLES)
}

/// Computes per-resource CoV over the samples inside active phases
/// (Fig. 7a: "even when the GPUs are actively being used, the
/// utilization of different GPU resources may still vary").
///
/// Returns `None` when the job has no active samples at all (an all-idle
/// job has no active-phase variability to report).
///
/// # Errors
///
/// Returns an error if the series is empty.
pub fn active_variability(series: &GpuTimeSeries) -> Result<Option<ActiveVariability>, StatsError> {
    let seg = segment_job(series)?;
    let sm = series.job_level_series(|s| s.sm_util);
    let mem = series.job_level_series(|s| s.mem_util);
    let mem_size = series.job_level_series(|s| s.mem_size_util);
    let mut active_idx: Vec<usize> = Vec::new();
    for iv in seg.intervals() {
        if iv.kind == IntervalKind::Active {
            active_idx.extend(iv.start..iv.start + iv.len);
        }
    }
    if active_idx.is_empty() {
        return Ok(None);
    }
    let pick = |s: &[f64]| -> Vec<f64> { active_idx.iter().map(|&i| s[i]).collect() };
    Ok(Some(ActiveVariability {
        sm_cov: coefficient_of_variation(&pick(&sm))?,
        mem_cov: coefficient_of_variation(&pick(&mem))?,
        mem_size_cov: coefficient_of_variation(&pick(&mem_size))?,
    }))
}

/// Whether the job's maximum recorded value of `resource` reached the
/// bottleneck criterion: "A job is considered to have a resource
/// bottleneck if the maximum job usage of that resource reaches the limit
/// at any point during the run" (Fig. 7b). The limit for utilization
/// resources is 100%; sampling quantization makes ≥ 99.5 equivalent.
pub fn is_bottlenecked(max_value: f64, resource: GpuResource) -> bool {
    match resource {
        GpuResource::Power => max_value >= crate::gpu_power::V100_TDP_W - 1.0,
        _ => max_value >= 99.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::GpuMetricSample;

    fn series_from_sm(sm: &[f64]) -> GpuTimeSeries {
        GpuTimeSeries {
            period_secs: 0.1,
            per_gpu: vec![sm
                .iter()
                .map(|&v| GpuMetricSample {
                    sm_util: v,
                    mem_util: v / 2.0,
                    mem_size_util: v / 4.0,
                    ..Default::default()
                })
                .collect()],
        }
    }

    #[test]
    fn all_active_job() {
        let s = series_from_sm(&[80.0; 100]);
        let p = phase_stats(&s).unwrap();
        assert_eq!(p.active_fraction, 1.0);
        assert_eq!(p.active_intervals, 1);
        assert_eq!(p.idle_intervals, 0);
        assert_eq!(p.active_interval_cov, None);
    }

    #[test]
    fn alternating_job_phases() {
        // 20 active, 20 idle, 40 active, 20 idle (min phase 10 samples).
        let mut sm = Vec::new();
        sm.extend(std::iter::repeat_n(90.0, 20));
        sm.extend(std::iter::repeat_n(0.0, 20));
        sm.extend(std::iter::repeat_n(90.0, 40));
        sm.extend(std::iter::repeat_n(0.0, 20));
        let s = series_from_sm(&sm);
        let p = phase_stats(&s).unwrap();
        assert_eq!(p.active_intervals, 2);
        assert_eq!(p.idle_intervals, 2);
        assert!((p.active_fraction - 0.6).abs() < 1e-12);
        // Active lengths 20 and 40: CoV = 10/30 * 100.
        let cov = p.active_interval_cov.unwrap();
        assert!((cov - 10.0 / 30.0 * 100.0).abs() < 1e-9);
        // Idle lengths 20 and 20: CoV = 0.
        assert_eq!(p.idle_interval_cov.unwrap(), 0.0);
    }

    #[test]
    fn active_variability_over_active_samples_only() {
        let mut sm = vec![0.0; 20];
        sm.extend([50.0, 100.0, 50.0, 100.0, 50.0, 100.0, 50.0, 100.0, 50.0, 100.0]);
        let s = series_from_sm(&sm);
        let v = active_variability(&s).unwrap().unwrap();
        // Active samples are {50, 100}*5: mean 75, sd 25 -> CoV 33.3%.
        assert!((v.sm_cov - 25.0 / 75.0 * 100.0).abs() < 1e-9, "cov={}", v.sm_cov);
        assert!(v.mem_cov > 0.0 && v.mem_size_cov > 0.0);
    }

    #[test]
    fn idle_job_has_no_active_variability() {
        let s = series_from_sm(&[0.0; 50]);
        assert_eq!(active_variability(&s).unwrap(), None);
    }

    #[test]
    fn bottleneck_criteria() {
        assert!(is_bottlenecked(100.0, GpuResource::Sm));
        assert!(is_bottlenecked(99.6, GpuResource::Sm));
        assert!(!is_bottlenecked(98.0, GpuResource::Sm));
        assert!(is_bottlenecked(300.0, GpuResource::Power));
        assert!(!is_bottlenecked(250.0, GpuResource::Power));
    }
}
