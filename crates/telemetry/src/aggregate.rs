//! Streaming min/mean/max aggregation.
//!
//! "For all jobs, the minimum, mean, and maximum resource utilization of
//! a variety of CPU and GPU metrics are collected" (Sec. II) — the
//! full 100 ms series is retained only for the 2,149-job time-series
//! subset. [`Aggregate`] is the online accumulator the epilog would run.

use crate::metrics::{GpuMetricSample, GpuResource};
use serde::{Deserialize, Serialize};

/// Online min/mean/max accumulator over a scalar stream.
///
/// The empty accumulator's `±inf` sentinels are encoded as `null` in
/// JSON (JSON has no infinities) and restored on deserialization, so
/// datasets round-trip even when they contain unmonitored entries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Minimum observed value; `+inf` before any update.
    #[serde(with = "serde_inf::pos")]
    pub min: f64,
    /// Running mean.
    pub mean: f64,
    /// Maximum observed value; `-inf` before any update.
    #[serde(with = "serde_inf::neg")]
    pub max: f64,
    /// Number of samples folded in.
    pub count: u64,
}

/// Serde adapters mapping non-finite sentinels to JSON `null`.
mod serde_inf {
    macro_rules! inf_mod {
        ($name:ident, $sentinel:expr) => {
            pub mod $name {
                use serde::{Deserialize, Deserializer, Serializer};

                pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
                    if v.is_finite() {
                        s.serialize_some(v)
                    } else {
                        s.serialize_none()
                    }
                }

                pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
                    Ok(Option::<f64>::deserialize(d)?.unwrap_or($sentinel))
                }
            }
        };
    }
    inf_mod!(pos, f64::INFINITY);
    inf_mod!(neg, f64::NEG_INFINITY);
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate::new()
    }
}

impl Aggregate {
    /// An empty accumulator.
    pub fn new() -> Self {
        Aggregate { min: f64::INFINITY, mean: 0.0, max: f64::NEG_INFINITY, count: 0 }
    }

    /// Folds one observation into the accumulator (Welford-style mean
    /// update, numerically stable for long series).
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.mean += (value - self.mean) / self.count as f64;
    }

    /// Builds an aggregate from a complete slice.
    pub fn from_values(values: &[f64]) -> Self {
        let mut a = Aggregate::new();
        for &v in values {
            a.update(v);
        }
        a
    }

    /// Whether any samples have been folded in.
    pub fn has_samples(&self) -> bool {
        self.count > 0
    }
}

/// Min/mean/max aggregates for every GPU metric of one GPU over one job.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GpuAggregates {
    /// SM utilization aggregate (%).
    pub sm_util: Aggregate,
    /// Memory-bandwidth utilization aggregate (%).
    pub mem_util: Aggregate,
    /// Memory-size utilization aggregate (%).
    pub mem_size_util: Aggregate,
    /// PCIe transmit bandwidth aggregate (%).
    pub pcie_tx: Aggregate,
    /// PCIe receive bandwidth aggregate (%).
    pub pcie_rx: Aggregate,
    /// Power aggregate (W).
    pub power_w: Aggregate,
}

impl GpuAggregates {
    /// An empty aggregate set.
    pub fn new() -> Self {
        GpuAggregates {
            sm_util: Aggregate::new(),
            mem_util: Aggregate::new(),
            mem_size_util: Aggregate::new(),
            pcie_tx: Aggregate::new(),
            pcie_rx: Aggregate::new(),
            power_w: Aggregate::new(),
        }
    }

    /// Folds one sample into every per-metric accumulator.
    pub fn update(&mut self, s: &GpuMetricSample) {
        self.sm_util.update(s.sm_util);
        self.mem_util.update(s.mem_util);
        self.mem_size_util.update(s.mem_size_util);
        self.pcie_tx.update(s.pcie_tx);
        self.pcie_rx.update(s.pcie_rx);
        self.power_w.update(s.power_w);
    }

    /// Builds aggregates from a complete series.
    pub fn from_samples(samples: &[GpuMetricSample]) -> Self {
        let mut a = GpuAggregates::new();
        for s in samples {
            a.update(s);
        }
        a
    }

    /// These aggregates as a power-capped board would have reported
    /// them: every power statistic clamped to `cap_w`, the DVFS
    /// enforcement a cluster-level power-cap policy applies. The
    /// utilization metrics are untouched — capping slows the clock, it
    /// does not idle the SMs.
    ///
    /// # Panics
    ///
    /// Panics if `cap_w` is not positive.
    pub fn with_power_cap(&self, cap_w: f64) -> GpuAggregates {
        assert!(cap_w > 0.0, "power cap must be positive");
        let mut capped = *self;
        capped.power_w.min = self.power_w.min.min(cap_w);
        capped.power_w.mean = self.power_w.mean.min(cap_w);
        capped.power_w.max = self.power_w.max.min(cap_w);
        capped
    }

    /// The aggregate for one resource.
    pub fn resource(&self, r: GpuResource) -> Aggregate {
        match r {
            GpuResource::Sm => self.sm_util,
            GpuResource::Memory => self.mem_util,
            GpuResource::MemorySize => self.mem_size_util,
            GpuResource::PcieTx => self.pcie_tx,
            GpuResource::PcieRx => self.pcie_rx,
            GpuResource::Power => self.power_w,
        }
    }

    /// Job-level averaging across GPUs: per-field means of mins, means,
    /// and maxes ("the average over multiple GPUs was computed to get a
    /// single number for multi-GPU jobs", Sec. II).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is empty.
    pub fn average_of(sets: &[GpuAggregates]) -> GpuAggregates {
        assert!(!sets.is_empty(), "cannot average zero aggregate sets");
        let n = sets.len() as f64;
        let avg_field = |f: fn(&GpuAggregates) -> Aggregate| -> Aggregate {
            let mut min = 0.0;
            let mut mean = 0.0;
            let mut max = 0.0;
            let mut count = 0u64;
            for s in sets {
                let a = f(s);
                min += a.min / n;
                mean += a.mean / n;
                max += a.max / n;
                count += a.count;
            }
            Aggregate { min, mean, max, count }
        };
        GpuAggregates {
            sm_util: avg_field(|s| s.sm_util),
            mem_util: avg_field(|s| s.mem_util),
            mem_size_util: avg_field(|s| s.mem_size_util),
            pcie_tx: avg_field(|s| s.pcie_tx),
            pcie_rx: avg_field(|s| s.pcie_rx),
            power_w: avg_field(|s| s.power_w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn aggregate_tracks_min_mean_max() {
        let a = Aggregate::from_values(&[3.0, 1.0, 2.0]);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert!((a.mean - 2.0).abs() < 1e-12);
        assert_eq!(a.count, 3);
        assert!(a.has_samples());
    }

    #[test]
    fn empty_aggregate_sentinels() {
        let a = Aggregate::new();
        assert!(!a.has_samples());
        assert!(a.min.is_infinite() && a.min > 0.0);
        assert!(a.max.is_infinite() && a.max < 0.0);
    }

    #[test]
    fn gpu_aggregates_fold_all_fields() {
        let s1 =
            GpuMetricSample { sm_util: 10.0, mem_util: 5.0, power_w: 100.0, ..Default::default() };
        let s2 =
            GpuMetricSample { sm_util: 30.0, mem_util: 15.0, power_w: 200.0, ..Default::default() };
        let a = GpuAggregates::from_samples(&[s1, s2]);
        assert_eq!(a.sm_util.mean, 20.0);
        assert_eq!(a.mem_util.max, 15.0);
        assert_eq!(a.power_w.min, 100.0);
        assert_eq!(a.resource(GpuResource::Sm).mean, 20.0);
    }

    #[test]
    fn average_of_two_gpus() {
        let g1 =
            GpuAggregates::from_samples(&[GpuMetricSample { sm_util: 80.0, ..Default::default() }]);
        let g2 =
            GpuAggregates::from_samples(&[GpuMetricSample { sm_util: 0.0, ..Default::default() }]);
        let job = GpuAggregates::average_of(&[g1, g2]);
        assert_eq!(job.sm_util.mean, 40.0);
        assert_eq!(job.sm_util.count, 2);
    }

    #[test]
    #[should_panic(expected = "cannot average zero aggregate sets")]
    fn average_of_empty_panics() {
        let _ = GpuAggregates::average_of(&[]);
    }

    proptest! {
        #[test]
        fn prop_mean_bounded_by_min_max(values in proptest::collection::vec(-1e6..1e6f64, 1..500)) {
            let a = Aggregate::from_values(&values);
            prop_assert!(a.min <= a.mean + 1e-6);
            prop_assert!(a.mean <= a.max + 1e-6);
            prop_assert_eq!(a.count as usize, values.len());
        }

        #[test]
        fn prop_streaming_matches_batch(values in proptest::collection::vec(0.0..100.0f64, 1..300)) {
            let batch_mean = values.iter().sum::<f64>() / values.len() as f64;
            let a = Aggregate::from_values(&values);
            prop_assert!((a.mean - batch_mean).abs() < 1e-9);
        }
    }
}
