//! The long-running query service over one frozen simulated world.
//!
//! [`Service::build`] pays the simulation cost exactly once, then the
//! world — trace, configuration, [`SimOutput`] — is immutable for the
//! service's lifetime. Every response is a pure render of that frozen
//! state, so a response's bytes depend only on `(scenario, seed,
//! query)`: cache state, request interleaving, and the executor's
//! thread budget can change *when* a response is ready, never *what* it
//! says. That is the whole determinism contract, inherited rather than
//! re-proved.
//!
//! Requests flow through two layers from [`crate::Query`] to bytes:
//!
//! - a [`sc_par::MemoCache`] keyed on [`QueryKey`] with single-flight
//!   dedup — concurrent identical queries coalesce onto one
//!   computation;
//! - a [`sc_par::Executor`] (work-stealing, fixed thread budget) that
//!   runs [`Service::submit`] requests; [`Pending::wait`] joins one.
//!
//! Failures are served in-band: a query whose computation cannot
//! proceed (e.g. a figure over an empty population) returns a
//! deterministic `ERROR …` body rather than an `Err`, so error
//! responses memoize and coalesce exactly like successes.

use crate::query::{Query, RelQuery};
use sc_cluster::{FailureModel, SimConfig, SimOutput, Simulation};
use sc_core::pipeline::DatasetReport;
use sc_core::{corrupt_and_ingest, QueryKey, ReliabilityConfig};
use sc_obs::stagelog::StageSpan;
use sc_obs::{Obs, SharedCounter, StageLog};
use sc_par::{CacheOutcome, CacheStats, Executor, MemoCache};
use sc_policy::PolicyExperiment;
use sc_scenario::Scenario;
use sc_telemetry::corruption::DataQualityProfile;
use sc_workload::{Trace, WorkloadSpec};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How a [`Service`] builds its world and runs its request plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Workload scale factor (1.0 = the paper's 125-day trace).
    pub scale: f64,
    /// Master RNG seed for trace generation and fault injection.
    pub seed: u64,
    /// Executor worker threads; 0 means [`sc_par::current_threads`].
    pub threads: usize,
    /// Memoize responses. Off serves every request cold — only useful
    /// for baselines and cache-off comparisons.
    pub cache: bool,
    /// Landed-response bound for the memo cache; 0 means unbounded
    /// (the pre-eviction behavior). Overflow evicts by the cache's
    /// deterministic second-chance sweep; an evicted response simply
    /// recomputes to the same bytes on its next request.
    pub cache_capacity: usize,
    /// Minimum user population, whatever the scale. User-level figures
    /// (10–12, 17) degenerate below a few dozen users.
    pub users_floor: usize,
    /// Record a wall-clock stage span per computed response (feeds the
    /// Chrome trace exporter; off keeps the hot path allocation-free).
    pub tracing: bool,
    /// Build the world from a declarative scenario instead of the
    /// flag-default Supercloud pipeline. The scenario's parsed hash
    /// becomes a cache-key dimension, so two services built from
    /// different scenario files never share memoized bytes even when
    /// their names collide.
    pub scenario: Option<Scenario>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            scale: 0.02,
            seed: 42,
            threads: 0,
            cache: true,
            cache_capacity: 256,
            users_floor: 64,
            tracing: false,
            scenario: None,
        }
    }
}

/// Shared per-service request counters, safe to read from any thread
/// while workers serve.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests accepted (blocking and submitted).
    pub queries: SharedCounter,
    /// Responses served from the cache without waiting.
    pub hits: SharedCounter,
    /// Responses this service computed (cold or cache off).
    pub misses: SharedCounter,
    /// Responses that waited on another request's in-flight compute.
    pub coalesced: SharedCounter,
    /// Cached responses evicted by the second-chance sweep (mirrors
    /// the cache's monotone eviction total; 0 when the cache is
    /// unbounded or off).
    pub evictions: SharedCounter,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct Response {
    /// The rendered body. Shared, not copied: a cache hit and the miss
    /// that filled it hold the same allocation.
    pub body: Arc<String>,
    /// How the cache satisfied this request.
    pub outcome: CacheOutcome,
}

/// A submitted request that has not been joined yet.
#[derive(Debug)]
pub struct Pending {
    rx: mpsc::Receiver<(Response, Instant)>,
    submitted: Instant,
}

impl Pending {
    /// Blocks until the worker finishes this request.
    ///
    /// # Panics
    ///
    /// Panics if the computing closure panicked on a worker thread —
    /// the request can never complete, and the panic already poisoned
    /// the cache flight.
    pub fn wait(self) -> Completed {
        let (response, done) = self.rx.recv().expect("request worker dropped its response");
        Completed { response, latency: done.duration_since(self.submitted) }
    }
}

/// A joined request: the response plus its submit-to-finish latency.
#[derive(Debug, Clone)]
pub struct Completed {
    /// The answered query.
    pub response: Response,
    /// Wall-clock time from [`Service::submit`] to worker completion —
    /// queueing included, which is the latency a client observes.
    pub latency: Duration,
}

/// The query service: one frozen world, a memoizing cache, and a
/// work-stealing request executor.
pub struct Service {
    config: ServeConfig,
    scenario: String,
    trace: Trace,
    sim_config: SimConfig,
    out: SimOutput,
    cache: MemoCache<QueryKey, String>,
    exec: Executor,
    metrics: ServeMetrics,
    stage_log: StageLog,
    build_secs: f64,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("scenario", &self.scenario)
            .field("seed", &self.config.seed)
            .field("threads", &self.exec.threads())
            .field("cache", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Runs the simulation once and freezes it behind the query plane.
    ///
    /// This is the only expensive constructor in the crate: everything
    /// after it is a render (or a policy/data-quality replay) of the
    /// state built here.
    pub fn build(config: ServeConfig) -> Service {
        let t0 = Instant::now();
        // A declarative scenario supplies the spec and sim config; the
        // default path stays byte-for-byte what it was before scenarios
        // existed (and keeps its historical cache-key label).
        let (mut spec, sim_config, scenario) = match &config.scenario {
            Some(sc) => (
                sc.scaled_spec(config.scale),
                sc.sim_config(config.scale, config.seed),
                format!("{}#{:016x}:s{}", sc.name, sc.hash(), config.scale),
            ),
            None => {
                let spec = WorkloadSpec::supercloud().scaled(config.scale);
                // Same detailed-subset scaling rule as `repro_figures`, so a
                // served figure matches the batch tool's at equal scale/seed.
                let detailed = ((2_149.0 * config.scale).round() as usize).max(50);
                let sim_config =
                    SimConfig { detailed_series_jobs: detailed, ..SimConfig::default() };
                (spec, sim_config, format!("supercloud:s{}", config.scale))
            }
        };
        spec.users = spec.users.max(config.users_floor);
        let trace = Trace::generate(&spec, config.seed);
        let out = Simulation::new(sim_config.clone()).run(&trace);
        let threads = if config.threads == 0 { sc_par::current_threads() } else { config.threads };
        Service {
            scenario,
            trace,
            sim_config,
            out,
            cache: MemoCache::with_capacity(config.cache_capacity),
            exec: Executor::new(threads),
            metrics: ServeMetrics::default(),
            stage_log: StageLog::new(),
            build_secs: t0.elapsed().as_secs_f64(),
            config,
        }
    }

    /// Scenario descriptor: `supercloud:s<scale>` for the flag-default
    /// world, `<name>#<hash>:s<scale>` for a scenario-built one.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// The seed the world was generated from.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Executor worker-thread count.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Wall-clock cost of [`Service::build`], seconds.
    pub fn build_secs(&self) -> f64 {
        self.build_secs
    }

    /// The frozen simulation output queries are answered from.
    pub fn sim_output(&self) -> &SimOutput {
        &self.out
    }

    /// The cache key addressing `q` on this service's world.
    pub fn key(&self, q: &Query) -> QueryKey {
        QueryKey { scenario: self.scenario.clone(), seed: self.config.seed, query: q.token() }
    }

    /// Request counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Cache counters (hits/misses/coalesced as the cache saw them).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Wall-clock spans recorded so far (empty unless
    /// [`ServeConfig::tracing`] is on); feeds
    /// [`sc_obs::chrome_trace_json`].
    pub fn stage_spans(&self) -> Vec<StageSpan> {
        self.stage_log.spans()
    }

    /// Answers `q` on the calling thread, through the cache.
    pub fn query_blocking(&self, q: &Query) -> Response {
        self.metrics.queries.incr();
        if !self.config.cache {
            let body = Arc::new(self.compute_traced(q));
            self.metrics.misses.incr();
            return Response { body, outcome: CacheOutcome::Miss };
        }
        let (body, outcome) = self.cache.get_or_compute(self.key(q), || self.compute_traced(q));
        match outcome {
            CacheOutcome::Hit => self.metrics.hits.incr(),
            CacheOutcome::Miss => self.metrics.misses.incr(),
            CacheOutcome::Coalesced => self.metrics.coalesced.incr(),
        }
        // Only a miss can have pushed the cache over capacity, so the
        // mirror only needs refreshing here; `record_at_least` keeps
        // concurrent misses from double-counting.
        if outcome == CacheOutcome::Miss {
            self.metrics.evictions.record_at_least(self.cache.stats().evictions);
        }
        Response { body, outcome }
    }

    /// Answers `q` without consulting or filling the cache — the
    /// cold-compute baseline the cache's speedup is measured against.
    /// Does not touch the request counters.
    pub fn query_uncached(&self, q: &Query) -> Arc<String> {
        Arc::new(self.compute_traced(q))
    }

    /// Enqueues `q` on the executor; join with [`Pending::wait`].
    ///
    /// Needs `Arc<Service>` because the worker must hold the service
    /// alive until the response is sent.
    pub fn submit(self: &Arc<Service>, q: Query) -> Pending {
        let (tx, rx) = mpsc::sync_channel(1);
        let svc = Arc::clone(self);
        let submitted = Instant::now();
        self.exec.spawn(move || {
            let response = svc.query_blocking(&q);
            // Stamp completion on the worker so `wait` measures service
            // latency, not how late the client got around to joining.
            let _ = tx.send((response, Instant::now()));
        });
        Pending { rx, submitted }
    }

    fn compute_traced(&self, q: &Query) -> String {
        if self.config.tracing {
            self.stage_log.time(&format!("query:{}", q.token()), || self.compute(q))
        } else {
            self.compute(q)
        }
    }

    fn compute(&self, q: &Query) -> String {
        match q {
            Query::Point(p) => match p.compute(&self.out) {
                Ok(v) => format!("{} = {v:.6}\n", p.name()),
                Err(e) => format!("ERROR point:{}: {e}\n", p.name()),
            },
            Query::Figure(id) => id
                .render_from_sim(&self.out)
                .unwrap_or_else(|e| format!("ERROR fig:{}: {e}\n", id.name())),
            Query::PolicyAb(spec) => {
                // The arms re-simulate the frozen trace; the detailed
                // telemetry subset only feeds figures 6/7, so the A/B
                // replay skips it (same shortcut as the batch tool).
                let base = SimConfig { detailed_series_jobs: 0, ..self.sim_config.clone() };
                PolicyExperiment::new(base, *spec).run(&self.trace).fig.render()
            }
            Query::DataQuality(profile) => self
                .compute_data_quality(*profile)
                .unwrap_or_else(|e| format!("ERROR dq:{}: {e}\n", profile.label())),
            Query::Reliability(r) => self.compute_reliability(*r),
        }
    }

    /// Answers one `rel:*` query: replay the frozen trace under the
    /// scenario's failure model (or a stressed Supercloud default when
    /// the world has none) and render the requested figure. Like the
    /// policy arms, the replay skips the detailed telemetry subset and
    /// relies on the memo cache to amortize repeats.
    fn compute_reliability(&self, r: RelQuery) -> String {
        let base = SimConfig { detailed_series_jobs: 0, ..self.sim_config.clone() };
        let model = self
            .config
            .scenario
            .as_ref()
            .and_then(|sc| sc.failure_model(self.config.seed))
            .unwrap_or_else(|| FailureModel::supercloud(self.config.seed).scaled_mtbf(0.05));
        let cfg = match &self.config.scenario {
            Some(sc) => sc.reliability_config(),
            // Flag-default world: a small grid keeps cold latency in
            // policy-arm territory (each point is one event-loop run).
            None => ReliabilityConfig {
                mtbf_factors: vec![1.0, 0.2],
                sweep_points: 3,
                sweep_span: 2.0,
                growth_factors: Vec::new(),
                write_secs: 30.0,
            },
        };
        match r {
            RelQuery::Summary => {
                sc_core::reliability::reliability_size_fig(&self.trace, &base, &model).render()
            }
            RelQuery::Frontier => sc_core::reliability::goodput_frontier(
                &self.trace,
                &base,
                &model,
                &cfg.mtbf_factors,
            )
            .render(),
            RelQuery::Sweep => {
                sc_core::reliability::checkpoint_sweep(&self.trace, &base, &model, &cfg).render()
            }
        }
    }

    fn compute_data_quality(&self, profile: DataQualityProfile) -> Result<String, String> {
        let clean =
            DatasetReport::try_from_dataset(&self.out.dataset).map_err(|e| e.to_string())?;
        let (ingested, injected) =
            corrupt_and_ingest(&self.out.dataset, profile, self.config.seed, &Obs::off())
                .map_err(|e| e.to_string())?;
        let recovered =
            DatasetReport::try_from_dataset(&ingested.dataset).map_err(|e| e.to_string())?;
        let fig = sc_core::DataQualityFig::compute(
            profile.label(),
            injected,
            ingested.report,
            &clean,
            &recovered,
            None,
        );
        Ok(fig.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::{FigureId, PointStat};
    use std::sync::OnceLock;

    static SVC: OnceLock<Arc<Service>> = OnceLock::new();

    /// One shared 2%-scale service; building it once keeps the suite
    /// fast, and every test below only reads.
    fn svc() -> &'static Arc<Service> {
        SVC.get_or_init(|| {
            Arc::new(Service::build(ServeConfig {
                seed: 20_220_701,
                threads: 2,
                ..ServeConfig::default()
            }))
        })
    }

    #[test]
    fn point_query_serves_and_then_hits() {
        let s = svc();
        let q = Query::Point(PointStat::MedianRunMin);
        let first = s.query_blocking(&q);
        let again = s.query_blocking(&q);
        assert!(first.body.starts_with("median_run_min = "), "{}", first.body);
        assert_eq!(first.body, again.body);
        assert_eq!(again.outcome, CacheOutcome::Hit);
    }

    #[test]
    fn figure_query_matches_the_standalone_render() {
        let s = svc();
        let served = s.query_blocking(&Query::Figure(FigureId::Fig3));
        let direct = FigureId::Fig3.render_from_sim(s.sim_output()).expect("fig3");
        assert_eq!(*served.body, direct);
        assert!(!served.body.contains("ERROR"), "{}", served.body);
    }

    #[test]
    fn uncached_body_is_byte_identical_to_cached() {
        let s = svc();
        for q in [Query::Point(PointStat::MeanSmUtil), Query::Figure(FigureId::Fig4)] {
            let cold = s.query_uncached(&q);
            let cached = s.query_blocking(&q);
            assert_eq!(cold, cached.body, "{}", q.token());
        }
    }

    #[test]
    fn submitted_request_matches_blocking_bytes() {
        let s = svc();
        let q = Query::Point(PointStat::TotalGpuHours);
        let blocking = s.query_blocking(&q);
        let done = s.submit(q).wait();
        assert_eq!(done.response.body, blocking.body);
        assert!(done.latency >= Duration::ZERO);
    }

    #[test]
    fn concurrent_identical_queries_compute_once() {
        let s = svc();
        let q = Query::Figure(FigureId::Fig15);
        let before = s.cache_stats();
        let pending: Vec<Pending> = (0..8).map(|_| s.submit(q)).collect();
        let bodies: Vec<Arc<String>> =
            pending.into_iter().map(|p| p.wait().response.body).collect();
        let delta = s.cache_stats().since(&before);
        assert_eq!(delta.misses, 1, "{delta:?}");
        assert_eq!(delta.hits + delta.coalesced, 7, "{delta:?}");
        for b in &bodies {
            assert_eq!(b, &bodies[0]);
        }
    }

    #[test]
    fn error_responses_are_in_band_and_cached() {
        // A fresh tiny world with no users floor and almost no jobs:
        // whether a user figure renders or degenerates to an ERROR
        // body, the response must cache and repeat byte-identically.
        let tiny = Service::build(ServeConfig {
            scale: 0.0001,
            users_floor: 1,
            threads: 1,
            ..ServeConfig::default()
        });
        let q = Query::Figure(FigureId::Fig10);
        let first = tiny.query_blocking(&q);
        let again = tiny.query_blocking(&q);
        assert_eq!(first.body, again.body);
        assert_eq!(again.outcome, CacheOutcome::Hit);
    }

    #[test]
    fn bounded_cache_evicts_and_recomputes_identical_bytes() {
        let s = Service::build(ServeConfig {
            scale: 0.0001,
            users_floor: 1,
            threads: 1,
            cache_capacity: 16,
            ..ServeConfig::default()
        });
        let surface: Vec<Query> =
            Query::point_queries().into_iter().chain(Query::figure_queries()).collect();
        assert!(surface.len() > 16, "need more distinct queries than cache slots");
        let first: Vec<Arc<String>> = surface.iter().map(|q| s.query_blocking(q).body).collect();
        let stats = s.cache_stats();
        assert!(stats.evictions > 0, "an overfull cache must evict: {stats:?}");
        assert_eq!(s.metrics().evictions.get(), stats.evictions, "metrics mirror the cache");
        // Second pass: hits and post-eviction recomputes alike must
        // reproduce the first pass byte-for-byte.
        for (q, body) in surface.iter().zip(&first) {
            assert_eq!(&s.query_blocking(q).body, body, "{}", q.token());
        }
    }

    #[test]
    fn cache_off_always_misses() {
        let s = Service::build(ServeConfig {
            scale: 0.0001,
            users_floor: 1,
            threads: 1,
            cache: false,
            ..ServeConfig::default()
        });
        let q = Query::Point(PointStat::JobsAnalyzed);
        assert_eq!(s.query_blocking(&q).outcome, CacheOutcome::Miss);
        assert_eq!(s.query_blocking(&q).outcome, CacheOutcome::Miss);
        assert_eq!(s.metrics().misses.get(), 2);
    }

    #[test]
    fn reliability_queries_serve_hit_and_match_cold_bytes() {
        let s = svc();
        for q in Query::reliability_queries() {
            let first = s.query_blocking(&q);
            assert!(!first.body.is_empty(), "{}", q.token());
            assert!(!first.body.contains("ERROR"), "{}: {}", q.token(), first.body);
            let again = s.query_blocking(&q);
            assert_eq!(again.outcome, CacheOutcome::Hit, "{}", q.token());
            assert_eq!(first.body, again.body, "{}", q.token());
            // The memoized bytes equal a cold recompute: the cache can
            // only change latency, never content.
            assert_eq!(s.query_uncached(&q), first.body, "{}", q.token());
        }
    }

    #[test]
    fn reliability_summary_respects_the_scenario_failure_model() {
        // A scenario with a stress failure profile must answer
        // rel:summary from its own model, not the flag-default one.
        let sc = Scenario::parse(
            "[scenario]\nname = \"rel\"\n[failures]\nprofile = \"stress\"\n\
             [reliability]\nenabled = true\nsweep_points = 2\nmtbf_factors = [1.0]\n",
        )
        .expect("valid scenario");
        let s = Service::build(ServeConfig {
            scale: 0.002,
            users_floor: 8,
            threads: 1,
            scenario: Some(sc),
            ..ServeConfig::default()
        });
        let body = s.query_blocking(&Query::Reliability(RelQuery::Summary)).body;
        assert!(body.contains("Reliability vs job size"), "{body}");
    }

    #[test]
    fn supercloud_scenario_serves_default_bytes_under_a_hashed_key() {
        // The supercloud preset IS the flag default, so response bodies
        // must match byte-for-byte; only the cache-key scenario label
        // differs (scenario worlds are hash-addressed, the default
        // world keeps its historical label).
        let base =
            ServeConfig { scale: 0.0001, users_floor: 1, threads: 1, ..ServeConfig::default() };
        let default_svc = Service::build(base.clone());
        let sc = Scenario::preset("supercloud").expect("preset");
        let hash = sc.hash();
        let scen_svc = Service::build(ServeConfig { scenario: Some(sc), ..base });
        assert_eq!(default_svc.scenario(), "supercloud:s0.0001");
        assert_eq!(scen_svc.scenario(), format!("supercloud#{hash:016x}:s0.0001"));
        for q in [Query::Point(PointStat::TotalGpuHours), Query::Figure(FigureId::Fig3)] {
            assert_eq!(
                default_svc.query_blocking(&q).body,
                scen_svc.query_blocking(&q).body,
                "{}",
                q.token()
            );
            assert_ne!(default_svc.key(&q), scen_svc.key(&q), "{}", q.token());
        }
    }

    #[test]
    fn different_scenarios_never_share_cache_keys() {
        let base =
            ServeConfig { scale: 0.0001, users_floor: 1, threads: 1, ..ServeConfig::default() };
        let philly = Service::build(ServeConfig {
            scenario: Some(Scenario::preset("philly").expect("preset")),
            ..base.clone()
        });
        let nersc = Service::build(ServeConfig {
            scenario: Some(Scenario::preset("nersc").expect("preset")),
            ..base
        });
        let q = Query::Point(PointStat::JobsAnalyzed);
        assert_ne!(philly.key(&q), nersc.key(&q));
        assert!(philly.scenario().starts_with("philly#"), "{}", philly.scenario());
        assert!(nersc.scenario().starts_with("nersc#"), "{}", nersc.scenario());
    }

    #[test]
    fn tracing_records_one_span_per_computed_response() {
        let s = Service::build(ServeConfig {
            scale: 0.0001,
            users_floor: 1,
            threads: 1,
            tracing: true,
            ..ServeConfig::default()
        });
        let q = Query::Point(PointStat::JobsAnalyzed);
        s.query_blocking(&q);
        s.query_blocking(&q); // hit: no new span
        let spans = s.stage_spans();
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].name, "query:point:jobs_analyzed");
    }
}
