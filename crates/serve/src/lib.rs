//! A concurrent what-if query service over the frozen simulation.
//!
//! The batch tool (`repro_figures`) answers every question by re-running
//! the world. This crate is the serving half the paper's measurement
//! story implies: a cluster characterization is most useful as an
//! *interactive* artifact — "what is the median queue wait", "show me
//! Figure 9", "what would a 150 W power cap have cost" — and those
//! queries arrive concurrently, repeat heavily, and must never disagree
//! with the batch pipeline.
//!
//! Design:
//!
//! - **Simulate once, serve forever.** [`Service::build`] runs the
//!   seeded simulation once; every response is a pure render of that
//!   frozen state ([`service`]).
//! - **Memoized, single-flight.** Responses cache under a
//!   [`sc_core::QueryKey`] `(scenario, seed, query)`; concurrent
//!   identical queries coalesce onto one computation
//!   ([`sc_par::MemoCache`]).
//! - **Deterministic bytes.** Thread budget, cache temperature, and
//!   request interleaving affect latency only. [`Digest`] folds
//!   responses in request order so CI can compare whole runs by one
//!   hex string ([`digest`]).
//! - **Typed, replayable queries.** Every request is a [`Query`] with a
//!   canonical token that round-trips through [`Query::parse`]
//!   ([`query`]).
//!
//! # Example
//!
//! ```no_run
//! use sc_serve::{Query, ServeConfig, Service};
//! use std::sync::Arc;
//!
//! let svc = Arc::new(Service::build(ServeConfig::default()));
//! let q = Query::parse("point:median_run_min").expect("valid token");
//! let done = svc.submit(q).wait(); // via the work-stealing executor
//! print!("{}", done.response.body);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod digest;
pub mod query;
pub mod service;

pub use digest::{fnv1a64, Digest};
pub use query::{Query, RelQuery};
pub use service::{Completed, Pending, Response, ServeConfig, ServeMetrics, Service};
