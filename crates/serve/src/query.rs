//! The typed query surface and its canonical string tokens.
//!
//! Every request the service answers is one [`Query`]. Each query has a
//! stable textual token (`point:median_run_min`, `fig:fig3`,
//! `ab:powercap:150`, `dq:lossy`) that round-trips through
//! [`Query::parse`], so query traces are replayable from text and the
//! token can serve directly as the `query` field of a
//! [`sc_core::QueryKey`].

use sc_core::{FigureId, PointStat};
use sc_policy::PolicySpec;
use sc_telemetry::corruption::DataQualityProfile;

/// One reliability sub-query (`rel:<name>`): each replays the frozen
/// trace through the failure-injected event loop and renders one
/// figure of the reliability family. Heavy like the policy arms, so
/// the memo cache carries repeat requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RelQuery {
    /// Per-size-class ETTF/ETTR/failure-rate table (`rel:summary`).
    Summary,
    /// Goodput frontier across MTBF settings (`rel:frontier`).
    Frontier,
    /// Young/Daly checkpoint-interval sweep (`rel:sweep`).
    Sweep,
}

impl RelQuery {
    /// Every reliability sub-query, in token order.
    pub const ALL: [RelQuery; 3] = [RelQuery::Summary, RelQuery::Frontier, RelQuery::Sweep];

    /// The token suffix naming this sub-query.
    pub fn name(&self) -> &'static str {
        match self {
            RelQuery::Summary => "summary",
            RelQuery::Frontier => "frontier",
            RelQuery::Sweep => "sweep",
        }
    }

    /// Parses a [`RelQuery::name`] suffix.
    pub fn parse(s: &str) -> Option<RelQuery> {
        RelQuery::ALL.iter().copied().find(|r| r.name() == s)
    }
}

/// One question the service can answer about its frozen world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// A headline scalar (`point:<stat>`), cheap enough to flood.
    Point(PointStat),
    /// One rendered report figure (`fig:<name>`).
    Figure(FigureId),
    /// A policy A/B what-if (`ab:<policy>`): replay the frozen trace
    /// through both arms and render the delta figure.
    PolicyAb(PolicySpec),
    /// A data-quality what-if (`dq:<profile>`): corrupt the frozen
    /// dataset, re-ingest, and render the recovery report.
    DataQuality(DataQualityProfile),
    /// A reliability what-if (`rel:<name>`): replay the frozen trace
    /// under the failure model and render one reliability figure.
    Reliability(RelQuery),
}

impl Query {
    /// The canonical token naming this query — also its cache address.
    pub fn token(&self) -> String {
        match self {
            Query::Point(p) => format!("point:{}", p.name()),
            Query::Figure(id) => format!("fig:{}", id.name()),
            Query::PolicyAb(spec) => format!("ab:{}", spec.label()),
            Query::DataQuality(profile) => format!("dq:{}", profile.label()),
            Query::Reliability(r) => format!("rel:{}", r.name()),
        }
    }

    /// Parses a [`Query::token`] string.
    ///
    /// # Errors
    ///
    /// Returns a message naming the expected grammar when the token has
    /// an unknown prefix or an unknown name under a valid prefix.
    pub fn parse(s: &str) -> Result<Query, String> {
        if let Some(name) = s.strip_prefix("point:") {
            return PointStat::parse(name)
                .map(Query::Point)
                .ok_or_else(|| format!("unknown point statistic {name:?}"));
        }
        if let Some(name) = s.strip_prefix("fig:") {
            return FigureId::parse(name)
                .map(Query::Figure)
                .ok_or_else(|| format!("unknown figure {name:?}"));
        }
        if let Some(name) = s.strip_prefix("ab:") {
            return PolicySpec::parse(name).map(Query::PolicyAb);
        }
        if let Some(name) = s.strip_prefix("dq:") {
            return DataQualityProfile::parse(name)
                .map(Query::DataQuality)
                .ok_or_else(|| format!("unknown data-quality profile {name:?}"));
        }
        if let Some(name) = s.strip_prefix("rel:") {
            return RelQuery::parse(name)
                .map(Query::Reliability)
                .ok_or_else(|| format!("unknown reliability query {name:?}"));
        }
        Err(format!(
            "unknown query {s:?}: expected point:<stat> | fig:<figure> | ab:<policy> | \
             dq:<profile> | rel:<summary|frontier|sweep>"
        ))
    }

    /// Every point-statistic query, in token order.
    pub fn point_queries() -> Vec<Query> {
        PointStat::ALL.iter().copied().map(Query::Point).collect()
    }

    /// Every figure query, in report order.
    pub fn figure_queries() -> Vec<Query> {
        FigureId::ALL.iter().copied().map(Query::Figure).collect()
    }

    /// The heavy what-if queries: the standard policy arms plus every
    /// non-trivial data-quality profile. These re-run simulation or
    /// ingest work per cold request, so they dominate cold latency.
    pub fn what_if_queries() -> Vec<Query> {
        let mut qs: Vec<Query> =
            PolicySpec::STANDARD_ARMS.iter().copied().map(Query::PolicyAb).collect();
        qs.extend(
            [
                DataQualityProfile::Supercloud,
                DataQualityProfile::Lossy,
                DataQualityProfile::Hostile,
            ]
            .map(Query::DataQuality),
        );
        qs
    }

    /// Every reliability query, in token order. Kept out of
    /// [`Query::standard_queries`] so the CI serve-leg digest (a fold
    /// over the standard surface) stays comparable across releases.
    pub fn reliability_queries() -> Vec<Query> {
        RelQuery::ALL.iter().copied().map(Query::Reliability).collect()
    }

    /// The full standard query surface: points, figures, then what-ifs.
    pub fn standard_queries() -> Vec<Query> {
        let mut qs = Query::point_queries();
        qs.extend(Query::figure_queries());
        qs.extend(Query::what_if_queries());
        qs
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_query_token_round_trips() {
        for q in Query::standard_queries().into_iter().chain(Query::reliability_queries()) {
            let token = q.token();
            assert_eq!(Query::parse(&token), Ok(q), "{token}");
        }
    }

    #[test]
    fn parse_rejects_unknown_tokens() {
        assert!(Query::parse("fig:fig99").is_err());
        assert!(Query::parse("point:vibes").is_err());
        assert!(Query::parse("ab:turbo").is_err());
        assert!(Query::parse("dq:pristine").is_err());
        assert!(Query::parse("rel:ettf").is_err());
        assert!(Query::parse("median_run_min").is_err());
    }

    #[test]
    fn standard_surface_has_the_expected_shape() {
        assert_eq!(Query::point_queries().len(), PointStat::ALL.len());
        assert_eq!(Query::figure_queries().len(), FigureId::ALL.len());
        // 3 policy arms + 3 corruption profiles.
        assert_eq!(Query::what_if_queries().len(), 6);
        assert_eq!(Query::standard_queries().len(), PointStat::ALL.len() + FigureId::ALL.len() + 6);
    }
}
