//! Order-sensitive response digests for determinism checks.
//!
//! The CI serve leg proves "byte-identical responses at any thread
//! budget" without shipping megabytes of response bodies between jobs:
//! each run folds every response, in request order, into one 64-bit
//! FNV-1a digest, and the runs' hex digests are compared. FNV-1a is not
//! cryptographic — it is here to make *accidental* divergence loud, and
//! its tiny state keeps the bench hot path free of hashing noise.

/// Incremental 64-bit FNV-1a over a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

impl Digest {
    /// A digest over the empty stream.
    pub fn new() -> Digest {
        Digest { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the digest. Order matters: `update(a);
    /// update(b)` equals `update(ab)` but not `update(b); update(a)`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The current digest as 16 lowercase hex digits.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Reference values for the canonical 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot_and_order_matters() {
        let mut d = Digest::new();
        d.update(b"foo");
        d.update(b"bar");
        assert_eq!(d.finish(), fnv1a64(b"foobar"));
        assert_eq!(d.hex(), format!("{:016x}", fnv1a64(b"foobar")));
        assert_ne!(fnv1a64(b"barfoo"), fnv1a64(b"foobar"));
    }
}
