//! Sharded memoization cache with single-flight computation and
//! bounded second-chance eviction.
//!
//! [`MemoCache`] backs the query service: results are cached under a
//! hashable key, and concurrent requests for the *same* key coalesce
//! onto one computation — the first caller computes while the rest
//! block on the in-flight slot and receive the shared result. Values
//! are returned as `Arc<V>`, so a hit never clones the payload.
//!
//! Because cached values are pure functions of their key (the service
//! layer enforces that), coalescing, caching, and eviction can never
//! change a response: a cold miss, a warm hit, a coalesced wait, and a
//! recompute after eviction all yield the same bytes.
//!
//! # Eviction
//!
//! [`MemoCache::with_capacity`] bounds the number of landed entries
//! with the classic *second-chance* (clock) policy, per shard: each
//! landed key sits in a circular ring with a reference bit that a hit
//! sets; when a shard is full, a clock hand sweeps the ring, clearing
//! set bits (the second chance) and evicting the first key whose bit
//! is already clear. The sweep is a pure function of the shard's
//! request history — no clocks, no randomness — so a single-threaded
//! request sequence always evicts the same keys. In-flight
//! computations are never evicted; only landed values are.
//!
//! [`MemoCache::new`] keeps the historical unbounded behavior
//! (capacity 0 = never evict).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`MemoCache::get_or_compute`] call was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached; no computation, no waiting.
    Hit,
    /// This call computed the value (the single flight).
    Miss,
    /// Another call was already computing the value; this one waited
    /// for it and shares the result.
    Coalesced,
}

/// Monotone counters describing cache traffic. Snapshots subtract, so
/// a load generator can report per-phase deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Calls served from the cache without waiting.
    pub hits: u64,
    /// Calls that computed the value.
    pub misses: u64,
    /// Calls that waited on another call's in-flight computation.
    pub coalesced: u64,
    /// Landed entries evicted by the clock sweep (always 0 for an
    /// unbounded cache).
    pub evictions: u64,
}

impl CacheStats {
    /// Total calls observed (evictions are not calls).
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// The fraction of calls served without a fresh computation
    /// (hits + coalesced over total); 0 when no calls were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }

    /// Counter-wise difference (`self - earlier`), for per-phase
    /// accounting over a shared cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

/// State of one in-flight computation.
enum FlightState<V> {
    /// The computing caller has not finished yet.
    Pending,
    /// The computation finished; waiters take the shared value.
    Done(Arc<V>),
    /// The computing caller panicked; waiters must retry from scratch.
    Poisoned,
}

/// One in-flight computation that waiters block on.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Flight<V> {
        Flight { state: Mutex::new(FlightState::Pending), cv: Condvar::new() }
    }

    /// Publishes the result (or the poison marker) and wakes waiters.
    fn finish(&self, value: Option<Arc<V>>) {
        let mut state = self.state.lock().expect("flight lock poisoned");
        *state = match value {
            Some(v) => FlightState::Done(v),
            None => FlightState::Poisoned,
        };
        self.cv.notify_all();
    }

    /// Blocks until the flight lands; `None` means it was poisoned and
    /// the caller must retry.
    fn wait(&self) -> Option<Arc<V>> {
        let mut state = self.state.lock().expect("flight lock poisoned");
        loop {
            match &*state {
                FlightState::Pending => state = self.cv.wait(state).expect("flight lock poisoned"),
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Poisoned => return None,
            }
        }
    }
}

/// A cache slot: either a landed value (with its clock-ring slot) or
/// an in-flight computation (never in the ring, never evicted).
enum Entry<V> {
    InFlight(Arc<Flight<V>>),
    Ready(Arc<V>, usize),
}

/// One independently locked shard: the key map plus the clock ring
/// over its landed keys.
///
/// Invariant: `ring[slot]` is a `Ready` key whose entry stores `slot`
/// back, for every slot; in-flight keys live only in `map`.
struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    /// Landed keys, in landing order until the shard fills, then
    /// overwritten in place by the clock sweep.
    ring: Vec<K>,
    /// Reference bits: set on hit, cleared by the sweeping hand.
    refbit: Vec<bool>,
    /// The clock hand: next slot the sweep examines.
    hand: usize,
}

impl<K: Hash + Eq + Clone, V> Shard<K, V> {
    fn new() -> Shard<K, V> {
        Shard { map: HashMap::new(), ring: Vec::new(), refbit: Vec::new(), hand: 0 }
    }

    /// Lands `value` under `key`, evicting one landed entry by the
    /// clock sweep if the shard is at `cap` (0 = unbounded). Returns
    /// how many entries were evicted (0 or 1).
    fn insert_ready(&mut self, key: K, value: Arc<V>, cap: usize) -> u64 {
        let (slot, evicted) = if cap > 0 && self.ring.len() >= cap {
            // Sweep: clear set bits until a clear one is found. The
            // second pass must find one, so this terminates.
            loop {
                if self.hand >= self.ring.len() {
                    self.hand = 0;
                }
                if self.refbit[self.hand] {
                    self.refbit[self.hand] = false;
                    self.hand += 1;
                } else {
                    break;
                }
            }
            let slot = self.hand;
            self.map.remove(&self.ring[slot]);
            self.ring[slot] = key.clone();
            self.refbit[slot] = false;
            self.hand = slot + 1;
            (slot, 1)
        } else {
            self.ring.push(key.clone());
            self.refbit.push(false);
            (self.ring.len() - 1, 0)
        };
        self.map.insert(key, Entry::Ready(value, slot));
        evicted
    }

    /// Drops `key` only if it is still in flight (the abort path when
    /// the computing closure unwinds).
    fn abort_flight(&mut self, key: &K) {
        if matches!(self.map.get(key), Some(Entry::InFlight(_))) {
            self.map.remove(key);
        }
    }
}

/// Removes the in-flight entry and poisons its flight if the computing
/// closure unwinds, so waiters retry instead of blocking forever.
struct FlightGuard<'a, K: Hash + Eq + Clone, V> {
    cache: &'a MemoCache<K, V>,
    key: &'a K,
    flight: &'a Arc<Flight<V>>,
    landed: bool,
}

impl<K: Hash + Eq + Clone, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.landed {
            return;
        }
        let mut shard = self.cache.shard(self.key).lock().expect("cache shard poisoned");
        shard.abort_flight(self.key);
        drop(shard);
        self.flight.finish(None);
    }
}

/// Sharded concurrent memoization cache with single-flight semantics
/// and optional second-chance eviction.
///
/// Keys hash to one of [`MemoCache::SHARDS`] independently locked maps,
/// so unrelated keys never contend. See the module docs for the
/// coalescing and eviction contracts.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Landed entries allowed per shard; 0 means unbounded.
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        MemoCache::new()
    }
}

impl<K, V> std::fmt::Debug for MemoCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        };
        f.debug_struct("MemoCache")
            .field("stats", &stats)
            .field("shard_cap", &self.shard_cap)
            .finish_non_exhaustive()
    }
}

impl<K: Hash + Eq + Clone, V> MemoCache<K, V> {
    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// An empty unbounded cache (never evicts).
    pub fn new() -> MemoCache<K, V> {
        MemoCache::with_capacity(0)
    }

    /// An empty cache bounded at roughly `capacity` landed entries;
    /// 0 means unbounded. The bound is enforced per shard at
    /// `ceil(capacity / SHARDS)` entries, so the effective total
    /// rounds up to the next multiple of [`MemoCache::SHARDS`] and a
    /// pathologically skewed key distribution evicts earlier than a
    /// uniform one.
    pub fn with_capacity(capacity: usize) -> MemoCache<K, V> {
        let shard_cap = if capacity == 0 { 0 } else { capacity.div_ceil(Self::SHARDS) };
        MemoCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The effective landed-entry bound (`shard cap × SHARDS`); 0
    /// means unbounded.
    pub fn capacity(&self) -> usize {
        self.shard_cap * Self::SHARDS
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, computing it with `f` on a
    /// miss. Concurrent calls for the same key coalesce: exactly one
    /// executes `f`, the rest wait and share its result. The returned
    /// [`CacheOutcome`] says which path this call took.
    ///
    /// # Panics
    ///
    /// If `f` panics, the panic propagates to the computing caller;
    /// waiters observe the poisoned flight and retry (one of them
    /// becomes the new computer).
    pub fn get_or_compute<F>(&self, key: K, f: F) -> (Arc<V>, CacheOutcome)
    where
        F: FnOnce() -> V,
    {
        let mut f = Some(f);
        loop {
            let flight = {
                let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
                match shard.map.get(&key) {
                    Some(Entry::Ready(v, slot)) => {
                        let (v, slot) = (v.clone(), *slot);
                        shard.refbit[slot] = true;
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (v, CacheOutcome::Hit);
                    }
                    Some(Entry::InFlight(flight)) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        flight.clone()
                    }
                    None => {
                        let flight = Arc::new(Flight::new());
                        shard.map.insert(key.clone(), Entry::InFlight(flight.clone()));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        drop(shard);

                        let mut guard =
                            FlightGuard { cache: self, key: &key, flight: &flight, landed: false };
                        let value = Arc::new((f.take().expect("closure available on miss"))());
                        guard.landed = true;
                        drop(guard);

                        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
                        let evicted =
                            shard.insert_ready(key.clone(), value.clone(), self.shard_cap);
                        drop(shard);
                        if evicted > 0 {
                            self.evictions.fetch_add(evicted, Ordering::Relaxed);
                        }
                        flight.finish(Some(value.clone()));
                        return (value, CacheOutcome::Miss);
                    }
                }
            };
            if let Some(value) = flight.wait() {
                return (value, CacheOutcome::Coalesced);
            }
            // The flight was poisoned (the computer panicked). If this
            // call still owns its closure it can retry and compute;
            // otherwise keep looping until some caller lands the value.
        }
    }

    /// The cached value for `key`, if it has landed. Never waits on an
    /// in-flight computation, does not count as a hit or miss, and
    /// does not touch the reference bit.
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.get(key) {
            Some(Entry::Ready(v, _)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Number of landed entries (in-flight computations excluded).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").ring.len()).sum()
    }

    /// Whether no entry has landed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn hit_after_miss_returns_shared_value() {
        let cache: MemoCache<u32, String> = MemoCache::new();
        let (a, oa) = cache.get_or_compute(1, || "one".to_string());
        let (b, ob) = cache.get_or_compute(1, || unreachable!("must be cached"));
        assert_eq!(oa, CacheOutcome::Miss);
        assert_eq!(ob, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        for k in 0..100 {
            let (v, o) = cache.get_or_compute(k, || k * 2);
            assert_eq!(*v, k * 2);
            assert_eq!(o, CacheOutcome::Miss);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().misses, 100);
        assert_eq!(cache.stats().evictions, 0, "unbounded caches never evict");
    }

    #[test]
    fn concurrent_identical_keys_compute_exactly_once() {
        let cache: MemoCache<u32, u64> = MemoCache::new();
        let computes = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let (v, _) = cache.get_or_compute(7, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the in-flight window so the others
                        // genuinely coalesce rather than all hitting.
                        thread::sleep(std::time::Duration::from_millis(20));
                        42
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single flight computes once");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn poisoned_flight_lets_a_waiter_retry() {
        let cache: Arc<MemoCache<u32, u32>> = Arc::new(MemoCache::new());
        let attempts = Arc::new(AtomicUsize::new(0));

        // First caller panics mid-flight; a concurrent caller must
        // recover and land the value.
        let c = cache.clone();
        let a = attempts.clone();
        let panicker = thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.get_or_compute(3, || {
                    a.fetch_add(1, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(20));
                    panic!("flight dies");
                })
            }));
        });
        // Give the panicker time to claim the flight, then pile on.
        thread::sleep(std::time::Duration::from_millis(5));
        let (v, _) = cache.get_or_compute(3, || {
            attempts.fetch_add(1, Ordering::SeqCst);
            9
        });
        panicker.join().expect("panicker thread itself exits cleanly");
        assert_eq!(*v, 9);
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "poisoned flight retried once");
        assert_eq!(*cache.peek(&3).expect("value landed"), 9);
    }

    #[test]
    fn stats_deltas_subtract() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        cache.get_or_compute(1, || 1);
        let before = cache.stats();
        cache.get_or_compute(1, || 1);
        cache.get_or_compute(2, || 2);
        let delta = cache.stats().since(&before);
        assert_eq!(delta, CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
        assert!((delta.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_rounds_up_to_shard_multiples() {
        let unbounded: MemoCache<u32, u32> = MemoCache::new();
        assert_eq!(unbounded.capacity(), 0);
        let tiny: MemoCache<u32, u32> = MemoCache::with_capacity(1);
        assert_eq!(tiny.capacity(), MemoCache::<u32, u32>::SHARDS);
        let even: MemoCache<u32, u32> = MemoCache::with_capacity(256);
        assert_eq!(even.capacity(), 256);
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity_and_counts_evictions() {
        let cache: MemoCache<u32, u32> = MemoCache::with_capacity(32);
        for k in 0..500 {
            cache.get_or_compute(k, || k);
        }
        assert!(cache.len() <= 32, "len {} exceeds capacity", cache.len());
        let stats = cache.stats();
        assert_eq!(stats.misses, 500);
        assert_eq!(stats.evictions, 500 - cache.len() as u64);
        // Evicted keys recompute; the cache stays bounded.
        let before = cache.stats();
        for k in 0..500 {
            cache.get_or_compute(k, || k);
        }
        let delta = cache.stats().since(&before);
        assert!(delta.misses > 0, "a 32-entry cache cannot hold 500 keys");
        assert!(cache.len() <= 32);
    }

    #[test]
    fn eviction_is_deterministic_across_runs() {
        let survivors = || {
            let cache: MemoCache<u32, u32> = MemoCache::with_capacity(16);
            for k in 0..200 {
                cache.get_or_compute(k, || k);
                // Keep key 0 hot so its reference bit shields it.
                cache.get_or_compute(0, || 0);
            }
            let mut alive: Vec<u32> = (0..200).filter(|k| cache.peek(k).is_some()).collect();
            alive.sort_unstable();
            (alive, cache.stats())
        };
        assert_eq!(survivors(), survivors(), "same request sequence, same evictions");
    }

    #[test]
    fn clock_sweep_gives_referenced_entries_a_second_chance() {
        // Drive one Shard directly: MemoCache's key→shard hash is
        // opaque, but the sweep itself must be exactly second-chance.
        let mut shard: Shard<&str, u32> = Shard::new();
        assert_eq!(shard.insert_ready("a", Arc::new(1), 3), 0);
        assert_eq!(shard.insert_ready("b", Arc::new(2), 3), 0);
        assert_eq!(shard.insert_ready("c", Arc::new(3), 3), 0);
        // A hit on "a" sets its reference bit (slot 0).
        shard.refbit[0] = true;

        // Full shard: the hand clears "a"'s bit (second chance) and
        // evicts "b", the first unreferenced key.
        assert_eq!(shard.insert_ready("d", Arc::new(4), 3), 1);
        assert!(shard.map.contains_key("a"), "referenced key survives the sweep");
        assert!(!shard.map.contains_key("b"), "unreferenced key is the victim");
        assert!(shard.map.contains_key("c") && shard.map.contains_key("d"));
        assert_eq!(shard.ring, vec!["a", "d", "c"], "victim slot is reused in place");

        // Next insert: hand is at "c" (slot 2), whose bit is clear.
        assert_eq!(shard.insert_ready("e", Arc::new(5), 3), 1);
        assert!(!shard.map.contains_key("c"));
        assert!(shard.map.contains_key("a"), "hand moved past a without evicting it");
        assert_eq!(shard.ring, vec!["a", "d", "e"]);

        // Now every bit is clear and the hand wraps to slot 0: "a"'s
        // second chance is spent.
        assert_eq!(shard.insert_ready("f", Arc::new(6), 3), 1);
        assert!(!shard.map.contains_key("a"));
        assert_eq!(shard.ring, vec!["f", "d", "e"]);
    }

    #[test]
    fn inflight_entries_are_never_evicted() {
        // A cache at capacity with an in-flight computation: landing
        // new values must evict *landed* keys only, and the in-flight
        // key must still land afterwards.
        let cache: Arc<MemoCache<u32, u32>> = Arc::new(MemoCache::with_capacity(16));
        for k in 0..100 {
            cache.get_or_compute(k, || k);
        }
        let gate = Arc::new(std::sync::Barrier::new(2));
        let c = cache.clone();
        let g = gate.clone();
        let slow = thread::spawn(move || {
            c.get_or_compute(1_000, || {
                g.wait(); // in flight while main churns the cache
                thread::sleep(std::time::Duration::from_millis(30));
                7
            })
        });
        gate.wait();
        for k in 100..300 {
            cache.get_or_compute(k, || k);
        }
        let (v, outcome) = slow.join().expect("slow flight joins");
        assert_eq!((*v, outcome), (7, CacheOutcome::Miss));
        assert_eq!(*cache.peek(&1_000).expect("the flight landed despite churn"), 7);
        assert!(cache.len() <= 16 + 1);
    }
}
