//! Sharded memoization cache with single-flight computation.
//!
//! [`MemoCache`] backs the query service: results are cached under a
//! hashable key, and concurrent requests for the *same* key coalesce
//! onto one computation — the first caller computes while the rest
//! block on the in-flight slot and receive the shared result. Values
//! are returned as `Arc<V>`, so a hit never clones the payload.
//!
//! Because cached values are pure functions of their key (the service
//! layer enforces that), coalescing and caching can never change a
//! response: a cold miss, a warm hit, and a coalesced wait all yield
//! the same bytes.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`MemoCache::get_or_compute`] call was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached; no computation, no waiting.
    Hit,
    /// This call computed the value (the single flight).
    Miss,
    /// Another call was already computing the value; this one waited
    /// for it and shares the result.
    Coalesced,
}

/// Monotone counters describing cache traffic. Snapshots subtract, so
/// a load generator can report per-phase deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Calls served from the cache without waiting.
    pub hits: u64,
    /// Calls that computed the value.
    pub misses: u64,
    /// Calls that waited on another call's in-flight computation.
    pub coalesced: u64,
}

impl CacheStats {
    /// Total calls observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// The fraction of calls served without a fresh computation
    /// (hits + coalesced over total); 0 when no calls were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / total as f64
    }

    /// Counter-wise difference (`self - earlier`), for per-phase
    /// accounting over a shared cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            coalesced: self.coalesced - earlier.coalesced,
        }
    }
}

/// State of one in-flight computation.
enum FlightState<V> {
    /// The computing caller has not finished yet.
    Pending,
    /// The computation finished; waiters take the shared value.
    Done(Arc<V>),
    /// The computing caller panicked; waiters must retry from scratch.
    Poisoned,
}

/// One in-flight computation that waiters block on.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Flight<V> {
        Flight { state: Mutex::new(FlightState::Pending), cv: Condvar::new() }
    }

    /// Publishes the result (or the poison marker) and wakes waiters.
    fn finish(&self, value: Option<Arc<V>>) {
        let mut state = self.state.lock().expect("flight lock poisoned");
        *state = match value {
            Some(v) => FlightState::Done(v),
            None => FlightState::Poisoned,
        };
        self.cv.notify_all();
    }

    /// Blocks until the flight lands; `None` means it was poisoned and
    /// the caller must retry.
    fn wait(&self) -> Option<Arc<V>> {
        let mut state = self.state.lock().expect("flight lock poisoned");
        loop {
            match &*state {
                FlightState::Pending => state = self.cv.wait(state).expect("flight lock poisoned"),
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Poisoned => return None,
            }
        }
    }
}

/// A cache slot: either a landed value or an in-flight computation.
enum Entry<V> {
    InFlight(Arc<Flight<V>>),
    Ready(Arc<V>),
}

/// Removes the in-flight entry and poisons its flight if the computing
/// closure unwinds, so waiters retry instead of blocking forever.
struct FlightGuard<'a, K: Hash + Eq + Clone, V> {
    cache: &'a MemoCache<K, V>,
    key: &'a K,
    flight: &'a Arc<Flight<V>>,
    landed: bool,
}

impl<K: Hash + Eq + Clone, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.landed {
            return;
        }
        let mut shard = self.cache.shard(self.key).lock().expect("cache shard poisoned");
        shard.remove(self.key);
        drop(shard);
        self.flight.finish(None);
    }
}

/// Sharded concurrent memoization cache with single-flight semantics.
///
/// Keys hash to one of [`MemoCache::SHARDS`] independently locked maps,
/// so unrelated keys never contend. See the module docs for the
/// coalescing contract.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Entry<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl<K: Hash + Eq + Clone, V> Default for MemoCache<K, V> {
    fn default() -> Self {
        MemoCache::new()
    }
}

impl<K, V> std::fmt::Debug for MemoCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        };
        f.debug_struct("MemoCache").field("stats", &stats).finish_non_exhaustive()
    }
}

impl<K: Hash + Eq + Clone, V> MemoCache<K, V> {
    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// An empty cache.
    pub fn new() -> MemoCache<K, V> {
        MemoCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Entry<V>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Returns the cached value for `key`, computing it with `f` on a
    /// miss. Concurrent calls for the same key coalesce: exactly one
    /// executes `f`, the rest wait and share its result. The returned
    /// [`CacheOutcome`] says which path this call took.
    ///
    /// # Panics
    ///
    /// If `f` panics, the panic propagates to the computing caller;
    /// waiters observe the poisoned flight and retry (one of them
    /// becomes the new computer).
    pub fn get_or_compute<F>(&self, key: K, f: F) -> (Arc<V>, CacheOutcome)
    where
        F: FnOnce() -> V,
    {
        let mut f = Some(f);
        loop {
            let flight = {
                let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
                match shard.get(&key) {
                    Some(Entry::Ready(v)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (v.clone(), CacheOutcome::Hit);
                    }
                    Some(Entry::InFlight(flight)) => {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        flight.clone()
                    }
                    None => {
                        let flight = Arc::new(Flight::new());
                        shard.insert(key.clone(), Entry::InFlight(flight.clone()));
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        drop(shard);

                        let mut guard =
                            FlightGuard { cache: self, key: &key, flight: &flight, landed: false };
                        let value = Arc::new((f.take().expect("closure available on miss"))());
                        guard.landed = true;
                        drop(guard);

                        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
                        shard.insert(key.clone(), Entry::Ready(value.clone()));
                        drop(shard);
                        flight.finish(Some(value.clone()));
                        return (value, CacheOutcome::Miss);
                    }
                }
            };
            if let Some(value) = flight.wait() {
                return (value, CacheOutcome::Coalesced);
            }
            // The flight was poisoned (the computer panicked). If this
            // call still owns its closure it can retry and compute;
            // otherwise keep looping until some caller lands the value.
        }
    }

    /// The cached value for `key`, if it has landed. Never waits on an
    /// in-flight computation and does not count as a hit or miss.
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get(key) {
            Some(Entry::Ready(v)) => Some(v.clone()),
            _ => None,
        }
    }

    /// Number of landed entries (in-flight computations excluded).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .filter(|e| matches!(e, Entry::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether no entry has landed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn hit_after_miss_returns_shared_value() {
        let cache: MemoCache<u32, String> = MemoCache::new();
        let (a, oa) = cache.get_or_compute(1, || "one".to_string());
        let (b, ob) = cache.get_or_compute(1, || unreachable!("must be cached"));
        assert_eq!(oa, CacheOutcome::Miss);
        assert_eq!(ob, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, coalesced: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        for k in 0..100 {
            let (v, o) = cache.get_or_compute(k, || k * 2);
            assert_eq!(*v, k * 2);
            assert_eq!(o, CacheOutcome::Miss);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().misses, 100);
    }

    #[test]
    fn concurrent_identical_keys_compute_exactly_once() {
        let cache: MemoCache<u32, u64> = MemoCache::new();
        let computes = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let (v, _) = cache.get_or_compute(7, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the in-flight window so the others
                        // genuinely coalesce rather than all hitting.
                        thread::sleep(std::time::Duration::from_millis(20));
                        42
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single flight computes once");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn poisoned_flight_lets_a_waiter_retry() {
        let cache: Arc<MemoCache<u32, u32>> = Arc::new(MemoCache::new());
        let attempts = Arc::new(AtomicUsize::new(0));

        // First caller panics mid-flight; a concurrent caller must
        // recover and land the value.
        let c = cache.clone();
        let a = attempts.clone();
        let panicker = thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c.get_or_compute(3, || {
                    a.fetch_add(1, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(20));
                    panic!("flight dies");
                })
            }));
        });
        // Give the panicker time to claim the flight, then pile on.
        thread::sleep(std::time::Duration::from_millis(5));
        let (v, _) = cache.get_or_compute(3, || {
            attempts.fetch_add(1, Ordering::SeqCst);
            9
        });
        panicker.join().expect("panicker thread itself exits cleanly");
        assert_eq!(*v, 9);
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "poisoned flight retried once");
        assert_eq!(*cache.peek(&3).expect("value landed"), 9);
    }

    #[test]
    fn stats_deltas_subtract() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        cache.get_or_compute(1, || 1);
        let before = cache.stats();
        cache.get_or_compute(1, || 1);
        cache.get_or_compute(2, || 2);
        let delta = cache.stats().since(&before);
        assert_eq!(delta, CacheStats { hits: 1, misses: 1, coalesced: 0 });
        assert!((delta.hit_rate() - 0.5).abs() < 1e-12);
    }
}
