//! A work-stealing request executor for long-running services.
//!
//! [`par_map`](crate::par_map) and friends are *batch* helpers: they
//! spawn scoped workers, drain one input slice, and join. A query
//! service needs the opposite shape — a resident pool that accepts
//! one-shot requests from many client threads over its whole lifetime.
//! [`Executor`] provides that:
//!
//! - Submitted tasks are distributed round-robin across per-worker
//!   deques; a worker drains its own deque LIFO (fresh tasks are
//!   cache-hot) and **steals FIFO from its siblings** when its own runs
//!   dry, so a burst landing on one deque spreads across the pool.
//! - Idle workers park on a condvar guarded by a pending-task count —
//!   a semaphore, not a timeout loop — so wakeups are prompt and an
//!   idle pool burns no CPU.
//! - Tasks are opaque `FnOnce` boxes; result delivery is the caller's
//!   business (the serving layer pairs each task with a channel).
//!
//! The executor never promises an execution *order* — services built on
//! it must make each task a pure function of its own inputs, which is
//! exactly the contract the memoization layer ([`crate::cache`])
//! enforces for query results.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// One submitted unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool state.
struct Inner {
    /// Per-worker deques. Owners pop from the back (LIFO), thieves
    /// steal from the front (FIFO), so a stolen task is the oldest —
    /// the one least likely to be cache-hot on its home worker.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Count of submitted-but-unclaimed tasks; the parking semaphore.
    pending: Mutex<usize>,
    /// Signals parked workers that `pending` grew or shutdown began.
    available: Condvar,
    /// Set once by [`Executor::drop`]; workers exit when the queues
    /// are drained.
    shutdown: AtomicBool,
    /// Round-robin cursor for task placement.
    next_queue: AtomicUsize,
}

impl Inner {
    /// Claims one task: own deque first (back), then siblings (front).
    /// Called only after winning a `pending` credit, so a task exists
    /// *somewhere*; a miss means its push is still landing and the
    /// caller should spin briefly.
    fn claim(&self, own: usize) -> Option<Task> {
        if let Some(task) = self.queues[own].lock().expect("queue poisoned").pop_back() {
            return Some(task);
        }
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (own + offset) % n;
            if let Some(task) = self.queues[victim].lock().expect("queue poisoned").pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// The worker loop: wait for a credit, claim a task, run it.
    fn work(self: &Arc<Inner>, own: usize) {
        loop {
            {
                let mut pending = self.pending.lock().expect("pending lock poisoned");
                while *pending == 0 {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    pending = self.available.wait(pending).expect("pending lock poisoned");
                }
                *pending -= 1;
            }
            // The credit guarantees a task was pushed before the count
            // rose; another worker may race us to that *specific* task,
            // but credits == pushes, so one task per credit is always
            // reachable once its push lands.
            let task = loop {
                match self.claim(own) {
                    Some(task) => break task,
                    None => thread::yield_now(),
                }
            };
            task();
        }
    }
}

/// A resident pool of worker threads executing submitted one-shot
/// tasks; see the module docs for the scheduling discipline.
///
/// Dropping the executor shuts the pool down: workers finish every
/// already-submitted task, then exit and are joined.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor").field("workers", &self.workers.len()).finish_non_exhaustive()
    }
}

impl Executor {
    /// A pool of exactly `threads` workers (at least 1).
    pub fn new(threads: usize) -> Executor {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = inner.clone();
                thread::Builder::new()
                    .name(format!("sc-serve-worker-{i}"))
                    .spawn(move || inner.work(i))
                    .expect("worker thread spawns")
            })
            .collect();
        Executor { inner, workers }
    }

    /// A pool sized to the current `sc-par` thread budget
    /// ([`crate::current_threads`]).
    pub fn with_current_threads() -> Executor {
        Executor::new(crate::current_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits one task for asynchronous execution.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let i = self.inner.next_queue.fetch_add(1, Ordering::Relaxed) % self.inner.queues.len();
        self.inner.queues[i].lock().expect("queue poisoned").push_back(Box::new(task));
        let mut pending = self.inner.pending.lock().expect("pending lock poisoned");
        *pending += 1;
        drop(pending);
        self.inner.available.notify_one();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            // Setting the flag under the pending lock closes the race
            // with a worker between its shutdown check and cv.wait —
            // it holds the lock across that window, so it either sees
            // the flag or is woken by the notify below.
            let _pending = self.inner.pending.lock().expect("pending lock poisoned");
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.available.notify_all();
        let current = thread::current().id();
        for worker in self.workers.drain(..) {
            // A task that owns the last reference to a service can end
            // up dropping the executor *from* a worker thread; joining
            // that thread would deadlock, so it is detached instead.
            if worker.thread().id() != current {
                worker.join().expect("worker thread exits cleanly");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_every_submitted_task() {
        let exec = Executor::new(4);
        let count = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::channel();
        for i in 0..1000u64 {
            let count = count.clone();
            let tx = tx.clone();
            exec.spawn(move || {
                count.fetch_add(i, Ordering::Relaxed);
                tx.send(()).expect("receiver alive");
            });
        }
        for _ in 0..1000 {
            rx.recv_timeout(Duration::from_secs(10)).expect("task completes");
        }
        assert_eq!(count.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn single_worker_pool_still_drains() {
        let exec = Executor::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            exec.spawn(move || tx.send(i).expect("receiver alive"));
        }
        let mut seen: Vec<u32> = (0..100)
            .map(|_| rx.recv_timeout(Duration::from_secs(10)).expect("task completes"))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn skewed_bursts_are_stolen_by_idle_workers() {
        // One long task pins its home worker; the burst behind it must
        // complete anyway because siblings steal it.
        let exec = Executor::new(4);
        let (tx, rx) = mpsc::channel();
        let blocker = Arc::new(Mutex::new(()));
        let held = blocker.lock().expect("test lock");
        for i in 0..64u32 {
            let tx = tx.clone();
            if i == 0 {
                let blocker = blocker.clone();
                exec.spawn(move || {
                    let _wait = blocker.lock().expect("test lock");
                    tx.send(i).expect("receiver alive");
                });
            } else {
                exec.spawn(move || tx.send(i).expect("receiver alive"));
            }
        }
        // All short tasks finish while task 0 is still blocked.
        let mut done = Vec::new();
        for _ in 0..63 {
            done.push(rx.recv_timeout(Duration::from_secs(10)).expect("stolen task completes"));
        }
        assert!(!done.contains(&0));
        drop(held);
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).expect("blocked task completes"), 0);
    }

    #[test]
    fn drop_finishes_submitted_tasks() {
        let count = Arc::new(AtomicU64::new(0));
        {
            let exec = Executor::new(2);
            for _ in 0..200 {
                let count = count.clone();
                exec.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        assert_eq!(count.load(Ordering::Relaxed), 200, "drop drains the queues before joining");
    }
}
