//! Deterministic data-parallel primitives for the reproduction
//! pipeline.
//!
//! Everything here obeys one rule, stated in `DESIGN.md`: **parallelism
//! must never change results**. Work is distributed dynamically across
//! threads, but results are merged back in input order, so the output
//! of every helper is a pure function of its inputs — byte-identical
//! whether run on 1 thread or 64.
//!
//! The thread budget is a process-wide setting ([`set_max_threads`]),
//! defaulting to the machine's available parallelism. Helpers fall back
//! to plain sequential execution when the budget is 1 or the input is
//! trivially small, so single-threaded runs pay no synchronization
//! cost.

#![warn(missing_docs)]

pub mod cache;
pub mod executor;
pub mod spsc;

pub use cache::{CacheOutcome, CacheStats, MemoCache};
pub use executor::Executor;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// Sentinel meaning "not configured yet" (resolve to the hardware).
const UNSET: usize = 0;

static MAX_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Sets the process-wide thread budget for all `sc-par` helpers.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_max_threads(n: usize) {
    assert!(n > 0, "thread budget must be at least 1");
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The current thread budget: the value of the last
/// [`set_max_threads`] call, or the machine's available parallelism if
/// never configured.
pub fn current_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        UNSET => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Inputs below this size run sequentially regardless of the budget —
/// thread startup costs more than the work.
const MIN_PARALLEL_ITEMS: usize = 4;

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Items are claimed dynamically (an atomic cursor, not static chunks),
/// so uneven item costs balance across threads; each result lands in
/// its item's slot, so the returned `Vec` is identical to
/// `items.iter().map(f).collect()` for any thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = current_threads().min(items.len());
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (cursor, f) = (&cursor, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots.into_iter().map(|r| r.expect("every index is claimed exactly once")).collect()
    })
}

/// Per-worker SPSC channel capacity for [`par_stream`]. Together with
/// the reorder buffer this bounds in-flight results to
/// `threads * (STREAM_CHANNEL_CAP + 1)` items regardless of input size.
const STREAM_CHANNEL_CAP: usize = 64;

/// Streaming variant of [`par_map`]: maps `f` over `items` in parallel
/// and delivers each result to `consume` **in input order**, without
/// ever materializing the full result vector.
///
/// Workers claim items dynamically and push `(index, result)` pairs
/// through bounded SPSC ring-buffer channels ([`spsc`]); the calling
/// thread restores input order through a reorder buffer. Backpressure
/// from the bounded channels caps buffered results at
/// `threads * (capacity + 1)` items, so peak memory is O(aggregate
/// state) + O(channel bound) instead of O(items).
///
/// `consume` observes exactly the sequence
/// `(0, f(&items[0])), (1, f(&items[1])), …` for any thread budget —
/// the same determinism contract as [`par_map`].
pub fn par_stream<T, R, F, C>(items: &[T], f: F, mut consume: C)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: FnMut(usize, R),
{
    let threads = current_threads().min(items.len());
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        for (i, item) in items.iter().enumerate() {
            consume(i, f(item));
        }
        return;
    }

    let cursor = AtomicUsize::new(0);
    let mut senders = Vec::with_capacity(threads);
    let mut receivers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = spsc::channel::<(usize, R)>(STREAM_CHANNEL_CAP);
        senders.push(tx);
        receivers.push(rx);
    }

    let mut pending: BTreeMap<usize, R> = BTreeMap::new();
    let mut next = 0usize;
    thread::scope(|scope| {
        for tx in senders {
            let (cursor, f) = (&cursor, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }

        // Consume on the calling thread, restoring input order through a
        // reorder buffer. Out-of-order arrivals are bounded by the
        // channel capacities: a worker that runs ahead blocks in send().
        while next < items.len() {
            let mut progressed = false;
            for rx in &mut receivers {
                while let Some((i, result)) = rx.try_recv() {
                    pending.insert(i, result);
                    progressed = true;
                }
            }
            while let Some(result) = pending.remove(&next) {
                consume(next, result);
                next += 1;
            }
            if !progressed && next < items.len() {
                if receivers.iter().all(|rx| rx.sender_gone()) {
                    // Observing sender_gone (Acquire) orders us after the
                    // producer's final send, so one more drain sees
                    // everything ever sent; if an index is still missing,
                    // a worker panicked mid-item. Stop consuming; the
                    // scope join below re-raises the worker's panic.
                    let mut drained = false;
                    for rx in &mut receivers {
                        while let Some((i, result)) = rx.try_recv() {
                            pending.insert(i, result);
                            drained = true;
                        }
                    }
                    if !drained && !pending.contains_key(&next) {
                        break;
                    }
                } else {
                    thread::yield_now();
                }
            }
        }
    });
    // Reached only when no worker panicked (the scope join re-raises
    // worker panics), so every index must have been delivered.
    assert!(next == items.len() && pending.is_empty(), "par_stream lost in-flight results");
}

/// Runs heterogeneous one-shot tasks on the thread budget.
///
/// Tasks communicate results by capturing their own output slot
/// (`&mut Option<T>`), which keeps this free of `Any`-casting while
/// still bounding concurrency — unlike spawning one thread per task.
/// Execution order is unspecified; completion is awaited for all tasks.
pub fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let threads = current_threads().min(tasks.len());
    if threads <= 1 {
        for task in tasks {
            task();
        }
        return;
    }

    let queue = Mutex::new(tasks.into_iter());
    thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            scope.spawn(move || loop {
                let task = queue.lock().expect("task queue poisoned").next();
                match task {
                    Some(task) => task(),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide thread budget.
    static BUDGET_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_matches_sequential_for_any_budget() {
        let items: Vec<u64> = (0..257).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9e37)).collect();
        let _guard = BUDGET_LOCK.lock().unwrap();
        let saved = current_threads();
        for budget in [1, 2, 3, 8] {
            set_max_threads(budget);
            assert_eq!(par_map(&items, |&x| x.wrapping_mul(0x9e37)), sequential);
        }
        set_max_threads(saved);
    }

    #[test]
    fn par_stream_delivers_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let mut seen = Vec::new();
        par_stream(&items, |&x| x * 3, |i, r| seen.push((i, r)));
        let expected: Vec<(usize, u64)> =
            items.iter().enumerate().map(|(i, &x)| (i, x * 3)).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn par_stream_handles_empty_and_tiny_inputs() {
        let mut count = 0;
        par_stream(&[] as &[u64], |&x| x, |_, _| count += 1);
        assert_eq!(count, 0);
        let mut out = Vec::new();
        par_stream(&[5u64], |&x| x + 1, |i, r| out.push((i, r)));
        assert_eq!(out, vec![(0, 6)]);
    }

    #[test]
    fn par_stream_matches_sequential_for_any_budget() {
        // Uneven per-item cost so workers genuinely race out of order.
        let items: Vec<u64> = (0..300).collect();
        let work = |&x: &u64| {
            let spin = (x % 7) * 10;
            let mut acc = x;
            for _ in 0..spin {
                acc = std::hint::black_box(acc.wrapping_mul(0x9e37).rotate_left(7));
            }
            acc
        };
        let mut sequential = Vec::new();
        for (i, item) in items.iter().enumerate() {
            sequential.push((i, work(item)));
        }
        let _guard = BUDGET_LOCK.lock().unwrap();
        let saved = current_threads();
        for budget in [1, 2, 3, 8] {
            set_max_threads(budget);
            let mut seen = Vec::new();
            par_stream(&items, work, |i, r| seen.push((i, r)));
            assert_eq!(seen, sequential, "budget {budget}");
        }
        set_max_threads(saved);
    }

    #[test]
    fn run_tasks_completes_all_tasks() {
        let mut a = None;
        let mut b = None;
        let mut c = None;
        run_tasks(vec![
            Box::new(|| a = Some(1)),
            Box::new(|| b = Some("two")),
            Box::new(|| c = Some(3.0)),
        ]);
        assert_eq!((a, b, c), (Some(1), Some("two"), Some(3.0)));
    }

    #[test]
    fn thread_budget_round_trips() {
        let _guard = BUDGET_LOCK.lock().unwrap();
        let saved = current_threads();
        set_max_threads(5);
        assert_eq!(current_threads(), 5);
        set_max_threads(saved);
    }
}
