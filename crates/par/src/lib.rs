//! Deterministic data-parallel primitives for the reproduction
//! pipeline.
//!
//! Everything here obeys one rule, stated in `DESIGN.md`: **parallelism
//! must never change results**. Work is distributed dynamically across
//! threads, but results are merged back in input order, so the output
//! of every helper is a pure function of its inputs — byte-identical
//! whether run on 1 thread or 64.
//!
//! The thread budget is a process-wide setting ([`set_max_threads`]),
//! defaulting to the machine's available parallelism. Helpers fall back
//! to plain sequential execution when the budget is 1 or the input is
//! trivially small, so single-threaded runs pay no synchronization
//! cost.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// Sentinel meaning "not configured yet" (resolve to the hardware).
const UNSET: usize = 0;

static MAX_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Sets the process-wide thread budget for all `sc-par` helpers.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_max_threads(n: usize) {
    assert!(n > 0, "thread budget must be at least 1");
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The current thread budget: the value of the last
/// [`set_max_threads`] call, or the machine's available parallelism if
/// never configured.
pub fn current_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        UNSET => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Inputs below this size run sequentially regardless of the budget —
/// thread startup costs more than the work.
const MIN_PARALLEL_ITEMS: usize = 4;

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Items are claimed dynamically (an atomic cursor, not static chunks),
/// so uneven item costs balance across threads; each result lands in
/// its item's slot, so the returned `Vec` is identical to
/// `items.iter().map(f).collect()` for any thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = current_threads().min(items.len());
    if threads <= 1 || items.len() < MIN_PARALLEL_ITEMS {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (cursor, f) = (&cursor, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, result) in rx {
            slots[i] = Some(result);
        }
        slots.into_iter().map(|r| r.expect("every index is claimed exactly once")).collect()
    })
}

/// Runs heterogeneous one-shot tasks on the thread budget.
///
/// Tasks communicate results by capturing their own output slot
/// (`&mut Option<T>`), which keeps this free of `Any`-casting while
/// still bounding concurrency — unlike spawning one thread per task.
/// Execution order is unspecified; completion is awaited for all tasks.
pub fn run_tasks(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let threads = current_threads().min(tasks.len());
    if threads <= 1 {
        for task in tasks {
            task();
        }
        return;
    }

    let queue = Mutex::new(tasks.into_iter());
    thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            scope.spawn(move || loop {
                let task = queue.lock().expect("task queue poisoned").next();
                match task {
                    Some(task) => task(),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-wide thread budget.
    static BUDGET_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        let expected: Vec<u64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
        assert_eq!(par_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_matches_sequential_for_any_budget() {
        let items: Vec<u64> = (0..257).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9e37)).collect();
        let _guard = BUDGET_LOCK.lock().unwrap();
        let saved = current_threads();
        for budget in [1, 2, 3, 8] {
            set_max_threads(budget);
            assert_eq!(par_map(&items, |&x| x.wrapping_mul(0x9e37)), sequential);
        }
        set_max_threads(saved);
    }

    #[test]
    fn run_tasks_completes_all_tasks() {
        let mut a = None;
        let mut b = None;
        let mut c = None;
        run_tasks(vec![
            Box::new(|| a = Some(1)),
            Box::new(|| b = Some("two")),
            Box::new(|| c = Some(3.0)),
        ]);
        assert_eq!((a, b, c), (Some(1), Some("two"), Some(3.0)));
    }

    #[test]
    fn thread_budget_round_trips() {
        let _guard = BUDGET_LOCK.lock().unwrap();
        let saved = current_threads();
        set_max_threads(5);
        assert_eq!(current_threads(), 5);
        set_max_threads(saved);
    }
}
