//! Bounded single-producer single-consumer ring-buffer channels.
//!
//! The streaming telemetry pipeline moves per-job results from producer
//! workers to the order-restoring consumer through these channels. The
//! ring is a fixed-capacity array with two monotonically increasing
//! cursors (head = next read, tail = next write); because exactly one
//! thread writes each cursor, a release store on the writer side paired
//! with an acquire load on the reader side is the only synchronization
//! needed — no locks, no allocation after construction.
//!
//! The bounded capacity is what turns the pipeline's memory bound into
//! `O(threads x capacity)`: a producer that runs ahead of the consumer
//! blocks in [`Sender::send`] (backpressure) instead of buffering an
//! unbounded backlog.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Shared ring state. `head`/`tail` count items ever read/written (they
/// are not reduced modulo the capacity until indexing), so `tail - head`
/// is always the number of buffered items.
struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// Safety: only the single producer writes a slot (between its Acquire of
// `head` and Release of `tail`) and only the single consumer reads it
// (between its Acquire of `tail` and Release of `head`), so slots are
// never accessed concurrently.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // With both endpoints gone we have exclusive access; drop any
        // items still buffered.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            let slot = self.buf[i % self.buf.len()].get_mut();
            // Safety: slots in [head, tail) were written and never read.
            unsafe { slot.assume_init_drop() };
        }
    }
}

/// A short spin that escalates to yielding the time slice — producers
/// and consumers exchange coarse-grained items (one job's telemetry per
/// send), so a parked-thread mechanism would be over-engineering.
fn backoff(attempt: &mut u32) {
    *attempt = attempt.saturating_add(1);
    if *attempt < 16 {
        std::hint::spin_loop();
    } else {
        thread::yield_now();
    }
}

/// The producing endpoint. Not cloneable: single producer by type.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").field("capacity", &self.ring.buf.len()).finish()
    }
}

impl<T: Send> Sender<T> {
    /// Sends an item, blocking (spin/yield) while the ring is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the receiver was dropped.
    pub fn send(&self, item: T) -> Result<(), T> {
        let ring = &*self.ring;
        let cap = ring.buf.len();
        let tail = ring.tail.load(Ordering::Relaxed); // we are the only writer
        let mut attempt = 0u32;
        loop {
            if !ring.consumer_alive.load(Ordering::Acquire) {
                return Err(item);
            }
            let head = ring.head.load(Ordering::Acquire);
            if tail - head < cap {
                // Safety: slot `tail` is unoccupied (tail - head < cap)
                // and the consumer will not read it until the Release
                // store below publishes it.
                unsafe { (*ring.buf[tail % cap].get()).write(item) };
                ring.tail.store(tail + 1, Ordering::Release);
                return Ok(());
            }
            backoff(&mut attempt);
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
    }
}

/// The consuming endpoint. Not cloneable: single consumer by type.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").field("capacity", &self.ring.buf.len()).finish()
    }
}

impl<T: Send> Receiver<T> {
    /// Takes the next item if one is buffered; `None` when the ring is
    /// currently empty (the channel may still be open).
    pub fn try_recv(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed); // we are the only writer
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // Safety: slot `head` was published by the producer's Release
        // store of `tail`, observed by the Acquire load above.
        let item = unsafe { (*ring.buf[head % ring.buf.len()].get()).assume_init_read() };
        ring.head.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Receives the next item, blocking (spin/yield) while the ring is
    /// empty; `None` once the sender was dropped and the ring drained.
    pub fn recv(&mut self) -> Option<T> {
        let mut attempt = 0u32;
        loop {
            if let Some(item) = self.try_recv() {
                return Some(item);
            }
            if !self.ring.producer_alive.load(Ordering::Acquire) {
                // Drain anything published between the failed try_recv
                // and the producer's death.
                return self.try_recv();
            }
            backoff(&mut attempt);
        }
    }

    /// Whether the sender was dropped (buffered items may remain).
    pub fn sender_gone(&self) -> bool {
        !self.ring.producer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }
}

/// Creates a bounded SPSC ring-buffer channel holding at most
/// `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "channel capacity must be at least 1");
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buf,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (Sender { ring: Arc::clone(&ring) }, Receiver { ring })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_order() {
        let (tx, mut rx) = channel::<u64>(4);
        let handle = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..1000 {
            assert_eq!(rx.recv(), Some(i));
        }
        handle.join().expect("producer finished");
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_recv_reports_empty_without_blocking() {
        let (tx, mut rx) = channel::<u8>(2);
        assert_eq!(rx.try_recv(), None);
        tx.send(7).expect("receiver alive");
        assert_eq!(rx.try_recv(), Some(7));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u8>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(1));
    }

    #[test]
    fn recv_drains_buffer_after_sender_drop() {
        let (tx, mut rx) = channel::<u8>(4);
        tx.send(1).expect("receiver alive");
        tx.send(2).expect("receiver alive");
        drop(tx);
        assert!(rx.sender_gone());
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn capacity_bounds_buffered_items() {
        let (tx, mut rx) = channel::<u64>(2);
        tx.send(1).expect("receiver alive");
        tx.send(2).expect("receiver alive");
        // A third send must block until the consumer reads; run it on a
        // helper thread and unblock it from here.
        let handle = thread::spawn(move || {
            tx.send(3).expect("receiver alive");
        });
        assert_eq!(rx.recv(), Some(1));
        handle.join().expect("blocked send completed");
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn dropping_channel_drops_buffered_items() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = channel::<Probe>(4);
        tx.send(Probe(Arc::clone(&counter))).map_err(|_| ()).expect("receiver alive");
        tx.send(Probe(Arc::clone(&counter))).map_err(|_| ()).expect("receiver alive");
        drop(tx);
        drop(rx);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }
}
