//! Closed-loop vs analytic acceptance: the policy engine's simulated
//! outcomes must land within documented bands of the offline opportunity
//! studies' predictions for the same population.
//!
//! The bands are wide on purpose — the offline studies score recorded
//! aggregates job-by-job in isolation, while the closed loop interleaves
//! stretched runs on a live cluster (queueing feedback, wall-clock
//! reaping, different pairings) — but they are *bands*, not direction
//! checks: a broken DVFS constant, a mis-wired stretch, or a pairing
//! model drift moves the measured means outside them.

use sc_repro::policy::experiment::DEFAULT_SLOW_TIER;
use sc_repro::prelude::*;

/// The shared A/B population: ~1.5k jobs over 2.5 days, no failure
/// injection, so every job runs exactly one attempt and matched records
/// line up 1:1 across arms.
fn ab_trace() -> Trace {
    let mut spec = WorkloadSpec::supercloud().scaled(0.02);
    spec.users = 64;
    Trace::generate(&spec, 20_220_701)
}

fn ab_config() -> SimConfig {
    SimConfig { detailed_series_jobs: 0, ..SimConfig::default() }
}

/// Per-job run-time ratios (policy / baseline) over GPU jobs that were
/// not wall-clock-reaped in either arm (reaping truncates the stretch
/// the model predicts).
fn matched_gpu_ratios(baseline: &SimOutput, policy: &SimOutput) -> Vec<f64> {
    // Records land in completion order, which the policy reshuffles —
    // match the arms by job id.
    let by_id: std::collections::HashMap<_, _> =
        baseline.dataset.records().iter().map(|r| (r.sched.job_id, r)).collect();
    let mut ratios = Vec::new();
    for p in policy.dataset.records() {
        // Jobs near the horizon can finish in one arm only (the policy
        // shifts queues and run times); matched pairs skip them.
        let Some(b) = by_id.get(&p.sched.job_id) else { continue };
        if b.gpu.is_none()
            || b.sched.exit == ExitStatus::Timeout
            || p.sched.exit == ExitStatus::Timeout
            || b.sched.run_time() <= 0.0
        {
            continue;
        }
        ratios.push(p.sched.run_time() / b.sched.run_time());
    }
    ratios
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Power capping: the mean closed-loop slowdown must sit within a band
/// of the offline `OverProvisionStudy` prediction computed from the
/// baseline arm's recorded aggregates — the same DVFS model applied
/// offline vs in the loop.
#[test]
fn closed_loop_powercap_lands_on_the_offline_prediction() {
    const CAP_W: f64 = 150.0;
    let trace = ab_trace();
    let exp = PolicyExperiment::new(ab_config(), PolicySpec::PowerCap { cap_w: CAP_W });
    let r = exp.run(&trace);
    assert!(r.policy.stats.policy_cap_throttles > 0, "a 150 W cap must throttle jobs");
    assert_eq!(r.baseline.stats.policy_cap_throttles, 0);

    let views = gpu_views(&r.baseline.dataset);
    let study = sc_repro::opportunity::powercap::OverProvisionStudy::run(
        &views,
        &[CAP_W],
        sc_repro::telemetry::gpu_power::FACILITY_BUDGET_W,
        sc_repro::telemetry::gpu_power::V100_TDP_W,
        sc_repro::telemetry::gpu_power::V100_IDLE_W,
    );
    let predicted = study.outcomes[0].mean_slowdown;
    assert!(predicted > 1.0, "the offline study must predict impact at 150 W");

    let ratios = matched_gpu_ratios(&r.baseline, &r.policy);
    assert!(ratios.len() > 100, "need a real population, got {}", ratios.len());
    let measured = mean(&ratios);
    // Documented band: half the predicted excess plus 3 points absolute.
    // The offline mean includes jobs the closed loop reaps at their
    // limit; the closed loop stretches against recorded (not natural)
    // aggregates for jobs the baseline already truncated.
    let band = 0.03 + 0.5 * (predicted - 1.0);
    assert!(
        (measured - predicted).abs() <= band,
        "closed-loop mean slowdown {measured:.4} vs offline prediction {predicted:.4} \
         (band ±{band:.4})"
    );
}

/// GPU sharing: guests must slow within the offline pairing study's
/// band, never speed up, and the packing must actually shrink the
/// cluster's peak GPU footprint.
#[test]
fn closed_loop_coshare_stays_inside_the_offline_interference_band() {
    let trace = ab_trace();
    let exp = PolicyExperiment::new(ab_config(), PolicySpec::Coshare);
    let r = exp.run(&trace);
    assert!(r.policy.stats.policy_coshares > 0, "the packer must pair some jobs");
    assert!(
        r.policy.stats.peak_gpus_in_use <= r.baseline.stats.peak_gpus_in_use,
        "guests borrow GPUs, they must not grow the peak footprint"
    );
    // The ledger still balances with zero-GPU guest allocations.
    let g = &r.policy.goodput;
    let total = g.useful_gpu_secs + g.lost_gpu_secs + g.idle_gpu_secs;
    assert!(
        (total - g.allocated_gpu_secs).abs() <= 1e-6 * g.allocated_gpu_secs.max(1.0),
        "goodput ledger must balance under co-sharing"
    );

    // Guests are the stretched matched jobs (hosts are modeled as
    // undisturbed; everything else is untouched).
    let guests: Vec<f64> = matched_gpu_ratios(&r.baseline, &r.policy)
        .into_iter()
        .filter(|r| *r > 1.0 + 1e-9)
        .collect();
    assert!(!guests.is_empty(), "some guests must finish without hitting their limit");
    let measured = mean(&guests);

    let views = gpu_views(&r.baseline.dataset);
    let offline = OpportunityReport::run(&views, 400);
    let ua = offline
        .colocation
        .iter()
        .find(|c| c.policy == sc_repro::opportunity::PairingPolicy::UtilizationAware)
        .expect("report covers every pairing policy");
    assert!(
        measured >= 1.0 && measured <= ua.p95_slowdown + 0.10,
        "mean guest slowdown {measured:.4} outside [1, offline p95 {:.4} + 0.10]",
        ua.p95_slowdown
    );
    // Same interference model on both sides: the means agree to a loose
    // band even though the pairings differ (offline pairs a sorted
    // sample; the loop pairs whoever is running when a guest arrives).
    assert!(
        (measured - ua.mean_slowdown).abs() <= 0.05 + 0.5 * (ua.mean_slowdown - 1.0),
        "mean guest slowdown {measured:.4} vs offline mean {:.4}",
        ua.mean_slowdown
    );
}

/// Tier routing: class-based demotion must reroute real work, and the
/// demoted jobs' closed-loop stretch is the simulator's own tier
/// physics, bounded by the analytic worst case `1/speed`.
#[test]
fn closed_loop_tier_routing_stretches_within_the_analytic_bound() {
    let trace = ab_trace();
    let exp = PolicyExperiment::new(ab_config(), PolicySpec::Tiered);
    let r = exp.run(&trace);
    assert!(r.policy.stats.policy_tier_routes > 0, "routing must reroute some jobs");
    assert!(
        r.policy.stats.slow_tier_jobs > r.baseline.stats.slow_tier_jobs,
        "class routing must demote more work than interface routing"
    );

    let stretched: Vec<f64> = matched_gpu_ratios(&r.baseline, &r.policy)
        .into_iter()
        .filter(|x| *x > 1.0 + 1e-9)
        .collect();
    assert!(!stretched.is_empty(), "demoted jobs must actually stretch");
    let worst = 1.0 / DEFAULT_SLOW_TIER.speed;
    for ratio in &stretched {
        assert!(
            *ratio <= worst + 1e-9,
            "tier stretch {ratio:.4} exceeds the analytic bound {worst:.2} (fully active job)"
        );
    }
    let measured = mean(&stretched);
    assert!(
        measured > 1.05 && measured < worst,
        "mean demoted-job stretch {measured:.4} should sit strictly between 1 and {worst:.2}"
    );
}

/// Every policy decision must surface as an `sc-obs` event in the trace
/// stream, so externally observable traces carry the closed-loop story.
#[test]
fn policy_decisions_are_traced_as_events() {
    let trace = ab_trace();
    let cfg = ab_config();
    for (spec, event) in [
        (PolicySpec::PowerCap { cap_w: 150.0 }, "cap_throttle"),
        (PolicySpec::Coshare, "coshare_place"),
        (PolicySpec::Tiered, "tier_route"),
    ] {
        let sink = RingSink::new(TraceLevel::Events, 1_000_000);
        let exp = PolicyExperiment::new(cfg.clone(), spec);
        let r = exp.run_observed(&trace, &Obs::new(&sink));
        let names: std::collections::HashSet<&str> =
            sink.records().iter().map(|rec| rec.name).collect();
        assert!(
            names.contains(event),
            "{} run must emit {event} events, saw {names:?}",
            spec.label()
        );
        let decisions = r.policy.stats.policy_cap_throttles
            + r.policy.stats.policy_coshares
            + r.policy.stats.policy_tier_routes;
        let emitted = sink.records().iter().filter(|rec| rec.name == event).count() as u64;
        assert_eq!(emitted, decisions, "every decision is traced exactly once");
    }
}
