//! Calibration acceptance: at a moderate scale, the measured statistics
//! must sit inside bands anchored on the measured/paper *ratios* the
//! full-scale run documents in EXPERIMENTS.md (e.g. p25 run time
//! 2.16×, SM median 0.65×). A drift in the generator now moves a ratio
//! out of its ±25% band instead of hiding inside a 50–60% tolerance.
//!
//! Ratios that are scale-dependent (the run-time tail and the
//! interface shares thin out at 0.10 scale) are asserted in
//! `#[ignore]`d tests with tracking notes; run them with
//! `cargo test -- --ignored` against a full-scale simulation.

use sc_repro::prelude::*;
use std::sync::OnceLock;

static OUT: OnceLock<SimOutput> = OnceLock::new();

fn sim() -> &'static SimOutput {
    OUT.get_or_init(|| {
        let mut spec = WorkloadSpec::supercloud().scaled(0.10);
        // Keep the full 191-user population: the per-user structure
        // (mixes, ceilings, concentration) is calibrated against it.
        spec.users = 191;
        let trace = Trace::generate(&spec, 125);
        Simulation::new(SimConfig { detailed_series_jobs: 220, ..Default::default() }).run(&trace)
    })
}

fn within(measured: f64, paper: f64, rel: f64) -> bool {
    (measured - paper).abs() <= rel * paper.abs()
}

/// `measured / paper` must land within ±25% of the ratio the full-scale
/// run documents in EXPERIMENTS.md for the same statistic.
fn ratio_band(measured: f64, paper: f64, experiments_ratio: f64) -> bool {
    let r = measured / paper;
    (r / experiments_ratio - 1.0).abs() <= 0.25
}

#[test]
fn runtime_quantiles_near_fig3() {
    let views = gpu_views(&sim().dataset);
    let runtimes = Ecdf::new(views.iter().map(|v| v.run_minutes()).collect()).unwrap();
    // The 0.10-scale quantiles sit below their full-scale ratios (the
    // long tail thins with job count), so these are the live rails:
    // median on the paper, p25 overshooting (documented bias direction,
    // 2.16× at full scale), p75 undershooting (0.71× at full scale).
    assert!(within(runtimes.median(), 30.0, 0.2), "median {}", runtimes.median());
    let p25 = runtimes.quantile(0.25);
    assert!((4.0 * 1.2..4.0 * 2.2).contains(&p25), "p25 {p25} outside overshoot band");
    let p75 = runtimes.quantile(0.75);
    assert!((300.0 * 0.4..300.0 * 0.8).contains(&p75), "p75 {p75} outside undershoot band");
}

/// EXPERIMENTS.md run-time table: median CPU-job run time lands on the
/// paper (ratio 1.01×) even at 0.10 scale.
#[test]
fn cpu_runtime_median_matches_experiments_ratio() {
    let cpu =
        Ecdf::new(sim().dataset.cpu_jobs().map(|r| r.sched.run_time() / 60.0).collect()).unwrap();
    assert!(ratio_band(cpu.median(), 8.0, 1.01), "CPU median {} min", cpu.median());
}

/// EXPERIMENTS.md GPU run-time ratios (median 1.30×, p25 2.16×,
/// p75 0.71×) as exact bands.
///
/// IGNORED: these ratios are full-scale properties. At this suite's
/// 0.10 scale the measured ratios are 0.93×/1.56×/0.46× — the run-time
/// tail thins with job count, so the full-scale overshoot has not yet
/// developed. Tracked until the acceptance suite grows a full-scale
/// tier (or the generator's tail is recalibrated); until then the
/// directional bands in `runtime_quantiles_near_fig3` are the rails.
#[test]
#[ignore = "run-time quantile ratios are full-scale properties; see note"]
fn gpu_runtime_quantile_ratios_match_full_scale_experiments() {
    let views = gpu_views(&sim().dataset);
    let runtimes = Ecdf::new(views.iter().map(|v| v.run_minutes()).collect()).unwrap();
    assert!(ratio_band(runtimes.median(), 30.0, 1.30), "median {}", runtimes.median());
    assert!(ratio_band(runtimes.quantile(0.25), 4.0, 2.16), "p25 {}", runtimes.quantile(0.25));
    assert!(ratio_band(runtimes.quantile(0.75), 300.0, 0.71), "p75 {}", runtimes.quantile(0.75));
}

#[test]
fn queue_wait_shape_matches_fig3b() {
    let out = sim();
    let gpu_wait = Ecdf::new(
        out.dataset
            .records()
            .iter()
            .filter(|r| r.sched.is_gpu_job())
            .map(|r| r.sched.queue_wait())
            .collect(),
    )
    .unwrap();
    let cpu_wait =
        Ecdf::new(out.dataset.cpu_jobs().map(|r| r.sched.queue_wait()).collect()).unwrap();
    // "70% of the GPU jobs spend less than one minute in the queue."
    assert!(gpu_wait.fraction_at_most(60.0) > 0.70, "{}", gpu_wait.fraction_at_most(60.0));
    // "70% of the CPU jobs spend more than one minute in the queue."
    assert!(cpu_wait.fraction_above(60.0) > 0.40, "{}", cpu_wait.fraction_above(60.0));
    assert!(cpu_wait.median() > gpu_wait.median());
}

#[test]
fn utilization_medians_near_fig4() {
    let views = gpu_views(&sim().dataset);
    let sm = Ecdf::new(views.iter().map(|v| v.agg.sm_util.mean).collect()).unwrap();
    let mem = Ecdf::new(views.iter().map(|v| v.agg.mem_util.mean).collect()).unwrap();
    let msz = Ecdf::new(views.iter().map(|v| v.agg.mem_size_util.mean).collect()).unwrap();
    // These ratios are scale-stable: EXPERIMENTS.md reports 0.65×,
    // 0.65×, 0.55× at full scale and the 0.10-scale run reproduces
    // them, so the bands are pinned to the documented ratios.
    assert!(ratio_band(sm.median(), 16.0, 0.65), "SM median {}", sm.median());
    assert!(ratio_band(mem.median(), 2.0, 0.65), "mem median {}", mem.median());
    assert!(ratio_band(msz.median(), 9.0, 0.55), "mem-size median {}", msz.median());
    // Ordering: SM > mem-size > mem bandwidth.
    assert!(sm.median() > msz.median());
    assert!(msz.median() > mem.median());
}

#[test]
fn lifecycle_mix_near_fig15() {
    let views = gpu_views(&sim().dataset);
    let total = views.len() as f64;
    let share = |c: LifecycleClass| views.iter().filter(|v| v.class == c).count() as f64 / total;
    assert!(within(share(LifecycleClass::Mature), 0.60, 0.15), "{}", share(LifecycleClass::Mature));
    assert!(
        within(share(LifecycleClass::Exploratory), 0.18, 0.45),
        "{}",
        share(LifecycleClass::Exploratory)
    );
    assert!(
        within(share(LifecycleClass::Development), 0.19, 0.45),
        "{}",
        share(LifecycleClass::Development)
    );
    assert!(within(share(LifecycleClass::Ide), 0.035, 0.5), "{}", share(LifecycleClass::Ide));
    // GPU-hour inversion: mature's hour share sits well below its job
    // share (39% vs 60% in the paper).
    let hours: f64 = views.iter().map(|v| v.gpu_hours()).sum();
    let mature_hours: f64 =
        views.iter().filter(|v| v.class == LifecycleClass::Mature).map(|v| v.gpu_hours()).sum();
    assert!(mature_hours / hours < share(LifecycleClass::Mature));
}

#[test]
fn power_distribution_near_fig9() {
    let views = gpu_views(&sim().dataset);
    let avg = Ecdf::new(views.iter().map(|v| v.agg.power_w.mean).collect()).unwrap();
    let max = Ecdf::new(views.iter().map(|v| v.agg.power_w.max).collect()).unwrap();
    assert!(within(avg.median(), 45.0, 0.35), "avg median {}", avg.median());
    assert!(within(max.median(), 87.0, 0.45), "max median {}", max.median());
    assert!(max.fraction_at_most(150.0) > 0.5, "unimpacted {}", max.fraction_at_most(150.0));
}

#[test]
fn multi_gpu_structure_near_fig13() {
    let views = gpu_views(&sim().dataset);
    let single =
        views.iter().filter(|v| v.sched.gpus_requested == 1).count() as f64 / views.len() as f64;
    assert!(within(single, 0.84, 0.08), "single share {single}");
    let users = user_stats(&views);
    let multi_users = users.iter().filter(|u| u.max_gpus > 1).count() as f64 / users.len() as f64;
    assert!(within(multi_users, 0.60, 0.25), "multi users {multi_users}");
}

#[test]
fn user_concentration_near_sec4() {
    let views = gpu_views(&sim().dataset);
    let users = user_stats(&views);
    let l = Lorenz::new(users.iter().map(|u| u.jobs as f64).collect()).unwrap();
    let top20 = l.top_share(0.20);
    assert!((0.60..0.95).contains(&top20), "top-20% share {top20}");
    let top5 = l.top_share(0.05);
    assert!((0.30..0.70).contains(&top5), "top-5% share {top5}");
}

#[test]
fn paper_sm_median_lies_near_the_bootstrap_band() {
    // Quantify sampling noise: the measured SM median's 99% bootstrap
    // interval must land within a couple of points of the paper's 16%.
    let views = gpu_views(&sim().dataset);
    let sm: Vec<f64> = views.iter().map(|v| v.agg.sm_util.mean).collect();
    let ci = sc_repro::stats::bootstrap_ci(
        &sm,
        |s| sc_repro::stats::percentile(s, 50.0).expect("non-empty"),
        400,
        0.99,
        42,
    )
    .expect("valid sample");
    assert!(
        ci.lo - 6.0 <= 16.0 && 16.0 <= ci.hi + 6.0,
        "paper median 16% far outside CI [{:.2}, {:.2}]",
        ci.lo,
        ci.hi
    );
    // And the interval itself is tight at this scale.
    assert!(ci.half_width() < 3.0, "CI half-width {}", ci.half_width());
}

#[test]
fn sampled_and_analytic_telemetry_agree_in_distribution() {
    // The two data paths of Sec. II — streaming 100 ms sampling and the
    // exact analytic aggregation — must produce the same per-job SM-mean
    // distribution. Two-sample KS over a 150-job sample.
    let out = sim();
    let sampler = sc_repro::telemetry::sampler::GpuSampler::new();
    let mut analytic = Vec::new();
    let mut sampled = Vec::new();
    // Rebuild the ground truth for a slice of analyzed jobs.
    let mut spec = WorkloadSpec::supercloud().scaled(0.10);
    spec.users = 191;
    let trace = Trace::generate(&spec, 125);
    let by_id: std::collections::HashMap<_, _> =
        trace.jobs().iter().map(|j| (j.job_id, j)).collect();
    for r in out.dataset.gpu_jobs().take(150) {
        let job = by_id[&r.sched.job_id];
        let truth = job.ground_truth().expect("gpu job");
        let run = r.sched.run_time().min(1_800.0); // cap sampling cost
        analytic.push(truth.analytic_aggregates(run)[0].sm_util.mean);
        sampled.push(sampler.sample_aggregates(&truth, run)[0].sm_util.mean);
    }
    let ks = sc_repro::stats::ks_two_sample(&analytic, &sampled).expect("valid samples");
    assert!(
        !ks.rejects_same_distribution(0.01),
        "analytic vs sampled telemetry diverge: D={:.4}, p={:.4}",
        ks.statistic,
        ks.p_value
    );
}

#[test]
fn expert_correlations_match_fig12() {
    let views = gpu_views(&sim().dataset);
    let users = user_stats(&views);
    let fig = sc_core::figures::Fig12::compute(&users);
    use sc_core::figures::fig12::BehaviorMetric;
    // "a high positive correlation exists between the number of jobs /
    // GPU hours of a user and the average SM/memory utilization."
    let avg_sm = fig.cell(BehaviorMetric::AvgSm);
    assert!(avg_sm.vs_gpu_hours.rho > 0.15, "rho(hours, avg SM) = {}", avg_sm.vs_gpu_hours.rho);
    // "the correlation … and the CoV of SM/memory utilization across
    // jobs is quite low (< 0.5)."
    let cov_sm = fig.cell(BehaviorMetric::CovSm);
    assert!(cov_sm.vs_jobs.rho.abs() < 0.5, "rho(jobs, CoV SM) = {}", cov_sm.vs_jobs.rho);
}

#[test]
fn class_utilization_ordering_matches_fig16() {
    let views = gpu_views(&sim().dataset);
    let median_sm = |c: LifecycleClass| {
        Ecdf::new(views.iter().filter(|v| v.class == c).map(|v| v.agg.sm_util.mean).collect())
            .unwrap()
            .median()
    };
    let mature = median_sm(LifecycleClass::Mature);
    let dev = median_sm(LifecycleClass::Development);
    let ide = median_sm(LifecycleClass::Ide);
    assert!(within(mature, 21.0, 0.35), "mature SM median {mature}");
    assert!(dev < 3.0, "development SM median {dev}");
    assert!(ide < 3.0, "IDE SM median {ide}");
}

/// EXPERIMENTS.md interface/lifecycle-share ratios: interactive job
/// share 2.04× and IDE GPU-hour share 1.97× at full scale.
///
/// IGNORED: both shares are scale-dependent. At 0.10 scale the
/// interactive share measures ≈0.023 (0.57× the paper's 4%) because
/// the thin-slice completing-notebook population scales with job count
/// while the IDE session floor does not; the IDE GPU-hour share
/// measures ≈0.21 (1.16×) for the same reason. Tracked until the
/// acceptance suite grows a full-scale tier; the live lifecycle rails
/// are in `lifecycle_mix_near_fig15`.
#[test]
#[ignore = "interface shares are full-scale properties; see note"]
fn interface_share_ratios_match_full_scale_experiments() {
    let out = sim();
    let interactive = out
        .dataset
        .records()
        .iter()
        .filter(|r| {
            r.sched.interface == sc_repro::telemetry::record::SubmissionInterface::Interactive
        })
        .count() as f64
        / out.dataset.records().len() as f64;
    assert!(ratio_band(interactive, 0.04, 2.04), "interactive share {interactive}");

    let views = gpu_views(&out.dataset);
    let hours: f64 = views.iter().map(|v| v.gpu_hours()).sum();
    let ide_hours: f64 =
        views.iter().filter(|v| v.class == LifecycleClass::Ide).map(|v| v.gpu_hours()).sum();
    assert!(ratio_band(ide_hours / hours, 0.18, 1.97), "IDE hour share {}", ide_hours / hours);
}
