//! End-to-end smoke test: generate → schedule → sample → join →
//! classify → every figure → every opportunity study.

use sc_repro::prelude::*;

fn run() -> SimOutput {
    let mut spec = WorkloadSpec::supercloud().scaled(0.02);
    spec.users = 64;
    let trace = Trace::generate(&spec, 2_022);
    Simulation::new(SimConfig { detailed_series_jobs: 100, ..Default::default() }).run(&trace)
}

#[test]
fn whole_pipeline_produces_every_figure() {
    let out = run();
    let report = AnalysisReport::from_sim(&out);
    let text = report.render_text();
    for marker in [
        "Table I",
        "Fig. 3(a)",
        "Fig. 4(b)",
        "Fig. 5(a)",
        "Fig. 6(b)",
        "Fig. 7(b)",
        "Fig. 8(b)",
        "Fig. 9(b)",
        "Fig. 10",
        "Fig. 11",
        "Fig. 12",
        "Fig. 13",
        "Fig. 14(b)",
        "Fig. 15",
        "Fig. 16",
        "Fig. 17(b)",
    ] {
        assert!(text.contains(marker), "missing {marker} in rendered report");
    }
    // The experiments markdown carries one comparison table per figure.
    let md = report.experiments_markdown();
    assert_eq!(md.matches("### Fig.").count(), 15);
}

#[test]
fn opportunity_studies_run_on_pipeline_output() {
    let out = run();
    let views = gpu_views(&out.dataset);
    let report = OpportunityReport::run(&views, 60);
    let text = report.render();
    assert!(text.contains("Over-provisioning"));
    assert!(text.contains("Two-tier"));
    assert!(report.powercap.outcomes.len() == 5);
}

#[test]
fn classification_covers_every_job_and_matches_ground_truth() {
    let mut spec = WorkloadSpec::supercloud().scaled(0.02);
    spec.users = 64;
    let trace = Trace::generate(&spec, 2_023);
    let out = Simulation::supercloud().run(&trace);
    // Rebuild the generator's hidden class per job id and compare with
    // the observational classification. Hardware-failure victims are
    // legitimately misclassified (the accounting log cannot tell a
    // crash from a node death) — everything else must agree.
    let truth: std::collections::HashMap<_, _> =
        trace.jobs().iter().filter_map(|j| j.class.map(|c| (j.job_id, c))).collect();
    let mut checked = 0;
    let mut mismatches = 0;
    for record in out.dataset.gpu_jobs() {
        let inferred = classify_record(&record.sched);
        if let Some(&actual) = truth.get(&record.sched.job_id) {
            checked += 1;
            if inferred != actual && !trace.is_hardware_victim(record.sched.job_id) {
                mismatches += 1;
            }
        }
    }
    assert!(checked > 500, "checked {checked}");
    assert_eq!(mismatches, 0, "classification must invert the generator exactly");
}

#[test]
fn dataset_funnel_is_consistent() {
    let out = run();
    let f = out.dataset.funnel();
    assert_eq!(
        f.total_jobs,
        f.cpu_jobs + f.gpu_jobs + f.gpu_jobs_filtered_out,
        "funnel partitions the trace"
    );
    assert_eq!(f.gpu_jobs_unfiltered, f.gpu_jobs + f.gpu_jobs_filtered_out);
    assert_eq!(f.gpu_jobs_missing_telemetry, 0, "every analyzed job was monitored");
    assert!(f.unique_users <= 64);
}

#[test]
fn detailed_subset_carries_phase_statistics() {
    let out = run();
    assert!(!out.detailed.is_empty());
    let with_alternation =
        out.detailed.iter().filter(|d| d.phases.active_interval_cov.is_some()).count();
    assert!(with_alternation > 0, "some jobs alternate phases");
    for d in &out.detailed {
        assert!((0.0..=1.0).contains(&d.phases.active_fraction));
        if let Some(v) = d.variability {
            assert!(v.sm_cov >= 0.0);
        }
    }
}
