//! Scheduler conservation laws under pressure: run the full trace on a
//! deliberately tiny cluster so the queue is always deep, and check the
//! invariants the resource accountant enforces.

use sc_repro::prelude::*;

fn pressured_sim() -> (Trace, SimOutput) {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, 9_009);
    let mut cluster = ClusterSpec::supercloud();
    cluster.nodes = 16; // 32 GPUs for a workload sized for 448
    let sim =
        Simulation::new(SimConfig { cluster, detailed_series_jobs: 20, ..Default::default() });
    let out = sim.run(&trace);
    (trace, out)
}

#[test]
fn all_jobs_terminate_even_under_pressure() {
    let (trace, out) = pressured_sim();
    assert_eq!(out.dataset.funnel().total_jobs, trace.jobs().len());
    // Makespan extends beyond the trace window (the queue drains late)
    // but stays finite and every record is well-formed.
    for r in out.dataset.records() {
        assert!(r.sched.start_time.is_finite());
        assert!(r.sched.end_time > r.sched.start_time);
    }
}

#[test]
fn capacity_is_never_exceeded() {
    let (_, out) = pressured_sim();
    assert!(out.stats.peak_gpus_in_use <= 32, "peak {}", out.stats.peak_gpus_in_use);
    // A meaningful share of the tiny cluster is exercised. Full
    // saturation is *not* expected: conservative EASY backfill holds
    // GPUs open for blocked wide jobs (exactly the head-of-line
    // behaviour real schedulers trade against utilization).
    assert!(out.stats.peak_gpus_in_use >= 8, "peak {}", out.stats.peak_gpus_in_use);
}

#[test]
fn waits_grow_when_capacity_shrinks() {
    let (_, small) = pressured_sim();
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, 9_009);
    let big = Simulation::supercloud().run(&trace);
    let mean_wait = |out: &SimOutput| {
        let waits: Vec<f64> = out
            .dataset
            .records()
            .iter()
            .filter(|r| r.sched.is_gpu_job())
            .map(|r| r.sched.queue_wait())
            .collect();
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    // The full cluster's mean wait is floored at the 3 s scheduler
    // latency, so the growth factor is bounded by pressure alone; 5× is
    // the robust directional bar (measured ≈7× on this trace).
    assert!(
        mean_wait(&small) > 5.0 * mean_wait(&big).max(1.0),
        "small-cluster mean wait {} vs full {}",
        mean_wait(&small),
        mean_wait(&big)
    );
}

#[test]
fn run_times_are_invariant_to_queueing() {
    // The same job runs for the same duration whether it waited or not:
    // queueing delays starts, never stretches execution.
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, 9_009);
    let (_, small) = pressured_sim();
    let big = Simulation::supercloud().run(&trace);
    let runtime_of = |out: &SimOutput| {
        let mut v: Vec<(u64, f64)> =
            out.dataset.records().iter().map(|r| (r.sched.job_id.0, r.sched.run_time())).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    };
    for ((ida, ra), (idb, rb)) in runtime_of(&small).iter().zip(runtime_of(&big).iter()) {
        assert_eq!(ida, idb);
        assert!((ra - rb).abs() < 1e-6, "job {ida}: {ra} vs {rb}");
    }
}

#[test]
fn cpu_only_expansion_cuts_cpu_waits_without_touching_gpu_jobs() {
    // Sec. II's system evolution: adding CPU-only nodes absorbs the
    // full-node CPU campaigns. CPU waits must drop materially; GPU
    // waits are already at the scheduler latency and must stay there.
    let mut spec = WorkloadSpec::supercloud().scaled(0.02);
    spec.users = 48;
    let trace = Trace::generate(&spec, 3_141);
    let run = |cluster: ClusterSpec| {
        let out =
            Simulation::new(SimConfig { cluster, detailed_series_jobs: 0, ..Default::default() })
                .run(&trace);
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let cpu = mean(out.dataset.cpu_jobs().map(|r| r.sched.queue_wait()).collect());
        let gpu = mean(
            out.dataset
                .records()
                .iter()
                .filter(|r| r.sched.is_gpu_job())
                .map(|r| r.sched.queue_wait())
                .collect(),
        );
        (cpu, gpu)
    };
    let (cpu_base, gpu_base) = run(ClusterSpec::supercloud());
    let (cpu_exp, gpu_exp) = run(ClusterSpec::supercloud_expanded(128));
    assert!(cpu_exp < 0.7 * cpu_base, "CPU mean wait {cpu_exp} vs baseline {cpu_base}");
    assert!((gpu_exp - gpu_base).abs() < 5.0, "GPU waits moved: {gpu_base} → {gpu_exp}");
}

#[test]
fn backfill_ablation_does_not_hurt_waits() {
    // The ablation the paper's scheduling discussion implies: EASY
    // backfill must never produce *worse* mean waits than strict FCFS
    // on the same pressured trace (it starts a superset of jobs at each
    // pass), and typically produces strictly better ones.
    let mut spec = WorkloadSpec::supercloud().scaled(0.005);
    spec.users = 24;
    let trace = Trace::generate(&spec, 4_242);
    let mut cluster = ClusterSpec::supercloud();
    // Pressured, but still able to host the trace's widest job (32
    // GPUs): anything smaller wedges strict FCFS forever behind an
    // unplaceable head.
    cluster.nodes = 16;
    let run = |policy| {
        let out = Simulation::new(SimConfig {
            cluster: cluster.clone(),
            detailed_series_jobs: 0,
            policy,
            ..Default::default()
        })
        .run(&trace);
        let waits: Vec<f64> = out.dataset.records().iter().map(|r| r.sched.queue_wait()).collect();
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let fcfs = run(sc_cluster::SchedulePolicy::FcfsOnly);
    let easy = run(sc_cluster::SchedulePolicy::EasyBackfill);
    assert!(easy <= fcfs * 1.05, "backfill mean wait {easy} vs strict FCFS {fcfs}");
}

/// A 0.01-scale trace run under an aggressive failure model: node
/// hardware faults every few simulated minutes fleet-wide, so every
/// recovery path — absorption, requeue, cap exhaustion — is exercised.
fn violent_failure_sim() -> (Trace, SimOutput) {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, 9_009);
    let sim = Simulation::new(SimConfig {
        detailed_series_jobs: 0,
        failures: Some(FailureModel::nodes_only(5.0e4, 600.0, 77)),
        checkpoint: Some(CheckpointPolicy { interval_secs: 1_800.0, write_secs: 30.0 }),
        ..Default::default()
    });
    let out = sim.run(&trace);
    (trace, out)
}

#[test]
fn double_failures_are_absorbed_and_every_job_terminates_exactly_once() {
    let (trace, out) = violent_failure_sim();
    assert!(out.stats.injected_failures > 0, "model must fire");
    // With failures every ~220 s fleet-wide and 10-minute repairs, some
    // faults must strike nodes that are already down or empty; those are
    // absorbed, never double-killing an attempt.
    assert!(out.stats.absorbed_faults > 0, "stats: {:?}", out.stats);
    // Exactly one accounting record and one fate per submitted job, no
    // matter how many attempts it took.
    assert_eq!(out.dataset.funnel().total_jobs, trace.jobs().len());
    assert_eq!(out.fates.len(), trace.jobs().len());
    let mut seen = std::collections::HashSet::new();
    for fate in &out.fates {
        assert!(seen.insert(fate.job_id), "job {:?} terminated twice", fate.job_id);
        assert!(fate.attempts >= 1);
    }
}

#[test]
fn requeued_jobs_recover_after_node_repair() {
    let (_, out) = violent_failure_sim();
    assert!(out.stats.requeues > 0, "stats: {:?}", out.stats);
    // Recovery works: some job lost an attempt to a node fault, was
    // requeued with backoff, and still finished with a normal exit.
    let recovered =
        out.fates.iter().filter(|f| f.attempts > 1 && f.exit == ExitStatus::Completed).count();
    assert!(recovered > 0, "no requeued job ever completed");
}

#[test]
fn retry_caps_are_exhausted_but_never_exceeded() {
    let (_, out) = violent_failure_sim();
    let retry = RetryPolicy::default();
    let exhausted = out
        .fates
        .iter()
        .filter(|f| f.exit == ExitStatus::NodeFailure && f.injected_failures > 0)
        .collect::<Vec<_>>();
    assert!(!exhausted.is_empty(), "under this barrage some job must run out of retries");
    for fate in &out.fates {
        // attempts = 1 + retries, and retries never exceed the policy cap.
        assert!(
            fate.attempts <= 1 + retry.max_retries,
            "job {:?} got {} attempts (cap {})",
            fate.job_id,
            fate.attempts,
            1 + retry.max_retries
        );
    }
}

#[test]
fn gpu_seconds_never_leak_from_the_goodput_ledger() {
    // The ISSUE's balance criterion: useful + lost + idle == allocated,
    // with and without injection.
    let check = |out: &SimOutput, label: &str| {
        let g = &out.goodput;
        let total = g.useful_gpu_secs + g.lost_gpu_secs + g.idle_gpu_secs;
        assert!(
            (g.allocated_gpu_secs - total).abs() <= 1e-6 * g.allocated_gpu_secs.max(1.0),
            "{label}: allocated {} != useful {} + lost {} + idle {}",
            g.allocated_gpu_secs,
            g.useful_gpu_secs,
            g.lost_gpu_secs,
            g.idle_gpu_secs
        );
        assert!(g.allocated_gpu_secs > 0.0, "{label}: nothing was allocated");
    };
    let (_, clean) = pressured_sim();
    check(&clean, "no injection");
    assert_eq!(clean.stats.injected_failures, 0);
    // Without injection the only infrastructure deaths are the trace's
    // hardware victims, all attributed to the node-hardware bucket.
    assert_eq!(clean.goodput.lost_by_cause_gpu_secs[FailureCause::GpuXid.index()], 0.0);
    assert_eq!(clean.goodput.lost_by_cause_gpu_secs[FailureCause::InfraTransient.index()], 0.0);
    let (_, violent) = violent_failure_sim();
    check(&violent, "violent injection");
    assert!(violent.goodput.lost_gpu_secs > 0.0);
}

mod goodput_fuzz {
    //! Fuzz the goodput ledger: whatever failure model, checkpoint
    //! policy, and seed the strategy draws, the conservation laws must
    //! hold exactly. Each case is a full (small) simulation, so the
    //! case count is modest; the determinism of the vendored proptest
    //! keeps every draw reproducible.

    use super::*;
    use proptest::prelude::*;
    use proptest::strategy::weighted_bool;

    fn fuzzed_sim(seed: u64, mtbf_factor: f64, nodes_only: bool, checkpoint: bool) -> SimOutput {
        let mut spec = WorkloadSpec::supercloud().scaled(0.005);
        spec.users = 24;
        let trace = Trace::generate(&spec, seed);
        let failures = if nodes_only {
            // mtbf_factor in (0, 1] maps onto a fleet-wide MTBF of
            // 5e4..5e5 simulated seconds with ten-minute repairs.
            FailureModel::nodes_only(5.0e4 / mtbf_factor, 600.0, seed)
        } else {
            FailureModel::supercloud(seed).scaled_mtbf(mtbf_factor)
        };
        Simulation::new(SimConfig {
            detailed_series_jobs: 0,
            failures: Some(failures),
            checkpoint: checkpoint
                .then_some(CheckpointPolicy { interval_secs: 1_800.0, write_secs: 30.0 }),
            ..Default::default()
        })
        .run(&trace)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// useful + lost + idle == allocated, per-cause losses sum to
        /// the lost bucket, and per-cause deaths sum to the death
        /// total — for any failure model, seed, and checkpoint policy.
        #[test]
        fn prop_ledger_balances_under_any_failure_regime(
            seed in 0..100_000u64,
            mtbf_factor in 0.02..0.3f64,
            nodes_only in weighted_bool(0.3),
            checkpoint in weighted_bool(0.5),
        ) {
            let out = fuzzed_sim(seed, mtbf_factor, nodes_only, checkpoint);
            let g = &out.goodput;

            prop_assert!(g.allocated_gpu_secs > 0.0, "nothing was allocated");
            prop_assert!(
                g.balance_error() <= 1e-6 * g.allocated_gpu_secs,
                "ledger imbalance {} on allocated {}",
                g.balance_error(),
                g.allocated_gpu_secs,
            );

            let by_cause: f64 = g.lost_by_cause_gpu_secs.iter().sum();
            prop_assert!(
                (by_cause - g.lost_gpu_secs).abs() <= 1e-6 * g.lost_gpu_secs.max(1.0),
                "per-cause losses {} != lost bucket {}",
                by_cause,
                g.lost_gpu_secs,
            );

            let deaths: u64 = g.deaths_by_cause.iter().sum();
            prop_assert_eq!(deaths, g.total_deaths());

            // Every bucket is non-negative and checkpoint write stalls
            // are a subset of idle time (debited from useful at settle),
            // never a fourth bucket.
            for v in [g.useful_gpu_secs, g.lost_gpu_secs, g.idle_gpu_secs] {
                prop_assert!(v >= 0.0, "negative bucket in {g:?}");
            }
            prop_assert!(
                g.checkpoint_write_gpu_secs <= g.idle_gpu_secs + 1e-6,
                "checkpoint writes {} exceed idle {}",
                g.checkpoint_write_gpu_secs,
                g.idle_gpu_secs,
            );

            // Deaths only happen when the injector actually fired, and
            // lost time requires at least one death.
            if out.stats.injected_failures == 0 {
                prop_assert_eq!(g.total_deaths(), 0);
            }
            if g.lost_gpu_secs > 0.0 {
                prop_assert!(g.total_deaths() > 0, "lost time without a death: {g:?}");
            }
        }
    }
}

#[test]
fn fcfs_order_is_respected_for_equal_requests() {
    // Among single-GPU jobs (identical GPU footprint), a job submitted
    // strictly earlier must not start strictly later than one submitted
    // after it — backfill can only reorder jobs with different
    // resource/limit envelopes.
    let (_, out) = pressured_sim();
    let mut singles: Vec<_> = out
        .dataset
        .records()
        .iter()
        .filter(|r| r.sched.gpus_requested == 1 && r.sched.time_limit == 86_400.0)
        .collect();
    singles.sort_by(|a, b| a.sched.submit_time.partial_cmp(&b.sched.submit_time).unwrap());
    let mut violations = 0;
    for w in singles.windows(2) {
        // Same limits, same GPU need: cpu/mem differences can still let
        // a later job slip in, so allow a small violation budget.
        if w[1].sched.start_time + 1e-6 < w[0].sched.start_time {
            violations += 1;
        }
    }
    let frac = violations as f64 / singles.len().max(1) as f64;
    assert!(frac < 0.10, "FCFS violation fraction {frac}");
}
