//! Seed determinism: the entire reproduction — trace, schedule,
//! telemetry, figures — is a pure function of (spec, seed).

use sc_repro::prelude::*;

fn run(seed: u64) -> (Trace, SimOutput) {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, seed);
    let out =
        Simulation::new(SimConfig { detailed_series_jobs: 30, ..Default::default() }).run(&trace);
    (trace, out)
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let (ta, a) = run(77);
    let (tb, b) = run(77);
    assert_eq!(ta.jobs(), tb.jobs());
    assert_eq!(a.dataset.records().len(), b.dataset.records().len());
    for (ra, rb) in a.dataset.records().iter().zip(b.dataset.records()) {
        assert_eq!(ra.sched, rb.sched);
        assert_eq!(ra.gpu, rb.gpu);
    }
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.detailed, b.detailed);
    // Rendered figures are textually identical.
    let fa = AnalysisReport::from_sim(&a).render_text();
    let fb = AnalysisReport::from_sim(&b).render_text();
    assert_eq!(fa, fb);
}

#[test]
fn different_seeds_differ() {
    let (ta, _) = run(1);
    let (tb, _) = run(2);
    assert_ne!(ta.jobs(), tb.jobs());
}

#[test]
fn ground_truth_regeneration_is_stable() {
    let (trace, _) = run(3);
    for job in trace.gpu_jobs().take(25) {
        let a = job.ground_truth().expect("gpu job");
        let b = job.ground_truth().expect("gpu job");
        assert_eq!(a, b, "job {} truth must be seed-stable", job.job_id);
    }
}

#[test]
fn figure_statistics_are_stable_across_reruns() {
    let (_, a) = run(4);
    let (_, b) = run(4);
    let va = gpu_views(&a.dataset);
    let vb = gpu_views(&b.dataset);
    let ua = user_stats(&va);
    let ub = user_stats(&vb);
    assert_eq!(ua, ub);
}

/// The N-thread side of the 1-vs-N comparisons. The CI determinism
/// matrix sets `SC_PAR_THREADS` to sweep budgets (1, 4, 8); local runs
/// fall back to 4.
fn alt_thread_budget() -> usize {
    std::env::var("SC_PAR_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// The deterministic-parallelism rule, end to end: a 1-thread run and
/// an N-thread run must agree byte for byte on both the exported
/// Dataset JSON and the rendered figure text. Work is distributed
/// dynamically but merged in input order, so the thread budget can only
/// change wall time, never output.
#[test]
fn thread_budget_never_changes_output() {
    let saved = sc_repro::par::current_threads();

    sc_repro::par::set_max_threads(1);
    let (_, a) = run(5);
    let json_a = a.dataset.to_json().expect("serializable");
    let text_a = AnalysisReport::from_sim(&a).render_text();

    sc_repro::par::set_max_threads(alt_thread_budget());
    let (_, b) = run(5);
    let json_b = b.dataset.to_json().expect("serializable");
    let text_b = AnalysisReport::from_sim(&b).render_text();

    sc_repro::par::set_max_threads(saved);

    assert_eq!(json_a, json_b, "Dataset JSON must not depend on the thread budget");
    assert_eq!(text_a, text_b, "figure text must not depend on the thread budget");
    // The one-pass streaming summary folds in input order behind the
    // reorder buffer, so its rendered text obeys the same rule.
    assert_eq!(
        a.telemetry_summary.render(),
        b.telemetry_summary.render(),
        "streaming summary must not depend on the thread budget"
    );
    assert_eq!(
        sc_repro::core::StreamingTelemetryFig::compute(&a).render(),
        sc_repro::core::StreamingTelemetryFig::compute(&b).render(),
        "streaming cross-validation must not depend on the thread budget"
    );
}

/// The streaming engine under the batch contract: the detailed-subset
/// statistics the producers fold one tick at a time must equal — bit
/// for bit, not approximately — what the pre-streaming batch path
/// (materialize the full sample series, then aggregate) computes for
/// the same jobs, and the streamed one-pass aggregates must sit within
/// their documented error bounds of the materialized dataset.
#[test]
fn streamed_detail_stats_equal_batch_recomputation() {
    use sc_repro::telemetry::phases::{active_variability, phase_stats};
    use sc_repro::telemetry::GpuSampler;

    let (trace, out) = run(42);
    assert!(!out.detailed.is_empty(), "the detailed subset must be sampled");
    let sampler = GpuSampler::new();
    for d in &out.detailed {
        let job = trace
            .jobs()
            .iter()
            .find(|j| j.job_id == d.job_id)
            .expect("detailed stats always belong to a trace job");
        let truth = job.ground_truth().expect("detailed jobs are GPU jobs");
        let run_time = out
            .dataset
            .records()
            .iter()
            .find(|r| r.sched.job_id == d.job_id)
            .expect("detailed jobs pass the dataset filter")
            .sched
            .run_time();
        let series = sampler.sample_series(&truth, run_time);
        let phases = phase_stats(&series).expect("non-empty series");
        let variability = active_variability(&series).expect("finite series");
        assert_eq!(
            d.phases, phases,
            "job {}: streamed phase stats must be bit-identical",
            d.job_id
        );
        assert_eq!(
            d.variability, variability,
            "job {}: streamed variability must be bit-identical",
            d.job_id
        );
    }

    let fig = sc_repro::core::StreamingTelemetryFig::compute(&out);
    assert!(fig.passes(), "streamed aggregates must honour their error bounds:\n{}", fig.render());
}

/// One failure-injected run at the current thread budget.
fn run_with_failures(seed: u64) -> SimOutput {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, seed);
    Simulation::new(SimConfig {
        detailed_series_jobs: 30,
        failures: Some(FailureModel::supercloud(seed).scaled_mtbf(0.05)),
        checkpoint: Some(CheckpointPolicy { interval_secs: 1_800.0, write_secs: 30.0 }),
        ..Default::default()
    })
    .run(&trace)
}

/// A small failure-injected run traced at `TraceLevel::Events`,
/// returning the raw JSONL bytes. Deliberately tiny (0.2% scale, 10
/// days) so the golden file stays a few tens of kilobytes while still
/// exercising submits, faults, kills, requeues and checkpoint restores.
fn traced_jsonl(seed: u64) -> Vec<u8> {
    let mut spec = WorkloadSpec::supercloud().scaled(0.002);
    spec.users = 16;
    spec.duration_days = 10.0;
    let trace = Trace::generate(&spec, seed);
    let sim = Simulation::new(SimConfig {
        detailed_series_jobs: 10,
        failures: Some(FailureModel::supercloud(seed).scaled_mtbf(0.1)),
        checkpoint: Some(CheckpointPolicy { interval_secs: 1_800.0, write_secs: 30.0 }),
        ..Default::default()
    });
    let sink = JsonlSink::new(TraceLevel::Events, Vec::new());
    let (_out, _timings) = sim.run_observed(&trace, &Obs::new(&sink));
    sink.into_inner().expect("Vec<u8> writes cannot fail")
}

const GOLDEN_TRACE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/trace_scale0002_seed42.jsonl");

/// Golden-trace regression: the traced event stream for a fixed seed
/// must match the committed bytes exactly. Any intentional change to
/// the trace vocabulary, field order, or float formatting must
/// regenerate the golden file (set `SC_REGEN_GOLDEN=1` and rerun) and
/// justify the diff in review.
#[test]
fn golden_trace_matches_committed_bytes() {
    let bytes = traced_jsonl(42);
    assert!(!bytes.is_empty());
    if std::env::var("SC_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_TRACE, &bytes).expect("write golden trace");
        return;
    }
    let golden = std::fs::read(GOLDEN_TRACE).expect("golden trace committed at tests/golden/");
    assert_eq!(
        bytes.len(),
        golden.len(),
        "trace length changed vs golden ({} vs {} bytes); regenerate with SC_REGEN_GOLDEN=1 \
         if intentional",
        bytes.len(),
        golden.len()
    );
    if bytes != golden {
        let line = bytes
            .split(|&b| b == b'\n')
            .zip(golden.split(|&b| b == b'\n'))
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        panic!("trace diverges from golden at line {}", line + 1);
    }
}

/// The trace stream itself obeys the deterministic-parallelism rule:
/// byte-identical JSONL at a 1-thread and an N-thread budget (the CI
/// matrix sweeps N over 1, 4, 8 via `SC_PAR_THREADS`).
#[test]
fn trace_bytes_identical_across_thread_budgets() {
    let saved = sc_repro::par::current_threads();

    sc_repro::par::set_max_threads(1);
    let a = traced_jsonl(42);
    sc_repro::par::set_max_threads(alt_thread_budget());
    let b = traced_jsonl(42);
    sc_repro::par::set_max_threads(saved);

    assert!(!a.is_empty());
    assert_eq!(a, b, "JSONL trace bytes must not depend on the thread budget");
}

/// The policy engine under the same rule: for every built-in policy the
/// A/B harness's dataset JSON and rendered delta figure must be
/// byte-identical between a 1-thread and an N-thread run (the CI matrix
/// sweeps N over 1, 4, 8 via `SC_PAR_THREADS`). Policies run on the
/// single-threaded event loop; only telemetry synthesis and analysis
/// fan out, and those merge in input order.
#[test]
fn policy_runs_are_deterministic_across_thread_budgets() {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, 9);
    let run_all = || -> Vec<(String, String)> {
        [PolicySpec::PowerCap { cap_w: 250.0 }, PolicySpec::Coshare, PolicySpec::Tiered]
            .iter()
            .map(|&s| {
                let exp = PolicyExperiment::new(
                    SimConfig { detailed_series_jobs: 0, ..Default::default() },
                    s,
                );
                let r = exp.run(&trace);
                (r.policy.dataset.to_json().expect("serializable"), r.fig.render())
            })
            .collect()
    };

    let saved = sc_repro::par::current_threads();
    sc_repro::par::set_max_threads(1);
    let a = run_all();
    sc_repro::par::set_max_threads(alt_thread_budget());
    let b = run_all();
    sc_repro::par::set_max_threads(saved);

    for ((json_a, fig_a), (json_b, fig_b)) in a.iter().zip(&b) {
        assert_eq!(json_a, json_b, "policy-arm Dataset JSON must not depend on threads");
        assert_eq!(fig_a, fig_b, "PolicyAbFig text must not depend on threads");
    }
}

/// The data-quality subsystem under the same rule: the corrupt ->
/// ingest -> re-analyze round trip must be byte-identical between a
/// 1-thread and an N-thread run — corruption coins are hash-derived
/// from (job id, seed, fault class), repair walks the canonical order,
/// and the figure fan-out merges in slot order, so the thread budget
/// can only change wall time.
#[test]
fn data_quality_round_trip_is_deterministic_across_thread_budgets() {
    let run_dq = || {
        let (_, out) = run(11);
        let clean = DatasetReport::try_from_dataset(&out.dataset).expect("clean pipeline");
        let (ingested, injected) =
            corrupt_and_ingest(&out.dataset, DataQualityProfile::Lossy, 11, &Obs::off())
                .expect("lossy ingest succeeds");
        let recovered =
            DatasetReport::try_from_dataset(&ingested.dataset).expect("recovered pipeline");
        let fig =
            DataQualityFig::compute("lossy", injected, ingested.report, &clean, &recovered, None);
        (ingested.dataset.to_json().expect("serializable"), fig.render(), out.telemetry_summary)
    };

    let saved = sc_repro::par::current_threads();
    sc_repro::par::set_max_threads(1);
    let (json_a, fig_a, summary_a) = run_dq();
    sc_repro::par::set_max_threads(alt_thread_budget());
    let (json_b, fig_b, summary_b) = run_dq();
    sc_repro::par::set_max_threads(saved);

    assert_eq!(json_a, json_b, "repaired Dataset JSON must not depend on the thread budget");
    assert_eq!(fig_a, fig_b, "DataQualityFig text must not depend on the thread budget");
    assert!(fig_a.contains("ledger balanced: yes"), "the lossy ledger must balance");
    assert_eq!(
        summary_a.render(),
        summary_b.render(),
        "streaming summary under lossy ingest must not depend on the thread budget"
    );
}

const GOLDEN_LEDGER: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/ingest_ledger_lossy_seed42.txt");

/// Golden-ledger regression: the rendered ingest repair ledger for the
/// lossy profile at a fixed seed must match the committed bytes
/// exactly. Any intentional change to the fault taxonomy, repair
/// strategies, or ledger formatting must regenerate the golden file
/// (run `scripts/update_golden.sh`, or set `SC_REGEN_GOLDEN=1` and
/// rerun) and justify the diff in review.
#[test]
fn golden_ingest_ledger_matches_committed_bytes() {
    let (_, out) = run(42);
    let (ingested, injected) =
        corrupt_and_ingest(&out.dataset, DataQualityProfile::Lossy, 42, &Obs::off())
            .expect("lossy ingest succeeds");
    assert!(ingested.report.balances_against(&injected));
    let rendered = ingested.report.render();
    if std::env::var("SC_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_LEDGER, &rendered).expect("write golden ledger");
        return;
    }
    let golden =
        std::fs::read_to_string(GOLDEN_LEDGER).expect("golden ledger committed at tests/golden/");
    assert_eq!(
        rendered, golden,
        "ingest ledger diverges from golden; regenerate with scripts/update_golden.sh if \
         intentional"
    );
}

const GOLDEN_SCENARIO_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");

/// Golden scenario summaries: the rendered summary of each committed
/// preset — name, content hash, cluster/workload/arrivals/failure
/// lines — must match the committed bytes exactly. The summary hash is
/// the serve cache-key dimension, so an unintentional drift here means
/// previously cached responses silently stop being addressable. Any
/// intentional change to a preset or to the summary format must
/// regenerate (run `scripts/update_golden.sh`, or set
/// `SC_REGEN_GOLDEN=1` and rerun) and justify the diff in review.
#[test]
fn golden_scenario_summaries_match_committed_bytes() {
    for name in Scenario::preset_names() {
        let sc = Scenario::preset(name).expect("embedded preset parses");
        let rendered = sc.render_summary();
        let path = format!("{GOLDEN_SCENARIO_DIR}/scenario_{name}.txt");
        if std::env::var("SC_REGEN_GOLDEN").is_ok() {
            std::fs::write(&path, &rendered).expect("write golden scenario summary");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("golden summary committed at {path}: {e}"));
        assert_eq!(
            rendered, golden,
            "scenario summary for {name} diverges from golden; regenerate with \
             scripts/update_golden.sh if intentional"
        );
    }
}

/// One query service over a 1%-scale world at the current thread
/// budget. `threads` sizes both the sc_par pool consulted during the
/// build and the request executor.
fn build_service(threads: usize) -> std::sync::Arc<Service> {
    std::sync::Arc::new(Service::build(ServeConfig {
        scale: 0.01,
        seed: 13,
        threads,
        users_floor: 32,
        ..ServeConfig::default()
    }))
}

/// The serving layer under the same rule: every response on the
/// standard query surface — points, figures, policy A/B arms,
/// data-quality what-ifs — must be byte-identical between a 1-thread
/// and an N-thread service (the CI matrix sweeps N over 1, 4, 8 via
/// `SC_PAR_THREADS`), and byte-identical between the cold (uncached),
/// warm (cache hit), and executor-submitted paths of the same service.
/// The query trace digest the CI serve leg compares across runs is
/// exactly the fold of these bytes, so it is asserted too.
#[test]
fn served_responses_are_deterministic_across_thread_budgets() {
    use sc_repro::serve::Digest;

    let serve_all = |svc: &std::sync::Arc<Service>| -> (Vec<String>, String) {
        let mut digest = Digest::new();
        let bodies: Vec<String> = Query::standard_queries()
            .into_iter()
            .map(|q| {
                let body = svc.submit(q).wait().response.body;
                digest.update(body.as_bytes());
                (*body).clone()
            })
            .collect();
        (bodies, digest.hex())
    };

    let saved = sc_repro::par::current_threads();
    sc_repro::par::set_max_threads(1);
    let one = build_service(1);
    let (bodies_one, digest_one) = serve_all(&one);
    sc_repro::par::set_max_threads(alt_thread_budget());
    let alt = build_service(alt_thread_budget());
    let (bodies_alt, digest_alt) = serve_all(&alt);
    sc_repro::par::set_max_threads(saved);

    assert_eq!(bodies_one.len(), bodies_alt.len());
    for ((q, a), b) in Query::standard_queries().iter().zip(&bodies_one).zip(&bodies_alt) {
        assert_eq!(a, b, "response for {} must not depend on the thread budget", q.token());
    }
    assert_eq!(digest_one, digest_alt, "query-trace digest must not depend on the thread budget");

    // Cold, warm, and submitted answers of one service agree byte for
    // byte: the cache can only change latency, never content.
    for q in Query::standard_queries() {
        let cold = alt.query_uncached(&q);
        let warm = alt.query_blocking(&q);
        assert_eq!(cold, warm.body, "cold and warm bytes for {} must agree", q.token());
    }
}

/// Single-flight coalescing: concurrent identical requests for an
/// uncached heavy query must produce exactly one computation — every
/// other request waits for that flight or hits the filled cache — and
/// all of them the same bytes.
#[test]
fn concurrent_identical_queries_coalesce_onto_one_computation() {
    let svc = build_service(4);
    // A policy A/B arm re-simulates the trace twice, so the flight is
    // slow enough that the concurrent submissions genuinely overlap.
    let q = Query::parse("ab:coshare").expect("valid token");
    let before = svc.cache_stats();
    let pending: Vec<_> = (0..8).map(|_| svc.submit(q)).collect();
    let bodies: Vec<_> = pending.into_iter().map(|p| p.wait().response.body).collect();
    let delta = svc.cache_stats().since(&before);
    assert_eq!(delta.misses, 1, "one flight computes, the rest share: {delta:?}");
    assert_eq!(delta.hits + delta.coalesced, 7, "{delta:?}");
    for b in &bodies {
        assert_eq!(b, &bodies[0], "coalesced responses must share bytes");
    }
}

const GOLDEN_CLASSIFIER: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/classifier_confusion_scale001_seed42.txt"
);

/// One classifier evaluation over the standard 1%-scale world: train
/// the seeded forest with the stock [`ClassifierConfig`] and render the
/// confusion-matrix figure.
fn classifier_report(seed: u64) -> ClassifierFig {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, seed);
    let (_, eval) = ArchetypePredictor::train(&trace, &ClassifierConfig::default());
    eval.to_fig()
}

/// Golden-classifier regression: the rendered confusion matrix for the
/// stock config at a fixed seed must match the committed bytes exactly.
/// The render covers the train/test split sizes, per-archetype
/// precision/recall, and both forest and centroid accuracy, so any
/// drift in features, split hashing, or tree training shows up here.
/// Intentional changes regenerate via `scripts/update_golden.sh` (or
/// `SC_REGEN_GOLDEN=1`) and justify the diff in review.
#[test]
fn golden_classifier_confusion_matches_committed_bytes() {
    let rendered = classifier_report(42).render();
    if std::env::var("SC_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_CLASSIFIER, &rendered).expect("write golden classifier report");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_CLASSIFIER)
        .expect("golden classifier report committed at tests/golden/");
    assert_eq!(
        rendered, golden,
        "classifier confusion report diverges from golden; regenerate with \
         scripts/update_golden.sh if intentional"
    );
}

/// The learning subsystem under the deterministic-parallelism rule:
/// feature extraction fans out across jobs but merges in input order,
/// and the forest's bootstrap/feature draws are seeded per tree, so the
/// evaluation report — rendered text and SVG alike — must be
/// byte-identical between a 1-thread and an N-thread run (the CI
/// matrix sweeps N over 1, 4, 8 via `SC_PAR_THREADS`).
#[test]
fn classifier_training_is_deterministic_across_thread_budgets() {
    let saved = sc_repro::par::current_threads();
    sc_repro::par::set_max_threads(1);
    let a = classifier_report(7);
    sc_repro::par::set_max_threads(alt_thread_budget());
    let b = classifier_report(7);
    sc_repro::par::set_max_threads(saved);

    assert_eq!(a, b, "classifier evaluation must not depend on the thread budget");
    assert_eq!(a.render(), b.render(), "confusion report text must not depend on threads");
    assert_eq!(a.to_svg(), b.to_svg(), "confusion heatmap SVG must not depend on threads");
}

/// The closed loop under the same rule: the predicted-label co-share
/// arm trains a classifier, routes on its labels, and runs the oracle
/// arm beside it, and every artifact of that run — both policy-arm
/// dataset JSONs, both delta figures, and the embedded classifier
/// evaluation — must be byte-identical between a 1-thread and an
/// N-thread run.
#[test]
fn coshare_predicted_policy_is_deterministic_across_thread_budgets() {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, 9);
    let run_predicted = || {
        let exp = PolicyExperiment::new(
            SimConfig { detailed_series_jobs: 0, ..Default::default() },
            PolicySpec::CosharePredicted,
        );
        let r = exp.run(&trace);
        let oracle = r.oracle.as_ref().expect("predicted arm always runs its oracle twin");
        let oracle_fig = r.oracle_fig.as_ref().expect("oracle delta figure");
        let eval = r.classifier_eval.as_ref().expect("predicted arm trains a classifier");
        (
            r.policy.dataset.to_json().expect("serializable"),
            oracle.dataset.to_json().expect("serializable"),
            r.fig.render(),
            oracle_fig.render(),
            eval.to_fig().render(),
        )
    };

    let saved = sc_repro::par::current_threads();
    sc_repro::par::set_max_threads(1);
    let a = run_predicted();
    sc_repro::par::set_max_threads(alt_thread_budget());
    let b = run_predicted();
    sc_repro::par::set_max_threads(saved);

    assert_eq!(a.0, b.0, "predicted-arm Dataset JSON must not depend on threads");
    assert_eq!(a.1, b.1, "oracle-arm Dataset JSON must not depend on threads");
    assert_eq!(a.2, b.2, "predicted delta figure must not depend on threads");
    assert_eq!(a.3, b.3, "oracle delta figure must not depend on threads");
    assert_eq!(a.4, b.4, "embedded classifier evaluation must not depend on threads");
}

const GOLDEN_RELIABILITY: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/reliability_report_scale001_seed42.txt"
);

/// One reliability study over the standard 1%-scale world: a stressed
/// supercloud failure model, a two-point MTBF frontier, a three-point
/// Young/Daly sweep, and a 2x growth leg. Small enough to run in the
/// test suite, rich enough that every figure family renders rows.
fn reliability_study(seed: u64) -> ReliabilityReport {
    let mut spec = WorkloadSpec::supercloud().scaled(0.01);
    spec.users = 32;
    let trace = Trace::generate(&spec, seed);
    let base = SimConfig { detailed_series_jobs: 0, ..Default::default() };
    let model = FailureModel::supercloud(seed).scaled_mtbf(0.05);
    let cfg = ReliabilityConfig {
        mtbf_factors: vec![1.0, 0.2],
        sweep_points: 3,
        sweep_span: 2.0,
        growth_factors: vec![2.0],
        write_secs: 30.0,
    };
    run_reliability_study(&trace, &base, &model, &cfg)
}

/// Golden-reliability regression: the rendered reliability report —
/// per-size-class ETTF/ETTR table, goodput frontier, checkpoint sweep
/// with its Young/Daly verdicts, and the growth rows — for a fixed
/// seed must match the committed bytes exactly. Wall-clock timings are
/// excluded from the render by construction. Intentional changes
/// regenerate via `scripts/update_golden.sh` (or `SC_REGEN_GOLDEN=1`)
/// and justify the diff in review.
#[test]
fn golden_reliability_report_matches_committed_bytes() {
    let rendered = reliability_study(42).render();
    if std::env::var("SC_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_RELIABILITY, &rendered).expect("write golden reliability report");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_RELIABILITY)
        .expect("golden reliability report committed at tests/golden/");
    assert_eq!(
        rendered, golden,
        "reliability report diverges from golden; regenerate with scripts/update_golden.sh if \
         intentional"
    );
}

/// The reliability study under the deterministic-parallelism rule: all
/// accumulation happens on the single-threaded event loop and only
/// telemetry synthesis fans out, so the rendered report must be
/// byte-identical between a 1-thread and an N-thread run (the CI matrix
/// sweeps N over 1, 4, 8 via `SC_PAR_THREADS`).
#[test]
fn reliability_report_is_deterministic_across_thread_budgets() {
    let saved = sc_repro::par::current_threads();
    sc_repro::par::set_max_threads(1);
    let a = reliability_study(7);
    sc_repro::par::set_max_threads(alt_thread_budget());
    let b = reliability_study(7);
    sc_repro::par::set_max_threads(saved);

    assert_eq!(a.render(), b.render(), "reliability report must not depend on the thread budget");
}

/// The failure subsystem under the same rule: the pre-computed failure
/// schedule, every requeue decision (job fates), the goodput ledger,
/// and the rendered figures must be byte-identical between a 1-thread
/// and an N-thread run.
#[test]
fn failure_injection_is_deterministic_across_thread_budgets() {
    let saved = sc_repro::par::current_threads();

    // The schedule itself is a pure function of (model, fleet, horizon).
    let model = FailureModel::supercloud(6).scaled_mtbf(0.05);
    let sched_a = model.schedule(224, 448, 1.0e7);
    let sched_b = model.schedule(224, 448, 1.0e7);
    assert_eq!(sched_a, sched_b, "failure schedule must be deterministic");
    assert!(!sched_a.is_empty());

    sc_repro::par::set_max_threads(1);
    let a = run_with_failures(6);
    sc_repro::par::set_max_threads(alt_thread_budget());
    let b = run_with_failures(6);
    sc_repro::par::set_max_threads(saved);

    assert!(a.stats.injected_failures > 0, "model must fire");
    assert!(a.stats.requeues > 0, "recovery path must be exercised");
    assert_eq!(a.stats, b.stats, "injection counters must not depend on threads");
    assert_eq!(a.fates, b.fates, "attempt/requeue decisions must not depend on threads");
    assert_eq!(a.goodput, b.goodput, "the goodput ledger must not depend on threads");
    assert_eq!(
        a.dataset.to_json().expect("serializable"),
        b.dataset.to_json().expect("serializable"),
        "Dataset JSON must not depend on the thread budget"
    );
    assert_eq!(
        AnalysisReport::from_sim(&a).render_text(),
        AnalysisReport::from_sim(&b).render_text(),
        "figure text must not depend on the thread budget"
    );
    assert_eq!(
        a.telemetry_summary.render(),
        b.telemetry_summary.render(),
        "streaming summary under failure injection must not depend on the thread budget"
    );
}
