//! Scenario DSL invariants: the parser round-trips every valid
//! scenario through its canonical serialization, rejects malformed
//! input with typed line/field diagnostics (never a panic), and the
//! `supercloud` preset drives the pipeline byte-identically to the
//! flag defaults at any thread budget.
//!
//! The property tests build scenarios *structurally* (the vendored
//! proptest has no string strategies) and sweep the numeric knobs and
//! registry names; the mutation property chews on the committed preset
//! files themselves.

use proptest::prelude::*;
use sc_repro::prelude::*;
use sc_repro::workload::ArrivalProcess;

/// Committed preset files, read from the repo rather than the embedded
/// copies so the property also covers the bytes reviewers see.
const PRESET_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");

const PRESET_FILES: [&str; 4] = ["supercloud.toml", "philly.toml", "nersc.toml", "in2p3.toml"];

fn preset_text(idx: usize) -> String {
    let path = format!("{}/{}", PRESET_DIR, PRESET_FILES[idx % PRESET_FILES.len()]);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Registry names the generator sweeps. Each list's index-0 entry is
/// the default, so the sweep covers both "explicit default" and
/// "overridden" serializations.
const FAILURE_PROFILES: [&str; 4] = ["off", "supercloud", "stress", "transient"];
const DQ_PROFILES: [&str; 4] = ["off", "supercloud", "lossy", "hostile"];
const POLICIES: [&str; 4] = ["off", "powercap:200", "coshare", "tiered"];
const WORKLOAD_PRESETS: [&str; 2] = ["supercloud", "philly"];

/// One of the four arrival processes from swept knobs, each knob kept
/// inside its validated range.
fn arrivals_from(idx: usize, period_days: f64, frac: f64, amplitude: f64) -> ArrivalProcess {
    match idx % 4 {
        0 => ArrivalProcess::Poisson,
        1 => ArrivalProcess::Diurnal,
        2 => ArrivalProcess::Spikes { period_days, width_days: period_days * frac, amplitude },
        _ => ArrivalProcess::UpAndDown { period_days, low: frac },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// parse(serialize(scenario)) == scenario for any scenario the
    /// validator accepts: the canonical TOML form loses nothing.
    #[test]
    fn round_trip_preserves_any_valid_scenario(
        seed in 0u64..1_000_000,
        scale_milli in 1u64..5_000,
        arrivals in (0usize..4, 0.5f64..60.0, 0.05f64..0.95, 0.0f64..8.0),
        registries in (0usize..4, 0usize..4, 0usize..4, 0usize..2),
        overrides in (1u64..2_000, 1u64..200_000, 0.0f64..1.0, 0.0f64..0.99),
    ) {
        let (arr_idx, period, frac, amp) = arrivals;
        let (fail_idx, dq_idx, policy_idx, wl_idx) = registries;
        let (users, total_jobs, gpu_frac, diurnal_amp) = overrides;
        let mut sc = Scenario {
            name: "generated".to_string(),
            description: "property-generated scenario".to_string(),
            seed,
            scale: scale_milli as f64 / 1_000.0,
            arrivals: arrivals_from(arr_idx, period, frac, amp),
            data_quality: DQ_PROFILES[dq_idx].to_string(),
            policy: POLICIES[policy_idx].to_string(),
            ..Scenario::default()
        };
        sc.failures.profile = FAILURE_PROFILES[fail_idx].to_string();
        if fail_idx != 0 {
            // mtbf_factor is only legal alongside an active profile.
            sc.failures.mtbf_factor = Some(frac * 2.0);
        }
        sc.workload.preset = WORKLOAD_PRESETS[wl_idx].to_string();
        sc.workload.users = Some(users as usize);
        sc.workload.total_jobs = Some(total_jobs as usize);
        sc.workload.gpu_job_fraction = Some(gpu_frac);
        sc.workload.diurnal_amplitude = Some(diurnal_amp);
        sc.cluster.nodes = Some((users % 1_000 + 1) as u32);
        let toml = sc.to_toml();
        let back = Scenario::parse(&toml)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {e}\n{toml}"));
        prop_assert_eq!(&back, &sc);
        // Serialization is canonical: one more lap is byte-stable, and
        // the hash (the serve cache-key dimension) is too.
        prop_assert_eq!(back.to_toml(), toml);
        prop_assert_eq!(back.hash(), sc.hash());
    }

    /// Truncating a committed preset anywhere never panics the parser:
    /// every outcome is a clean `Ok` or a typed error with a non-empty
    /// diagnostic.
    #[test]
    fn truncated_preset_never_panics(
        preset_idx in 0usize..4,
        cut in 0usize..4_096,
    ) {
        let text = preset_text(preset_idx);
        let cut = cut % (text.len() + 1);
        // Truncate on a char boundary (presets are ASCII, but don't
        // depend on it).
        let mut end = cut;
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        match Scenario::parse(&text[..end]) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.to_string().is_empty(), "empty diagnostic"),
        }
    }

    /// Flipping any single byte of a committed preset never panics the
    /// parser, even when the flip produces invalid UTF-8 (lossily
    /// replaced) or garbles the grammar.
    #[test]
    fn mutated_preset_never_panics(
        preset_idx in 0usize..4,
        pos in 0usize..4_096,
        flip in 1usize..256,
    ) {
        let mut bytes = preset_text(preset_idx).into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = bytes[pos].wrapping_add(flip as u8);
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        match Scenario::parse(&mutated) {
            Ok(_) => {}
            Err(e) => prop_assert!(!e.to_string().is_empty(), "empty diagnostic"),
        }
    }
}

/// The malformed-input corpus: every entry must come back as a typed
/// error whose rendered diagnostic carries the expected line number and
/// `[section] key` context. A panic anywhere fails the whole test.
#[test]
fn malformed_corpus_yields_typed_line_and_field_errors() {
    // (document, expected substring of the rendered diagnostic)
    let corpus: &[(&str, &str)] = &[
        ("", "missing section [scenario]"),
        ("[scenario]\n", "line 1: [scenario] name: missing"),
        ("[scenario]\nname = \"\"\n", "line 2: [scenario] name"),
        ("[scenario]\nname = \"x\"\nscale = 0.0\n", "line 3: [scenario] scale: out of range"),
        ("[scenario]\nname = \"x\"\nbogus = 1\n", "line 3: [scenario] bogus: unknown key"),
        ("[bogus]\nkey = 1\n", "line 1: [bogus]: unknown section"),
        (
            "[scenario]\nname = \"x\"\n[scenario]\nname = \"y\"\n",
            "line 3: [scenario]: section appears twice",
        ),
        ("[scenario]\nname = \"x\"\nname = \"y\"\n", "line 3: [scenario] name: key appears twice"),
        (
            "[scenario]\nname = \"x\"\nseed = \"forty-two\"\n",
            "line 3: [scenario] seed: expected non-negative integer, found string",
        ),
        (
            "[scenario]\nname = \"x\"\nscale = [1.0]\n",
            "line 3: [scenario] scale: expected number, found array",
        ),
        (
            "[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"lunar\"\n",
            "line 4: [arrivals] process: unknown value: lunar",
        ),
        (
            "[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"spikes\"\n",
            "[arrivals] period_days: missing",
        ),
        (
            "[scenario]\nname = \"x\"\n[arrivals]\nprocess = \"poisson\"\nlow = 0.5\n",
            "line 5: [arrivals] low: out of range: not a parameter",
        ),
        (
            "[scenario]\nname = \"x\"\n[workload]\ngpu_job_fraction = 1.5\n",
            "line 4: [workload] gpu_job_fraction: out of range",
        ),
        (
            "[scenario]\nname = \"x\"\n[workload]\npreset = \"borealis\"\n",
            "line 4: [workload] preset: unknown value",
        ),
        (
            "[scenario]\nname = \"x\"\n[failures]\nprofile = \"meteor\"\n",
            "line 4: [failures] profile: unknown value",
        ),
        ("[scenario]\nname = \"x\"\n[failures]\nmtbf_factor = 0.5\n", "[failures] mtbf_factor"),
        (
            "[scenario]\nname = \"x\"\n[cluster]\nslow_tier_nodes = 4\n",
            "[cluster]: missing slow_tier_nodes and slow_tier_speed",
        ),
        ("[scenario]\nname = \"x\"\n[policy]\narm = \"warpdrive\"\n", "[policy] arm"),
        ("[scenario]\nname = \"x\"\nscale = 1.0e999\n", "line 3"),
        ("[scenario\nname = \"x\"\n", "line 1"),
        ("[scenario]\nname = \"x\" trailing\n", "line 2"),
    ];
    assert!(corpus.len() >= 10, "the issue requires at least 10 malformed cases");
    for (doc, want) in corpus {
        let err =
            Scenario::parse(doc).expect_err(&format!("parser accepted malformed document:\n{doc}"));
        let msg = err.to_string();
        assert!(
            msg.contains(want),
            "diagnostic for {doc:?}\n  got:  {msg}\n  want substring: {want}"
        );
    }
}

/// The flag-driven default pipeline, at one scale/seed: the exact
/// construction `repro_figures` uses with no flags.
fn run_flag_default(scale: f64, seed: u64) -> (String, String) {
    let spec = WorkloadSpec::supercloud().scaled(scale);
    let trace = Trace::generate(&spec, seed);
    let detailed = ((2_149.0 * scale).round() as usize).max(50);
    let out = Simulation::new(SimConfig { detailed_series_jobs: detailed, ..Default::default() })
        .run(&trace);
    let json = out.dataset.to_json().expect("serializable");
    let text = AnalysisReport::from_sim(&out).render_text();
    (json, text)
}

/// The same pipeline driven by the committed `supercloud.toml` file.
fn run_scenario_file(scale: f64) -> (String, String) {
    let path = format!("{PRESET_DIR}/supercloud.toml");
    let sc = Scenario::load(&path).expect("committed preset loads");
    let spec = sc.scaled_spec(scale);
    let trace = Trace::generate(&spec, sc.seed);
    let out = Simulation::new(sc.sim_config(scale, sc.seed)).run(&trace);
    let json = out.dataset.to_json().expect("serializable");
    let text = AnalysisReport::from_sim(&out).render_text();
    (json, text)
}

/// The N-thread side of the 1-vs-N comparison; the CI determinism
/// matrix sweeps `SC_PAR_THREADS` over 1, 4, 8.
fn alt_thread_budget() -> usize {
    std::env::var("SC_PAR_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// The tentpole contract: `scenarios/supercloud.toml` reproduces the
/// flag-driven default byte for byte — dataset JSON and rendered
/// figure text — and the equality is independent of the thread budget.
#[test]
fn supercloud_scenario_matches_flag_default_at_any_thread_budget() {
    let saved = sc_repro::par::current_threads();
    for budget in [1, alt_thread_budget()] {
        sc_repro::par::set_max_threads(budget);
        let (flag_json, flag_text) = run_flag_default(0.01, 42);
        let (sc_json, sc_text) = run_scenario_file(0.01);
        sc_repro::par::set_max_threads(saved);
        assert_eq!(flag_json, sc_json, "dataset JSON diverged at {budget} thread(s)");
        assert_eq!(flag_text, sc_text, "figure text diverged at {budget} thread(s)");
        sc_repro::par::set_max_threads(budget);
    }
    sc_repro::par::set_max_threads(saved);
}

/// The scenario seed/scale defaults thread through the same way the
/// CLI resolves them: the preset declares seed 42 / scale 1.0, so an
/// explicit CLI `--seed 42` and the scenario default are one world.
#[test]
fn preset_defaults_match_cli_defaults() {
    let sc = Scenario::preset("supercloud").expect("preset");
    assert_eq!(sc.seed, 42);
    assert_eq!(sc.scale, 1.0);
    assert_eq!(sc.policy_spec(), PolicySpec::Off);
    assert_eq!(sc.data_quality_profile(), DataQualityProfile::Off);
    assert!(sc.failure_model(42).is_none());
}

/// Every committed preset feeds the cross-system figure at smoke scale:
/// four rows, deterministic render, and distinct scenario hashes (the
/// serve cache-key dimension).
#[test]
fn all_presets_feed_one_cross_system_figure() {
    let scenarios: Vec<Scenario> =
        Scenario::preset_names().map(|n| Scenario::preset(n).expect("preset")).collect();
    let fig = CrossSystemFig::run(&scenarios, 0.005, 42).expect("smoke scale suffices");
    assert_eq!(fig.rows.len(), 4);
    let names: Vec<&str> = fig.rows.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, ["supercloud", "philly", "nersc", "in2p3"], "input order preserved");
    for r in &fig.rows {
        assert!(r.jobs > 0, "{}: empty trace", r.name);
        assert!(r.total_gpus > 0, "{}", r.name);
        assert!((0.0..=1.0).contains(&r.single_gpu_share), "{}", r.name);
    }
    let again = CrossSystemFig::run(&scenarios, 0.005, 42).expect("second run");
    assert_eq!(fig.render(), again.render(), "comparison table must be deterministic");
    assert_eq!(fig.to_svg(), again.to_svg());
}
