//! Cross-system shape test: the Philly-like baseline (Jeon et al.,
//! reference 23 of the paper) run through the identical pipeline must
//! reproduce the comparison points Sec. V cites.

use sc_core::figures::fig13::SizeBucket;
use sc_repro::prelude::*;

fn philly_views() -> (SimOutput, WorkloadSpec) {
    let mut spec = WorkloadSpec::philly().scaled(0.05);
    spec.users = 96;
    let trace = Trace::generate(&spec, 23);
    let out =
        Simulation::new(SimConfig { detailed_series_jobs: 80, ..Default::default() }).run(&trace);
    (out, spec)
}

#[test]
fn philly_is_more_single_gpu_than_supercloud() {
    let (out, _) = philly_views();
    let views = gpu_views(&out.dataset);
    let users = user_stats(&views);
    let fig13 = sc_core::figures::Fig13::compute(&views, &users);
    let single = fig13.row(SizeBucket::One).job_share;
    // "93% of the jobs are run on one GPU" — allow generator noise.
    assert!((single - 0.93).abs() < 0.05, "philly single-GPU share {single}");

    // And strictly more single-GPU than the Supercloud population on
    // the same seed.
    let mut sc_spec = WorkloadSpec::supercloud().scaled(0.05);
    sc_spec.users = 96;
    let sc_trace = Trace::generate(&sc_spec, 23);
    let sc_out =
        Simulation::new(SimConfig { detailed_series_jobs: 0, ..Default::default() }).run(&sc_trace);
    let sc_views = gpu_views(&sc_out.dataset);
    let sc_users = user_stats(&sc_views);
    let sc_fig13 = sc_core::figures::Fig13::compute(&sc_views, &sc_users);
    assert!(
        single > sc_fig13.row(SizeBucket::One).job_share + 0.03,
        "philly {} vs supercloud {}",
        single,
        sc_fig13.row(SizeBucket::One).job_share
    );
}

#[test]
fn philly_has_almost_no_ide_tier() {
    let (out, _) = philly_views();
    let views = gpu_views(&out.dataset);
    let fig15 = sc_core::figures::Fig15::compute(&views);
    let ide = fig15.share(LifecycleClass::Ide).job_share;
    // Philly is a batch-training cluster: the IDE phenomenon the paper
    // highlights on Supercloud is essentially absent.
    assert!(ide < 0.02, "philly IDE share {ide}");
    assert!(fig15.share(LifecycleClass::Mature).job_share > 0.6);
}

#[test]
fn philly_runs_through_the_full_pipeline() {
    let (out, _) = philly_views();
    let report = AnalysisReport::from_sim(&out);
    let text = report.render_text();
    assert!(text.contains("Fig. 13"));
    assert!(text.contains("Fig. 15"));
}
