//! Acceptance bands for the data-quality repair pipeline: under the
//! `lossy` collection profile — 10% dropped sample windows, 5%
//! truncated series, 3% missing epilogs, 5% clock skew and
//! out-of-order delivery, NaN/spike power glitches — the recovered
//! headline statistics must stay within documented bands of the clean
//! ones, and the repair ledger must balance.
//!
//! The bands are deliberately wide enough to hold across seeds (the
//! quarantine path removes up to ~4% of GPU records) but tight enough
//! that a broken repair strategy — epilog reconstruction off by the
//! sample period, power imputation ignoring the clamp, dedup keeping
//! the conflicting copy — fails decisively.

use sc_repro::prelude::*;
use std::sync::OnceLock;

static ROUND_TRIP: OnceLock<(DatasetReport, DatasetReport, IngestReport, CorruptionCounters)> =
    OnceLock::new();

/// Clean report, recovered report, and the ledgers, computed once.
fn round_trip() -> &'static (DatasetReport, DatasetReport, IngestReport, CorruptionCounters) {
    ROUND_TRIP.get_or_init(|| {
        let mut spec = WorkloadSpec::supercloud().scaled(0.02);
        spec.users = 64;
        let trace = Trace::generate(&spec, 20_220_701);
        let out = Simulation::new(SimConfig { detailed_series_jobs: 0, ..Default::default() })
            .run(&trace);
        let clean = DatasetReport::try_from_dataset(&out.dataset).expect("clean pipeline");
        let (ingested, injected) =
            corrupt_and_ingest(&out.dataset, DataQualityProfile::Lossy, 42, &Obs::off())
                .expect("lossy ingest succeeds");
        let recovered =
            DatasetReport::try_from_dataset(&ingested.dataset).expect("recovered pipeline");
        (clean, recovered, ingested.report, injected)
    })
}

/// Relative deviation of `b` from `a`, percent.
fn pct(a: f64, b: f64) -> f64 {
    ((b - a) / a * 100.0).abs()
}

#[test]
fn lossy_ledger_balances_and_faults_actually_fired() {
    let (_, _, report, injected) = round_trip();
    assert!(report.balances_against(injected), "ledger must balance per class");
    // The profile must exercise every scheduler-stream fault class —
    // a silent zero means the injector or the small trace regressed.
    for class in [
        FaultClass::DuplicateRecord,
        FaultClass::MissingEpilog,
        FaultClass::TruncatedEpilog,
        FaultClass::ClockSkew,
        FaultClass::OutOfOrder,
        FaultClass::NanPower,
    ] {
        assert!(injected.get(class) > 0, "no {class} faults injected");
    }
}

#[test]
fn run_time_quantiles_recover_within_bands() {
    let (clean, recovered, _, _) = round_trip();
    // Epilog reconstruction rebuilds end times from telemetry sample
    // counts (0.1 s resolution), so the run-time distribution is nearly
    // exact; quantiles may shift slightly where quarantined records
    // thin the sample.
    let c = &clean.fig3.gpu_runtime_min;
    let r = &recovered.fig3.gpu_runtime_min;
    assert!(pct(c.median(), r.median()) < 5.0, "median {} vs {}", c.median(), r.median());
    assert!(pct(c.quantile(0.25), r.quantile(0.25)) < 10.0);
    assert!(pct(c.quantile(0.75), r.quantile(0.75)) < 10.0);
}

#[test]
fn utilization_and_power_medians_recover_within_bands() {
    let (clean, recovered, _, _) = round_trip();
    assert!(pct(clean.fig4.sm.median(), recovered.fig4.sm.median()) < 10.0);
    assert!(pct(clean.fig9.avg_power.median(), recovered.fig9.avg_power.median()) < 5.0);
    // Spike repair must pull the max-power median back toward clean:
    // the recovered median may not exceed clean by more than the band
    // (un-repaired 1.5-3x spikes would blow far past it).
    assert!(pct(clean.fig9.max_power.median(), recovered.fig9.max_power.median()) < 5.0);
}

#[test]
fn class_mix_and_concentration_recover_within_bands() {
    let (clean, recovered, _, _) = round_trip();
    for (c, r) in clean.fig15.shares.iter().zip(&recovered.fig15.shares) {
        assert!(
            (c.job_share - r.job_share).abs() < 0.02,
            "{:?} share {} vs {}",
            c.class,
            c.job_share,
            r.job_share
        );
    }
    assert!((clean.fig10.top5_job_share - recovered.fig10.top5_job_share).abs() < 0.03);
}

#[test]
fn quarantine_is_bounded() {
    let (_, _, report, _) = round_trip();
    // The lossy profile loses ~3% of epilogs plus a little truncation
    // fallout; the pipeline must not quarantine wholesale.
    let dropped = report.records_in - report.records_out;
    assert!(
        (dropped as f64) < 0.05 * report.records_in as f64,
        "dropped {dropped} of {} records",
        report.records_in
    );
    assert!(report.repaired.total() > report.quarantined.total());
}

#[test]
fn series_micro_study_recovers_active_fraction() {
    let study =
        sc_repro::core::ingest::series_study(DataQualityProfile::Lossy, 42, 48, 1_800.0, 0.1)
            .expect("series study succeeds");
    assert_eq!(format!("{:?}", study.injected), format!("{:?}", study.detected));
    assert!(study.repaired.total() > 0, "window faults must fire");
    assert!(
        (study.mean_active_clean - study.mean_active_recovered).abs() < 0.05,
        "mean active fraction {} vs {}",
        study.mean_active_clean,
        study.mean_active_recovered
    );
}
