//! Reliability-accounting invariants: for any failure profile, seed,
//! size mix, and bucket-edge list, the per-size-class ledger balances
//! (`useful + lost + idle == exposed` GPU-seconds per bucket), the
//! class sums reconcile with the global goodput ledger, and the
//! derived ETTF/failure-rate metrics are consistent with the raw
//! exposure sums they were computed from.
//!
//! Each case runs its own small failure-injected simulation (0.4%
//! scale), so the case count is deliberately modest.

use proptest::prelude::*;
use sc_repro::prelude::*;

/// The non-off failure profiles the properties sweep.
const PROFILES: [&str; 3] = ["supercloud", "stress", "transient"];

/// Bucket-edge lists the properties sweep: canonical, coarse, shifted,
/// and fine.
const EDGE_SETS: [&[u32]; 4] = [&[1, 2, 8], &[4], &[2, 8, 32], &[1, 2, 4, 8, 16]];

/// One failure-injected run with a configurable size mix and bucket
/// edges. MTBF is scaled down so even the mild profiles actually fire
/// at this scale.
fn run_case(profile: &str, seed: u64, gpu_job_fraction: f64, edges: &[u32]) -> SimOutput {
    let mut spec = WorkloadSpec::supercloud().scaled(0.004);
    spec.users = 16;
    spec.gpu_job_fraction = gpu_job_fraction;
    let trace = Trace::generate(&spec, seed);
    let model = FailureModel::profile(profile, seed)
        .expect("profile name from the registry")
        .expect("non-off profile")
        .scaled_mtbf(0.05);
    Simulation::new(SimConfig {
        detailed_series_jobs: 0,
        failures: Some(model),
        checkpoint: Some(CheckpointPolicy { interval_secs: 1_800.0, write_secs: 30.0 }),
        size_bucket_edges: edges.to_vec(),
        ..Default::default()
    })
    .run(&trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole ledger identity, per size class: every allocated
    /// GPU-second an attempt exposed is attributed to exactly one of
    /// useful / lost / idle within its job's bucket, for any profile,
    /// seed, GPU-job mix, and bucket-edge list.
    #[test]
    fn per_size_class_ledger_balances_for_any_profile_seed_and_mix(
        profile_idx in 0usize..PROFILES.len(),
        edges_idx in 0usize..EDGE_SETS.len(),
        seed in 0u64..100_000,
        gpu_job_fraction in 0.2f64..0.9,
    ) {
        let profile = PROFILES[profile_idx];
        let edges = EDGE_SETS[edges_idx];
        let out = run_case(profile, seed, gpu_job_fraction, edges);
        let rel = &out.reliability;

        prop_assert_eq!(rel.buckets.len(), edges.len() + 1);
        for (i, b) in rel.buckets.iter().enumerate() {
            let tol = 1e-6 * b.exposed_gpu_secs.max(1.0);
            prop_assert!(
                b.balance_error() <= tol,
                "{profile} seed {seed} bucket {} ({}): useful {} + lost {} + idle {} vs exposed {}",
                i,
                rel.label(i),
                b.useful_gpu_secs,
                b.lost_gpu_secs,
                b.idle_gpu_secs,
                b.exposed_gpu_secs
            );
        }

        // Class sums reconcile with the global goodput ledger, whatever
        // the edge list (re-bucketing moves work between classes but
        // never creates or destroys it).
        let tol = 1e-6 * out.goodput.allocated_gpu_secs.max(1.0);
        prop_assert!((rel.total(|b| b.exposed_gpu_secs) - out.goodput.allocated_gpu_secs).abs() <= tol);
        prop_assert!((rel.total(|b| b.useful_gpu_secs) - out.goodput.useful_gpu_secs).abs() <= tol);
        prop_assert!((rel.total(|b| b.lost_gpu_secs) - out.goodput.lost_gpu_secs).abs() <= tol);
        prop_assert!((rel.total(|b| b.idle_gpu_secs) - out.goodput.idle_gpu_secs).abs() <= tol);
        prop_assert_eq!(rel.total_failures(), out.goodput.total_deaths());

        // The canonical fixed-width arrays in the goodput ledger obey
        // the same per-bucket identity and sum to the global fields.
        for i in 0..ReliabilityStats::default().buckets.len() {
            prop_assert!(out.goodput.size_balance_error(i) <= tol);
        }
        let canon_alloc: f64 = out.goodput.allocated_by_size_gpu_secs.iter().sum();
        prop_assert!((canon_alloc - out.goodput.allocated_gpu_secs).abs() <= tol);
    }

    /// Derived-metric consistency: ETTF times failure count recovers
    /// the class's exposed wall-clock exactly, and the per-1k-GPU-days
    /// rate times exposed GPU-days recovers the failure count — the
    /// derived metrics never drift from the raw sums they summarize.
    #[test]
    fn ettf_and_failure_rate_track_raw_exposure(
        profile_idx in 0usize..PROFILES.len(),
        seed in 0u64..100_000,
    ) {
        let profile = PROFILES[profile_idx];
        let out = run_case(profile, seed, 0.55, &[1, 2, 8]);
        let mut saw_failure = false;
        for b in &out.reliability.buckets {
            if let Some(ettf) = b.ettf_secs() {
                saw_failure = true;
                let recovered = ettf * b.failures as f64;
                prop_assert!(
                    (recovered - b.exposed_wall_secs).abs() <= 1e-6 * b.exposed_wall_secs.max(1.0),
                    "{profile} seed {seed}: ettf {ettf} x {} failures = {recovered} vs wall {}",
                    b.failures,
                    b.exposed_wall_secs
                );
            }
            let rate = b.failures_per_1k_gpu_days();
            if rate > 0.0 {
                let gpu_days = b.exposed_gpu_secs / 86_400.0;
                let recovered = rate * gpu_days / 1000.0;
                prop_assert!(
                    (recovered - b.failures as f64).abs() <= 1e-6 * (b.failures as f64).max(1.0),
                    "{profile} seed {seed}: rate {rate} over {gpu_days} gpu-days vs {} failures",
                    b.failures
                );
            }
            if let Some(ettr) = b.ettr_secs() {
                prop_assert!(ettr >= 0.0 && ettr.is_finite());
            }
        }
        // The scaled models fire at this scale; if that ever regresses
        // the properties above would pass vacuously.
        prop_assert!(saw_failure, "{profile} seed {seed}: no bucket saw a failure");
    }
}

/// Deterministic rendering outside proptest: the per-size table is a
/// pure function of (trace, config), so two identical runs render
/// byte-identical text.
#[test]
fn reliability_render_is_reproducible() {
    let a = run_case("stress", 42, 0.55, &[1, 2, 8]);
    let b = run_case("stress", 42, 0.55, &[1, 2, 8]);
    assert_eq!(a.reliability.render(), b.reliability.render());
    assert_eq!(a.reliability, b.reliability);
}
