//! Ingest-repair invariants: for any corruption profile and seed, the
//! corrupt -> ingest round trip produces a structurally valid dataset
//! and a ledger that balances per fault class; the `off` profile is a
//! byte-exact no-op.
//!
//! The small simulation is computed once (`OnceLock`) and only the
//! cheap corrupt/ingest round trip varies per proptest case, so the
//! suite stays fast while sweeping profiles and seeds.

use proptest::prelude::*;
use sc_repro::prelude::*;
use std::sync::OnceLock;

static SIM: OnceLock<SimOutput> = OnceLock::new();

/// A 1%-scale simulation shared by every case.
fn small_sim() -> &'static SimOutput {
    SIM.get_or_init(|| {
        let mut spec = WorkloadSpec::supercloud().scaled(0.01);
        spec.users = 32;
        let trace = Trace::generate(&spec, 20_260_807);
        Simulation::new(SimConfig { detailed_series_jobs: 0, ..Default::default() }).run(&trace)
    })
}

/// The non-trivial profiles the properties sweep.
const PROFILES: [DataQualityProfile; 3] =
    [DataQualityProfile::Supercloud, DataQualityProfile::Lossy, DataQualityProfile::Hostile];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-class ledger balance: everything injected is detected, and
    /// everything detected is either repaired or quarantined. Holds
    /// for every profile at any seed by construction (the corruptor
    /// only injects faults the detector can see).
    #[test]
    fn ledger_balances_for_any_profile_and_seed(
        profile_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let profile = PROFILES[profile_idx];
        let clean = &small_sim().dataset;
        let (out, injected) = corrupt_and_ingest(clean, profile, seed, &Obs::off())
            .expect("ingest succeeds on corrupted sim output");
        prop_assert!(
            out.report.balances_against(&injected),
            "profile {profile} seed {seed}: injected {:?} vs detected {:?} \
             repaired {:?} quarantined {:?}",
            injected,
            out.report.detected,
            out.report.repaired,
            out.report.quarantined
        );
    }

    /// Structural soundness of the recovered dataset: canonical order,
    /// finite submit/start timestamps, no duplicate job ids, and every
    /// GPU-analyzed record that kept its telemetry has rectangular
    /// (lockstep) per-GPU aggregates.
    #[test]
    fn recovered_dataset_is_structurally_sound(
        profile_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let profile = PROFILES[profile_idx];
        let clean = &small_sim().dataset;
        let (out, _) = corrupt_and_ingest(clean, profile, seed, &Obs::off())
            .expect("ingest succeeds");
        let records = out.dataset.records();
        prop_assert!(!records.is_empty());
        let mut prev_submit = f64::NEG_INFINITY;
        let mut seen = std::collections::HashSet::new();
        for r in records {
            prop_assert!(r.sched.submit_time.is_finite());
            prop_assert!(r.sched.start_time.is_finite());
            prop_assert!(r.sched.start_time >= r.sched.submit_time - 1e-9);
            prop_assert!(r.sched.submit_time >= prev_submit, "canonical order");
            prev_submit = r.sched.submit_time;
            prop_assert!(seen.insert(r.sched.job_id), "duplicate id {:?}", r.sched.job_id);
            if let Some(gpu) = &r.gpu {
                let counts: Vec<u64> =
                    gpu.per_gpu.iter().map(|a| a.sm_util.count).collect();
                prop_assert!(
                    counts.iter().all(|&c| c == counts[0]),
                    "ragged per-GPU aggregates for {:?}",
                    r.sched.job_id
                );
            }
        }
    }

    /// The `off` profile is a byte-exact no-op on record content: zero
    /// injected faults, zero detections, and every recovered record is
    /// bit-identical to its clean counterpart. Ingest always emits the
    /// canonical `(submit, job_id)` order, so the clean side is sorted
    /// the same way before comparing — the order is the only permitted
    /// difference.
    #[test]
    fn off_profile_is_a_byte_exact_noop(seed in 0u64..1_000_000) {
        let clean = &small_sim().dataset;
        let (out, injected) =
            corrupt_and_ingest(clean, DataQualityProfile::Off, seed, &Obs::off())
                .expect("off-profile ingest succeeds");
        prop_assert_eq!(injected.total(), 0);
        prop_assert_eq!(out.report.detected.total(), 0);
        prop_assert_eq!(out.report.repaired.total(), 0);
        prop_assert_eq!(out.report.quarantined.total(), 0);
        let mut canon: Vec<_> = clean.records().iter().collect();
        canon.sort_by(|a, b| {
            a.sched
                .submit_time
                .total_cmp(&b.sched.submit_time)
                .then(a.sched.job_id.cmp(&b.sched.job_id))
        });
        prop_assert_eq!(canon.len(), out.dataset.records().len());
        for (c, r) in canon.iter().zip(out.dataset.records()) {
            // Debug formatting round-trips f64 exactly, so string
            // equality here is bit-level content equality.
            prop_assert_eq!(format!("{c:?}"), format!("{r:?}"));
        }
    }

    /// Obs events are 1:1 with the ledger: one `dq_repair` per repaired
    /// fault, one `dq_quarantine` per quarantined fault.
    #[test]
    fn obs_events_match_the_ledger(seed in 0u64..1_000_000) {
        let clean = &small_sim().dataset;
        let sink = RingSink::new(TraceLevel::Events, 1 << 16);
        let (out, _) =
            corrupt_and_ingest(clean, DataQualityProfile::Lossy, seed, &Obs::new(&sink))
                .expect("lossy ingest succeeds");
        let records = sink.records();
        let repairs = records.iter().filter(|r| r.name == "dq_repair").count() as u64;
        let quarantines =
            records.iter().filter(|r| r.name == "dq_quarantine").count() as u64;
        prop_assert_eq!(repairs, out.report.repaired.total());
        prop_assert_eq!(quarantines, out.report.quarantined.total());
    }
}

/// Determinism of the round trip itself (outside proptest so it runs
/// exactly once): the same profile and seed produce the same repaired
/// bytes and the same ledger.
#[test]
fn round_trip_is_seed_stable() {
    let clean = &small_sim().dataset;
    let (a, ia) = corrupt_and_ingest(clean, DataQualityProfile::Hostile, 99, &Obs::off())
        .expect("ingest succeeds");
    let (b, ib) = corrupt_and_ingest(clean, DataQualityProfile::Hostile, 99, &Obs::off())
        .expect("ingest succeeds");
    assert_eq!(format!("{ia:?}"), format!("{ib:?}"));
    assert_eq!(
        a.dataset.to_json().expect("serializable"),
        b.dataset.to_json().expect("serializable")
    );
    assert_eq!(a.report.render(), b.report.render());
}
