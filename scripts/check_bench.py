#!/usr/bin/env python3
"""Gate CI on bench regressions.

Compares a fresh `repro_figures --bench-json` report against the
committed full-scale baseline (BENCH_repro.json). The smoke run uses a
reduced --scale, so the baseline's total_secs is scaled by the job-count
ratio before comparing; the gate fails when the smoke run is more than
TOLERANCE times slower than that scaled expectation.

The telemetry stage is additionally gated on throughput, not just
total wall-clock: per-job synthesis cost is scale-invariant, so the
smoke run's telemetry jobs/sec must stay within --tolerance of the
baseline's. This is the regression gate for the streaming engine — a
fallback to materialize-everything batch costs ~10x and trips it even
through CI noise.

When both reports carry a measured `peak_rss_bytes` (repro_figures
records the VmHWM high-water mark; 0 means "not measured"), the smoke
run's peak RSS must not exceed --max-rss-ratio times the full-scale
baseline's: streaming keeps memory at O(aggregate state), so a reduced
-scale run sitting above the full-scale high-water mark means series
are being materialized again.

With --placement, additionally parses the console log of
`cargo bench --bench placement` (the offline criterion stand-in prints
`  <id>  median <time> / iter ...` lines) and gates the co-sharing
policy's placement overhead: the coshare median must stay within
--placement-overhead times the baseline median.

With --streaming, parses the console log of
`cargo bench --bench streaming` and requires every aggregator /
channel / end-to-end bench to be present and under a generous absolute
ceiling — an order-of-magnitude guard, not a jitter trap.

usage: check_bench.py BASELINE SMOKE [--tolerance 2.0]
                      [--max-rss-ratio 1.5]
                      [--placement placement_bench.txt]
                      [--placement-overhead 5.0]
                      [--streaming streaming_bench.txt]
"""

import argparse
import json
import re
import sys

# CI runners are noisy and a 2%-scale run finishes in about a second, so
# very small expected times are floored before applying the multiplier:
# the gate is for order-of-magnitude regressions, not scheduler jitter.
MIN_EXPECTED_SECS = 2.0


# `  contended_pass_baseline   median 475.30 us / iter  (min ...)`
MEDIAN_LINE = re.compile(r"^\s+(\S+)\s+median\s+([\d.]+)\s+(ns|us|ms|s)\s+/\s+iter")
UNIT_SECS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

# Ceilings for the streaming-engine benches (seconds). Typical medians
# are 20-100x below these; the gate exists to catch an aggregator or
# channel falling off an algorithmic cliff, not scheduler jitter.
STREAMING_CEILINGS = {
    "sketch_push_merge_100k": 0.100,
    "welford_push_merge_100k": 0.050,
    "histogram_push_merge_100k": 0.050,
    "spsc_send_recv_100k": 0.100,
    "par_stream_order_10k": 0.005,
    "stream_detail_30min_2gpu": 0.010,
}


def parse_medians(path):
    """Benchmark id -> median seconds, from a criterion console log."""
    medians = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                m = MEDIAN_LINE.match(line)
                if m:
                    medians[m.group(1)] = float(m.group(2)) * UNIT_SECS[m.group(3)]
    except OSError as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")
    return medians


def check_placement(path, max_overhead):
    medians = parse_medians(path)
    for bench in ("contended_pass_baseline", "contended_pass_coshare"):
        if bench not in medians:
            sys.exit(f"check_bench: {path} has no '{bench}' median "
                     f"(found: {sorted(medians)})")
    base = medians["contended_pass_baseline"]
    coshare = medians["contended_pass_coshare"]
    overhead = coshare / base if base > 0 else float("inf")
    print(f"placement: baseline {base * 1e6:.1f} us, coshare {coshare * 1e6:.1f} us "
          f"({overhead:.2f}x, limit {max_overhead}x)")
    if overhead > max_overhead:
        sys.exit(
            f"check_bench: FAIL — coshare placement pass is {overhead:.2f}x the "
            f"baseline pass (limit {max_overhead}x)"
        )


def check_streaming(path):
    medians = parse_medians(path)
    failed = []
    for bench, ceiling in sorted(STREAMING_CEILINGS.items()):
        if bench not in medians:
            sys.exit(f"check_bench: {path} has no '{bench}' median "
                     f"(found: {sorted(medians)})")
        median = medians[bench]
        status = "ok" if median <= ceiling else "FAIL"
        print(f"streaming: {bench:<28} {median * 1e6:10.1f} us "
              f"(ceiling {ceiling * 1e6:.0f} us) {status}")
        if median > ceiling:
            failed.append(bench)
    if failed:
        sys.exit(f"check_bench: FAIL — streaming benches over ceiling: {failed}")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_repro.json")
    ap.add_argument("smoke", help="fresh --bench-json output")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when smoke exceeds the scaled baseline by this factor",
    )
    ap.add_argument(
        "--max-rss-ratio",
        type=float,
        default=1.5,
        help="fail when the smoke run's peak RSS exceeds this multiple of "
        "the full-scale baseline's (only when both were measured)",
    )
    ap.add_argument(
        "--placement",
        metavar="LOG",
        help="console log of `cargo bench --bench placement` to gate",
    )
    ap.add_argument(
        "--streaming",
        metavar="LOG",
        help="console log of `cargo bench --bench streaming` to gate",
    )
    ap.add_argument(
        "--placement-overhead",
        type=float,
        default=5.0,
        help="fail when the coshare placement pass exceeds the baseline "
        "pass by this factor (typical is ~1.5x)",
    )
    args = ap.parse_args()

    if args.placement:
        check_placement(args.placement, args.placement_overhead)
    if args.streaming:
        check_streaming(args.streaming)

    base = load(args.baseline)
    smoke = load(args.smoke)
    for report, path in ((base, args.baseline), (smoke, args.smoke)):
        for key in ("jobs", "total_secs"):
            if key not in report:
                sys.exit(f"check_bench: {path} has no '{key}' field")

    ratio = smoke["jobs"] / base["jobs"]
    expected = max(base["total_secs"] * ratio, MIN_EXPECTED_SECS)
    limit = expected * args.tolerance
    total = smoke["total_secs"]

    print(f"baseline: {base['total_secs']:.2f} s for {base['jobs']} jobs")
    print(f"smoke:    {total:.2f} s for {smoke['jobs']} jobs (ratio {ratio:.4f})")
    print(f"expected: {expected:.2f} s scaled, limit {limit:.2f} s "
          f"(tolerance {args.tolerance}x)")
    for name, stage in smoke.get("stages", {}).items():
        print(f"  stage {name:<16} {stage['secs']:8.3f} s")

    if total > limit:
        sys.exit(
            f"check_bench: FAIL — smoke total {total:.2f} s exceeds "
            f"{limit:.2f} s ({total / expected:.1f}x the scaled baseline)"
        )

    # Per-stage telemetry throughput floor: jobs/sec is scale-invariant,
    # so the smoke run must hold the baseline's rate within tolerance.
    base_tel = base.get("stages", {}).get("telemetry")
    smoke_tel = smoke.get("stages", {}).get("telemetry")
    if base_tel and smoke_tel:
        floor = base_tel["jobs_per_sec"] / args.tolerance
        rate = smoke_tel["jobs_per_sec"]
        print(f"telemetry: {rate:.0f} jobs/sec "
              f"(baseline {base_tel['jobs_per_sec']:.0f}, floor {floor:.0f})")
        if rate < floor:
            sys.exit(
                f"check_bench: FAIL — telemetry stage at {rate:.0f} jobs/sec, "
                f"below the {floor:.0f} floor ({args.tolerance}x under the "
                f"baseline's {base_tel['jobs_per_sec']:.0f})"
            )

    # Peak-RSS ceiling: a reduced-scale streaming run must stay under
    # the full-scale high-water mark (times the ratio); 0 means the
    # platform could not measure, so the gate is skipped.
    base_rss = base.get("peak_rss_bytes", 0)
    smoke_rss = smoke.get("peak_rss_bytes", 0)
    if base_rss > 0 and smoke_rss > 0:
        limit_rss = base_rss * args.max_rss_ratio
        print(f"peak RSS: smoke {smoke_rss / 2**20:.1f} MiB, baseline "
              f"{base_rss / 2**20:.1f} MiB (limit {limit_rss / 2**20:.1f} MiB)")
        if smoke_rss > limit_rss:
            sys.exit(
                f"check_bench: FAIL — smoke peak RSS {smoke_rss / 2**20:.1f} MiB "
                f"exceeds {args.max_rss_ratio}x the full-scale baseline "
                f"({base_rss / 2**20:.1f} MiB): series are being materialized"
            )

    print(f"check_bench: OK — {total / expected:.2f}x the scaled baseline")


if __name__ == "__main__":
    main()
