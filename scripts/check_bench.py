#!/usr/bin/env python3
"""Gate CI on bench regressions.

Every suite this script can gate is described by one declarative table
(GATES below): a list of (kind, metric, limit) rows applied to a flat
metric dict extracted from that suite's artifact. Adding a gate is a
one-line diff to the table, not a new flag-plus-function pair.

Gate kinds:

  ceiling    metric <= limit
  floor      metric >= limit
  max_ratio  metric[0] / metric[1] <= limit

A metric missing from the artifact fails its gate, so referencing a
metric also asserts its presence (e.g. every serve mix must appear).

Suites:

  repro      BASELINE SMOKE positionals: a fresh `repro_figures
             --bench-json` report against the committed full-scale
             BENCH_repro.json. The smoke run uses a reduced --scale, so
             the baseline's total_secs is scaled by the job-count ratio
             (floored at MIN_EXPECTED_SECS — the gate is for
             order-of-magnitude regressions, not scheduler jitter)
             before applying --tolerance. The telemetry stage is also
             gated on jobs/sec (scale-invariant), and peak RSS on
             --max-rss-ratio times the baseline's high-water mark.
  placement  --placement LOG: console log of `cargo bench --bench
             placement`; bounds the co-sharing policy's placement
             overhead relative to the baseline pass.
  streaming  --streaming LOG: console log of `cargo bench --bench
             streaming`; absolute ceilings per aggregator/channel bench.
  serve      --serve JSON: a `serve_load` report; p99 latency ceilings
             per mix, a throughput floor and hit-rate floor on the
             cache-hit storm, and the >=10x storm-vs-cold speedup the
             memoization layer exists to provide. The report must also
             carry the `scenario` label (the service's cache-key
             dimension) and the response `digest`.
  classifier --classifier JSON: a `repro_figures --classifier-json`
             report; held-out forest accuracy must clear the floor and
             the predicted-vs-oracle goodput delta must sit inside the
             band (a null delta means the oracle arm never ran, which
             fails — the closed loop is the thing under test).
  reliability --reliability JSON: a `repro_figures --reliability-json`
             report; the simulated per-size-class optimal checkpoint
             interval must land within a band of the Young/Daly
             analytic optimum (worst-class ratio, either direction),
             the goodput frontier must degrade monotonically as MTBF
             shrinks, and the cluster-growth replay must hold the
             event-loop throughput floor. Null gated scalars (a study
             that never ran its sweep or growth legs) fail as missing.

--serve-compare FILE... additionally requires the response digests of
two or more serve_load reports to be identical — the byte-level
determinism check across thread budgets. Digests are only comparable
within one world, so the reports' `scenario` labels must agree too: a
digest match across different scenarios would be vacuous, and a label
mismatch means the runs were not measuring the same thing.

--selftest runs every suite against the committed fixture pair in
scripts/fixtures/ (one artifact that must pass, one that must trip the
gates) and exits non-zero if any gate misjudges either. CI's lint job
runs this, so the gate logic cannot rot silently.

usage: check_bench.py [BASELINE SMOKE] [--tolerance 2.0]
                      [--max-rss-ratio 1.5]
                      [--placement LOG] [--placement-overhead 5.0]
                      [--streaming LOG]
                      [--serve JSON] [--serve-compare JSON JSON...]
                      [--classifier JSON]
                      [--reliability JSON]
                      [--selftest]
"""

import argparse
import json
import os
import re
import sys
from collections import namedtuple

# CI runners are noisy and a 2%-scale run finishes in about a second, so
# very small expected times are floored before applying the multiplier.
MIN_EXPECTED_SECS = 2.0

# One gate row: kind in {"ceiling", "floor", "max_ratio"}; metric is a
# key into the suite's flat metric dict (a (numerator, denominator) key
# pair for max_ratio).
Gate = namedtuple("Gate", "kind metric limit")

# Ceilings for the streaming-engine benches (seconds). Typical medians
# are 20-100x below these; the gate exists to catch an aggregator or
# channel falling off an algorithmic cliff, not scheduler jitter.
STREAMING_GATES = [
    Gate("ceiling", "sketch_push_merge_100k", 0.100),
    Gate("ceiling", "welford_push_merge_100k", 0.050),
    Gate("ceiling", "histogram_push_merge_100k", 0.050),
    Gate("ceiling", "spsc_send_recv_100k", 0.100),
    Gate("ceiling", "par_stream_order_10k", 0.005),
    Gate("ceiling", "stream_detail_30min_2gpu", 0.010),
]

# Gates for a `serve_load` report. Latency ceilings are generous
# absolutes (hits are microseconds, cold what-ifs re-simulate for
# ~100 ms at smoke scale); the floors are where the teeth are: the
# cache-hit storm must actually behave like a cache. The gate table is
# scenario-independent — every world must clear the same floors because
# a cache hit costs the same regardless of which scenario built the
# frozen state — but check_serve separately requires the `scenario`
# label so a report always records which world its digest describes.
SERVE_GATES = [
    Gate("ceiling", "point_flood.p99_ms", 250.0),
    Gate("ceiling", "cache_storm.p99_ms", 50.0),
    Gate("ceiling", "steady.p99_ms", 250.0),
    Gate("ceiling", "cold_ab.p99_ms", 30_000.0),
    Gate("floor", "cache_storm.qps", 1_000.0),
    Gate("floor", "cache_storm.hit_rate", 0.95),
    Gate("floor", "steady.hit_rate", 0.95),
    Gate("floor", "storm_speedup", 10.0),
]


# Gates for a `repro_figures --classifier-json` report. The accuracy
# floor is deliberately below the ~0.9 the forest reaches at smoke
# scale — the gate catches a broken feature/split/training path, not
# seed jitter. The goodput band bounds the cost of routing placement on
# predicted instead of oracle labels: a large negative delta means
# classifier errors are eating co-location goodput, a large positive
# one means the "oracle" arm is mislabeled. train/test floors assert
# the held-out split actually happened.
CLASSIFIER_GATES = [
    Gate("floor", "accuracy", 0.85),
    Gate("floor", "goodput_delta_pp", -10.0),
    Gate("ceiling", "goodput_delta_pp", 10.0),
    Gate("floor", "train_jobs", 50),
    Gate("floor", "test_jobs", 20),
]


# Gates for a `repro_figures --reliability-json` report. The sweep band
# is coarse on purpose: the simulated optimum comes off a geometric
# interval grid (default 5 points over a 16x range, so one grid step is
# ~2x), and the gate catches the overhead model decoupling from the
# Young/Daly prediction (the pre-fix failure mode was ~12x: write
# stalls were never debited, so the argmax pinned to the smallest
# interval). Frontier monotonicity has a small epsilon for scheduler
# noise; the growth floor is an order-of-magnitude event-loop
# throughput guard, far below the ~20k jobs/sec a smoke run sustains.
RELIABILITY_GATES = [
    Gate("ceiling", "sweep_worst_ratio", 4.0),
    Gate("ceiling", "frontier_monotone_violation", 0.05),
    Gate("floor", "growth_min_jobs_per_sec", 200.0),
]


def placement_gates(max_overhead):
    """The placement suite's one gate, parameterized by the CLI knob."""
    return [Gate("max_ratio",
                 ("contended_pass_coshare", "contended_pass_baseline"),
                 max_overhead)]


# `  contended_pass_baseline   median 475.30 us / iter  (min ...)`
MEDIAN_LINE = re.compile(r"^\s+(\S+)\s+median\s+([\d.]+)\s+(ns|us|ms|s)\s+/\s+iter")
UNIT_SECS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse_medians(path):
    """Benchmark id -> median seconds, from a criterion console log."""
    medians = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                m = MEDIAN_LINE.match(line)
                if m:
                    medians[m.group(1)] = float(m.group(2)) * UNIT_SECS[m.group(3)]
    except OSError as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")
    return medians


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def flatten_serve(report):
    """A serve_load report as a flat metric dict (mix fields dotted)."""
    metrics = {}
    for key, value in report.items():
        if key == "mixes":
            for mix, fields in value.items():
                for field, v in fields.items():
                    metrics[f"{mix}.{field}"] = v
        elif key == "cold_baseline":
            for field, v in value.items():
                metrics[f"cold_baseline.{field}"] = v
        elif isinstance(value, (int, float)):
            metrics[key] = value
    return metrics


def apply_gates(suite, metrics, gates):
    """Applies one suite's gate table; returns failure descriptions."""
    failures = []
    for gate in gates:
        keys = gate.metric if isinstance(gate.metric, tuple) else (gate.metric,)
        missing = [k for k in keys if k not in metrics]
        if missing:
            failures.append(f"{suite}: metric {missing[0]!r} missing "
                            f"(have: {sorted(metrics)})")
            print(f"{suite}: {gate.metric} MISSING")
            continue
        if gate.kind == "ceiling":
            value, ok = metrics[keys[0]], metrics[keys[0]] <= gate.limit
            desc = f"{keys[0]} = {value:g} (ceiling {gate.limit:g})"
        elif gate.kind == "floor":
            value, ok = metrics[keys[0]], metrics[keys[0]] >= gate.limit
            desc = f"{keys[0]} = {value:g} (floor {gate.limit:g})"
        elif gate.kind == "max_ratio":
            num, den = metrics[keys[0]], metrics[keys[1]]
            value = num / den if den > 0 else float("inf")
            ok = value <= gate.limit
            desc = (f"{keys[0]} / {keys[1]} = {value:.2f}x "
                    f"(limit {gate.limit:g}x)")
        else:
            raise AssertionError(f"unknown gate kind {gate.kind!r}")
        print(f"{suite}: {desc} {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{suite}: {desc}")
    return failures


def check_serve(path):
    report = load(path)
    failures = apply_gates("serve", flatten_serve(report), SERVE_GATES)
    if "digest" not in report:
        failures.append(f"serve: {path} has no response digest")
    if "scenario" not in report:
        failures.append(f"serve: {path} has no scenario label — the "
                        f"report no longer records which world (cache-key "
                        f"dimension) its digest describes")
    return failures


def check_serve_compare(paths):
    digests = {}
    scenarios = {}
    for path in paths:
        report = load(path)
        digests[path] = report.get("digest", "<missing>")
        scenarios[path] = report.get("scenario", "<missing>")
        threads = report.get("threads", "?")
        print(f"serve-compare: {path} (threads {threads}, "
              f"scenario {scenarios[path]}) digest {digests[path]}")
    failures = []
    # Digests are only comparable within one world: a mismatch in the
    # scenario labels means the runs measured different frozen states,
    # so even an accidental digest match would prove nothing.
    if len(set(scenarios.values())) != 1:
        failures.append(f"serve-compare: scenario labels diverge across "
                        f"runs: {scenarios} — digests are only comparable "
                        f"within one scenario world")
    if len(set(digests.values())) != 1 or "<missing>" in digests.values():
        failures.append(f"serve-compare: response digests diverge across "
                        f"runs: {digests} — responses are no longer "
                        f"thread-budget independent")
    return failures


def check_classifier(path):
    report = load(path)
    # A null goodput_delta_pp (oracle arm never ran) drops out of the
    # metric dict here, so the band gates fail it as missing — the
    # closed predicted-vs-oracle loop is exactly what this suite gates.
    metrics = {k: v for k, v in report.items()
               if isinstance(v, (int, float)) and not isinstance(v, bool)}
    return apply_gates("classifier", metrics, CLASSIFIER_GATES)


def check_reliability(path):
    report = load(path)
    # Null scalars (a sweep with no per-class verdict, a study that
    # never ran its growth leg) drop out of the metric dict, so the
    # gates fail them as missing — the legs are what this suite gates.
    metrics = {k: v for k, v in report.items()
               if isinstance(v, (int, float)) and not isinstance(v, bool)}
    return apply_gates("reliability", metrics, RELIABILITY_GATES)


def check_repro(baseline_path, smoke_path, tolerance, max_rss_ratio):
    base = load(baseline_path)
    smoke = load(smoke_path)
    for report, path in ((base, baseline_path), (smoke, smoke_path)):
        for key in ("jobs", "total_secs"):
            if key not in report:
                sys.exit(f"check_bench: {path} has no '{key}' field")

    failures = []
    ratio = smoke["jobs"] / base["jobs"]
    expected = max(base["total_secs"] * ratio, MIN_EXPECTED_SECS)
    print(f"repro: baseline {base['total_secs']:.2f} s for {base['jobs']} jobs")
    print(f"repro: smoke    {smoke['total_secs']:.2f} s for {smoke['jobs']} "
          f"jobs (ratio {ratio:.4f})")
    for name, stage in smoke.get("stages", {}).items():
        print(f"  stage {name:<16} {stage['secs']:8.3f} s")

    metrics = {
        "total_secs": smoke["total_secs"],
        "peak_rss_bytes": smoke.get("peak_rss_bytes", 0),
    }
    gates = [Gate("ceiling", "total_secs", expected * tolerance)]
    # Telemetry jobs/sec is scale-invariant, so the smoke run must hold
    # the baseline's rate within tolerance. This is the regression gate
    # for the streaming engine — a fallback to materialize-everything
    # batch costs ~10x and trips it even through CI noise.
    base_tel = base.get("stages", {}).get("telemetry")
    smoke_tel = smoke.get("stages", {}).get("telemetry")
    if base_tel and smoke_tel:
        metrics["telemetry.jobs_per_sec"] = smoke_tel["jobs_per_sec"]
        gates.append(Gate("floor", "telemetry.jobs_per_sec",
                          base_tel["jobs_per_sec"] / tolerance))
    # Peak-RSS ceiling: streaming keeps memory at O(aggregate state), so
    # a reduced-scale run above the full-scale high-water mark means
    # series are being materialized again. 0 means "not measured".
    if base.get("peak_rss_bytes", 0) > 0 and metrics["peak_rss_bytes"] > 0:
        gates.append(Gate("ceiling", "peak_rss_bytes",
                          base["peak_rss_bytes"] * max_rss_ratio))
    failures += apply_gates("repro", metrics, gates)
    return failures


def fixture(name):
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures", name)


def selftest():
    """Every suite judged against its committed pass/fail fixtures."""
    cases = [
        ("serve pass", lambda: check_serve(fixture("serve_pass.json")), True),
        ("serve fail", lambda: check_serve(fixture("serve_fail.json")), False),
        ("serve-compare pass",
         lambda: check_serve_compare([fixture("serve_pass.json"),
                                      fixture("serve_pass.json")]), True),
        ("serve-compare fail",
         lambda: check_serve_compare([fixture("serve_pass.json"),
                                      fixture("serve_fail.json")]), False),
        ("serve scenario pass",
         lambda: check_serve(fixture("serve_scenario_pass.json")), True),
        ("serve scenario fail",
         lambda: check_serve(fixture("serve_scenario_fail.json")), False),
        ("serve-compare scenario mismatch",
         lambda: check_serve_compare([fixture("serve_pass.json"),
                                      fixture("serve_scenario_pass.json")]),
         False),
        ("streaming pass",
         lambda: apply_gates("streaming",
                             parse_medians(fixture("streaming_pass.txt")),
                             STREAMING_GATES), True),
        ("streaming fail",
         lambda: apply_gates("streaming",
                             parse_medians(fixture("streaming_fail.txt")),
                             STREAMING_GATES), False),
        ("placement pass",
         lambda: apply_gates("placement",
                             parse_medians(fixture("placement_pass.txt")),
                             placement_gates(5.0)), True),
        ("placement fail",
         lambda: apply_gates("placement",
                             parse_medians(fixture("placement_fail.txt")),
                             placement_gates(5.0)), False),
        ("repro pass",
         lambda: check_repro(fixture("repro_baseline.json"),
                             fixture("repro_smoke_pass.json"), 2.0, 1.5),
         True),
        ("repro fail",
         lambda: check_repro(fixture("repro_baseline.json"),
                             fixture("repro_smoke_fail.json"), 2.0, 1.5),
         False),
        ("classifier pass",
         lambda: check_classifier(fixture("classifier_pass.json")), True),
        ("classifier fail",
         lambda: check_classifier(fixture("classifier_fail.json")), False),
        ("reliability pass",
         lambda: check_reliability(fixture("reliability_pass.json")), True),
        ("reliability fail",
         lambda: check_reliability(fixture("reliability_fail.json")), False),
    ]
    wrong = []
    for name, run, expect_pass in cases:
        print(f"--- selftest: {name}")
        passed = not run()
        verdict = "ok" if passed == expect_pass else "WRONG VERDICT"
        print(f"--- selftest: {name}: "
              f"{'passed' if passed else 'failed'} as "
              f"{'expected' if passed == expect_pass else 'NOT expected'} "
              f"[{verdict}]")
        if passed != expect_pass:
            wrong.append(name)
    if wrong:
        sys.exit(f"check_bench: SELFTEST FAIL — gates misjudged: {wrong}")
    print(f"check_bench: selftest OK ({len(cases)} fixture cases)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?", help="committed BENCH_repro.json")
    ap.add_argument("smoke", nargs="?", help="fresh --bench-json output")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when smoke exceeds the scaled baseline by this factor",
    )
    ap.add_argument(
        "--max-rss-ratio",
        type=float,
        default=1.5,
        help="fail when the smoke run's peak RSS exceeds this multiple of "
        "the full-scale baseline's (only when both were measured)",
    )
    ap.add_argument(
        "--placement",
        metavar="LOG",
        help="console log of `cargo bench --bench placement` to gate",
    )
    ap.add_argument(
        "--placement-overhead",
        type=float,
        default=5.0,
        help="fail when the coshare placement pass exceeds the baseline "
        "pass by this factor (typical is ~1.5x)",
    )
    ap.add_argument(
        "--streaming",
        metavar="LOG",
        help="console log of `cargo bench --bench streaming` to gate",
    )
    ap.add_argument(
        "--serve",
        metavar="JSON",
        help="serve_load report to gate (latency ceilings, throughput and "
        "hit-rate floors, storm speedup)",
    )
    ap.add_argument(
        "--serve-compare",
        metavar="JSON",
        nargs="+",
        help="two or more serve_load reports whose response digests must "
        "be identical (thread-budget determinism)",
    )
    ap.add_argument(
        "--classifier",
        metavar="JSON",
        help="repro_figures --classifier-json report to gate (accuracy "
        "floor, predicted-vs-oracle goodput band, split-size floors)",
    )
    ap.add_argument(
        "--reliability",
        metavar="JSON",
        help="repro_figures --reliability-json report to gate (Young/Daly "
        "sweep band, frontier monotonicity, growth throughput floor)",
    )
    ap.add_argument(
        "--selftest",
        action="store_true",
        help="judge every suite against its committed scripts/fixtures/ "
        "pass/fail pair and exit non-zero on any wrong verdict",
    )
    args = ap.parse_args()

    if args.selftest:
        selftest()
        return
    if args.baseline and not args.smoke:
        ap.error("BASELINE given without SMOKE")

    failures = []
    if args.placement:
        failures += apply_gates("placement", parse_medians(args.placement),
                                placement_gates(args.placement_overhead))
    if args.streaming:
        failures += apply_gates("streaming", parse_medians(args.streaming),
                                STREAMING_GATES)
    if args.serve:
        failures += check_serve(args.serve)
    if args.serve_compare:
        failures += check_serve_compare(args.serve_compare)
    if args.classifier:
        failures += check_classifier(args.classifier)
    if args.reliability:
        failures += check_reliability(args.reliability)
    if args.baseline:
        failures += check_repro(args.baseline, args.smoke, args.tolerance,
                                args.max_rss_ratio)
    if not (args.placement or args.streaming or args.serve
            or args.serve_compare or args.classifier or args.reliability
            or args.baseline):
        ap.error("nothing to do: give BASELINE SMOKE, a suite flag, "
                 "or --selftest")

    if failures:
        for f in failures:
            print(f"check_bench: FAIL — {f}", file=sys.stderr)
        sys.exit(f"check_bench: {len(failures)} gate(s) failed")
    print("check_bench: OK")


if __name__ == "__main__":
    main()
