#!/usr/bin/env python3
"""Gate CI on bench regressions.

Compares a fresh `repro_figures --bench-json` report against the
committed full-scale baseline (BENCH_repro.json). The smoke run uses a
reduced --scale, so the baseline's total_secs is scaled by the job-count
ratio before comparing; the gate fails when the smoke run is more than
TOLERANCE times slower than that scaled expectation.

usage: check_bench.py BASELINE SMOKE [--tolerance 2.0]
"""

import argparse
import json
import sys

# CI runners are noisy and a 2%-scale run finishes in about a second, so
# very small expected times are floored before applying the multiplier:
# the gate is for order-of-magnitude regressions, not scheduler jitter.
MIN_EXPECTED_SECS = 2.0


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_repro.json")
    ap.add_argument("smoke", help="fresh --bench-json output")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when smoke exceeds the scaled baseline by this factor",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    smoke = load(args.smoke)
    for report, path in ((base, args.baseline), (smoke, args.smoke)):
        for key in ("jobs", "total_secs"):
            if key not in report:
                sys.exit(f"check_bench: {path} has no '{key}' field")

    ratio = smoke["jobs"] / base["jobs"]
    expected = max(base["total_secs"] * ratio, MIN_EXPECTED_SECS)
    limit = expected * args.tolerance
    total = smoke["total_secs"]

    print(f"baseline: {base['total_secs']:.2f} s for {base['jobs']} jobs")
    print(f"smoke:    {total:.2f} s for {smoke['jobs']} jobs (ratio {ratio:.4f})")
    print(f"expected: {expected:.2f} s scaled, limit {limit:.2f} s "
          f"(tolerance {args.tolerance}x)")
    for name, stage in smoke.get("stages", {}).items():
        print(f"  stage {name:<16} {stage['secs']:8.3f} s")

    if total > limit:
        sys.exit(
            f"check_bench: FAIL — smoke total {total:.2f} s exceeds "
            f"{limit:.2f} s ({total / expected:.1f}x the scaled baseline)"
        )
    print(f"check_bench: OK — {total / expected:.2f}x the scaled baseline")


if __name__ == "__main__":
    main()
